//! Table II: flow tables at the source and destination switches.
//!
//! The paper's prototype forwards on the destination IP address and
//! floods ARP; Table II lists the source switch R1 and destination
//! switch R12 rules. This module installs the same rule structure
//! into real `chronus-openflow` tables and renders them.
// Harness code: panicking on a malformed experiment is intended.
#![allow(clippy::indexing_slicing, clippy::expect_used, clippy::unwrap_used)]

use chronus_openflow::render::render_table;
use chronus_openflow::{Action, FlowTable, Ipv4Prefix, Match};

/// Builds and renders the paper's Table II: source switch `R1` and
/// destination switch `R12` tables for `n_hosts` host prefixes.
pub fn render(n_hosts: usize) -> String {
    let mut source = FlowTable::new();
    let mut destination = FlowTable::new();

    for h in 0..n_hosts {
        let host_net = Ipv4Prefix::new(u32::from_be_bytes([10, 0, h as u8 + 1, 0]), 24);
        // Source R1: traffic from each attached host toward the
        // destination prefix leaves on the solid-line port.
        source
            .add(
                10,
                Match {
                    in_port: Some(h as u16 + 1),
                    src: Some(host_net),
                    dst: Some("10.0.100.0/24".parse().expect("valid prefix")),
                    vlan: None,
                },
                vec![Action::Output(10)], // "Output: solid line"
            )
            .expect("unbounded table");
        // Destination R12: deliver to the host port.
        destination
            .add(
                10,
                Match {
                    in_port: None,
                    src: Some(host_net),
                    dst: Some("10.0.100.0/24".parse().expect("valid prefix")),
                    vlan: None,
                },
                vec![Action::Output(h as u16 + 1)], // "Output: host n"
            )
            .expect("unbounded table");
    }
    // ARP is flooded on both (the paper: "ARP packets are flooded to
    // all output ports"; rendered as the low-priority wildcard rule).
    source
        .add(0, Match::default(), vec![Action::Flood])
        .expect("unbounded table");
    destination
        .add(0, Match::default(), vec![Action::Flood])
        .expect("unbounded table");

    let mut out = String::new();
    out.push_str(&render_table("source switch R1", &source));
    out.push('\n');
    out.push_str(&render_table("destination switch R12", &destination));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_lists_both_switches() {
        let s = render(2);
        assert!(s.contains("source switch R1"));
        assert!(s.contains("destination switch R12"));
        assert!(s.contains("10.0.1.0/24"));
        assert!(s.contains("10.0.100.0/24"));
        assert!(s.contains("Flood"));
        // Two host rows + flood per table.
        assert!(s.matches("Output: 1").count() >= 1);
    }
}
