//! Figure 6: bandwidth consumption over time during the update.
//!
//! "Fig. 6 shows that link bandwidth consumption varies with time
//! during network updates. The aggregate flow rate is fixed at
//! 500 Mbps … the peak value of OR is around 600 Mbps at the 9th and
//! 16th second … whereas the fluctuation of Chronus and TP is
//! relatively stable" (§V-A). The testbed is the emulator
//! (`chronus-emu`), standing in for the paper's Mininet deployment:
//! a 10-switch topology, 500 Mbps links, 1 s statistics sampling.
// Harness code: panicking on a malformed experiment is intended.
#![allow(clippy::indexing_slicing, clippy::expect_used, clippy::unwrap_used)]

use chronus_baselines::or::{or_rounds, OrConfig};
use chronus_core::greedy::greedy_schedule;
use chronus_emu::{EmuConfig, Emulator, UpdateDriver};
use chronus_net::{Flow, FlowId, NetworkBuilder, Path, SwitchId, UpdateInstance};

/// The Fig. 6 scenario: 10 switches at 500 Mbps, a 500 Mbps aggregate
/// flow, and a reroute with the motivating example's contention
/// structure (old chain, new path doubling back over it) so that
/// capacity- and delay-oblivious updates overlap old and new streams.
pub fn fig6_instance() -> UpdateInstance {
    let mut b = NetworkBuilder::with_switches(10);
    let v = SwitchId;
    // Old path: v1 v2 v3 v4 v5 -> v10 (ids 0..4, 9).
    for (x, y) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 9)] {
        b.add_link(v(x), v(y), 500, 1).expect("old chain");
    }
    // New (dashed) links: v2->v10, v1->v4, v4->v3, v3->v2.
    for (x, y) in [(1, 9), (0, 3), (3, 2), (2, 1)] {
        b.add_link(v(x), v(y), 500, 1).expect("dashed links");
    }
    // The remaining switches (v6..v9 of the Mininet testbed) idle on a
    // parallel chain.
    for (x, y) in [(0, 5), (5, 6), (6, 7), (7, 8), (8, 9)] {
        b.add_link(v(x), v(y), 500, 1).expect("idle chain");
    }
    let net = b.build();
    let flow = Flow::new(
        FlowId(0),
        500, // the paper's 500 Mbps aggregate on 500 Mbps links
        Path::new(vec![v(0), v(1), v(2), v(3), v(4), v(9)]),
        Path::new(vec![v(0), v(3), v(2), v(1), v(9)]),
    )
    .expect("flow is well-formed");
    UpdateInstance::single(net, flow).expect("instance is valid")
}

/// A per-second bandwidth series for one scheme.
#[derive(Clone, Debug)]
pub struct SchemeSeries {
    /// Scheme label.
    pub name: &'static str,
    /// `(second, Mbps)` — the maximum offered load over all links in
    /// that sampling window (the paper plots the hot link).
    pub series: Vec<(u64, f64)>,
    /// Packets lost to loops or buffers during the run.
    pub lost_bytes: u64,
}

impl SchemeSeries {
    /// Peak of the series.
    pub fn peak(&self) -> f64 {
        self.series.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }
}

fn emulate(instance: &UpdateInstance, driver: UpdateDriver, name: &'static str) -> SchemeSeries {
    let mut emu = Emulator::new(instance, EmuConfig::default(), 0xF166);
    emu.install_driver(driver);
    let report = emu.run();
    // Per window: the maximum offered Mbps across links.
    let mut windows: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    for series in report.bandwidth.values() {
        for s in series {
            let sec = (s.at / 1_000_000_000) as u64;
            let e = windows.entry(sec).or_insert(0.0);
            *e = e.max(s.offered_mbps);
        }
    }
    SchemeSeries {
        name,
        series: windows.into_iter().collect(),
        lost_bytes: report.buffer_drops + report.ttl_drops * 1_000,
    }
}

/// Runs the three schemes through the emulator and returns their
/// series (Chronus, TP, OR — the paper's three curves).
pub fn run() -> Vec<SchemeSeries> {
    let instance = fig6_instance();

    let schedule = greedy_schedule(&instance)
        .expect("the Fig. 6 scenario admits a timed schedule")
        .schedule;
    let chronus = emulate(
        &instance,
        UpdateDriver::chronus(schedule, &instance),
        "Chronus",
    );

    let tp = emulate(&instance, UpdateDriver::two_phase(), "TP");

    let rounds = or_rounds(&instance, OrConfig::default())
        .expect("OR rounds exist")
        .rounds;
    let or = emulate(&instance, UpdateDriver::or_rounds(rounds), "OR");

    vec![chronus, tp, or]
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_timenet::{FluidSimulator, Verdict};

    #[test]
    fn scenario_admits_a_clean_timed_schedule() {
        let inst = fig6_instance();
        let out = greedy_schedule(&inst).expect("feasible");
        let report = FluidSimulator::check(&inst, &out.schedule);
        assert_eq!(report.verdict(), Verdict::Consistent, "{report}");
    }

    #[test]
    fn or_peaks_above_capacity_chronus_and_tp_stay_flat() {
        let series = run();
        let chronus = &series[0];
        let tp = &series[1];
        let or = &series[2];
        // The paper's shape: OR spikes past the 500 Mbps capacity
        // (≈600 in the paper), Chronus and TP hover at the flow rate.
        assert!(
            or.peak() > 520.0,
            "OR must exceed capacity, peaked at {}",
            or.peak()
        );
        assert!(
            chronus.peak() <= 520.0,
            "Chronus stays at the flow rate, peaked at {}",
            chronus.peak()
        );
        assert!(
            tp.peak() <= 520.0,
            "TP stays at the flow rate, peaked at {}",
            tp.peak()
        );
        // All series cover the 20 s run at 1 s sampling.
        assert!(chronus.series.len() >= 18);
    }
}
