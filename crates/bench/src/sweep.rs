//! Figures 7 and 8: the congestion sweep.
//!
//! "We first investigate the percentage of congestion cases by
//! comparing 500 different update instances in each run … the number
//! of switches varies from 10 to 60 at the increment of 10" (§V-B).
//! Fig. 7 reports the percentage of congestion-free instances per
//! scheme; Fig. 8 the number of congested time-extended links.

use crate::best_effort_schedule;
use crate::util::RunOptions;
use chronus_baselines::or::{or_rounds_greedy, OrOutcome};
use chronus_core::greedy::greedy_schedule;
use chronus_net::{InstanceGenerator, InstanceGeneratorConfig, TimeStep, UpdateInstance};
use chronus_opt::{optimal_schedule_with, OptConfig};
use chronus_timenet::{FluidSimulator, Schedule, SimulatorConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One row of the Fig. 7 / Fig. 8 sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Number of switches.
    pub switches: usize,
    /// % of instances Chronus migrates congestion-free.
    pub chronus_free_pct: f64,
    /// % for OPT.
    pub opt_free_pct: f64,
    /// % for OR.
    pub or_free_pct: f64,
    /// Mean congested time-extended links per instance, Chronus
    /// (best-effort schedule on infeasible instances).
    pub chronus_congested_links: f64,
    /// Mean congested time-extended links per instance, OR.
    pub or_congested_links: f64,
}

fn simulate_quiet(instance: &UpdateInstance, schedule: &Schedule) -> (bool, usize) {
    let cfg = SimulatorConfig {
        record_loads: false,
        ..SimulatorConfig::default()
    };
    let report = FluidSimulator::with_config(instance, cfg).run(schedule);
    (report.congestion_free(), report.congested_te_link_count())
}

fn or_schedule(instance: &UpdateInstance, rng: &mut StdRng) -> Option<Schedule> {
    let OrOutcome { rounds, .. } = or_rounds_greedy(instance).ok()?;
    let flow = instance.flow();
    // Installation latencies in model steps: up to twice the largest
    // link delay, mimicking the Dionysus latency data relative to
    // propagation times.
    let max_latency = (instance.network.max_delay() as TimeStep * 2).max(1);
    Some(
        OrOutcome {
            rounds,
            exact: false,
        }
        .execute(flow, (0, max_latency), rng),
    )
}

/// Runs the sweep over `sizes` switch counts.
pub fn run_sweep(opts: &RunOptions, sizes: &[usize]) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &n in sizes {
        let mut total = 0usize;
        let mut chronus_free = 0usize;
        let mut opt_free = 0usize;
        let mut or_free = 0usize;
        let mut chronus_links = 0usize;
        let mut or_links = 0usize;

        for run in 0..opts.runs {
            let cfg = InstanceGeneratorConfig::paper(n, opts.seed + run as u64 * 7919);
            let mut gen = InstanceGenerator::new(cfg);
            let mut rng = StdRng::seed_from_u64(opts.seed ^ (run as u64) << 17);
            for inst in gen.generate_batch(opts.instances) {
                total += 1;
                // Chronus: the greedy either certifies a clean
                // schedule or reports infeasibility.
                let greedy_ok = greedy_schedule(&inst).is_ok();
                if greedy_ok {
                    chronus_free += 1;
                } else {
                    let (_, links) = simulate_quiet(&inst, &best_effort_schedule(&inst));
                    chronus_links += links;
                }
                // OPT: exact within budget; the greedy witness already
                // certifies feasibility, so only failures consult it.
                if greedy_ok {
                    opt_free += 1;
                } else {
                    let opt = optimal_schedule_with(
                        &inst,
                        OptConfig {
                            budget: opts.budget,
                            ..Default::default()
                        },
                    );
                    if opt.is_ok() {
                        opt_free += 1;
                    }
                }
                // OR: delay- and capacity-oblivious rounds under
                // asynchronous installation.
                if let Some(schedule) = or_schedule(&inst, &mut rng) {
                    let (free, links) = simulate_quiet(&inst, &schedule);
                    if free {
                        or_free += 1;
                    }
                    or_links += links;
                }
            }
        }

        let pct = |x: usize| 100.0 * x as f64 / total.max(1) as f64;
        out.push(SweepPoint {
            switches: n,
            chronus_free_pct: pct(chronus_free),
            opt_free_pct: pct(opt_free),
            or_free_pct: pct(or_free),
            chronus_congested_links: chronus_links as f64 / total.max(1) as f64,
            or_congested_links: or_links as f64 / total.max(1) as f64,
        });
    }
    out
}

/// The paper's switch counts for Figs. 7 and 8.
pub const PAPER_SIZES: [usize; 6] = [10, 20, 30, 40, 50, 60];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_match_the_paper() {
        let opts = RunOptions {
            runs: 1,
            instances: 25,
            ..Default::default()
        };
        let points = run_sweep(&opts, &[12, 24]);
        assert_eq!(points.len(), 2);
        for p in &points {
            // Chronus tracks OPT closely and beats OR — the paper's
            // headline ("significantly outperforms OR by around 60%",
            // relaxed here to a strict ordering at smoke scale).
            assert!(p.opt_free_pct >= p.chronus_free_pct);
            assert!(
                p.chronus_free_pct > p.or_free_pct,
                "chronus {}% vs OR {}% at n={}",
                p.chronus_free_pct,
                p.or_free_pct,
                p.switches
            );
            // Fig. 8: Chronus congests far fewer time-extended links.
            assert!(
                p.chronus_congested_links <= p.or_congested_links,
                "links: chronus {} vs OR {}",
                p.chronus_congested_links,
                p.or_congested_links
            );
            assert!(p.chronus_free_pct > 0.0 && p.chronus_free_pct <= 100.0);
        }
    }
}
