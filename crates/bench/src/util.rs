//! Harness utilities: CLI scaling options, CSV output, box-plot
//! statistics and simple text tables.
// Bench tables index fixed-size series they sized themselves.
#![allow(clippy::indexing_slicing, clippy::expect_used, clippy::unwrap_used)]

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

/// Experiment scaling options, parsed from the command line.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Independent runs (paper: "each data point is an average of at
    /// least 30 runs").
    pub runs: usize,
    /// Update instances per run (paper: 500).
    pub instances: usize,
    /// Wall-clock budget per exact solver invocation.
    pub budget: Duration,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        // Smoke-scale defaults: seconds, not hours.
        RunOptions {
            runs: 3,
            instances: 40,
            budget: Duration::from_millis(300),
            seed: 20170605, // ICDCS'17
        }
    }
}

impl RunOptions {
    /// The paper-scale configuration (30 runs × 500 instances, 600 s
    /// solver budgets).
    pub fn paper() -> Self {
        RunOptions {
            runs: 30,
            instances: 500,
            budget: Duration::from_secs(600),
            seed: 20170605,
        }
    }

    /// Parses `--runs N --instances M --budget-ms B --seed S --paper`
    /// from an argument iterator (unknown arguments are ignored so
    /// binaries can add their own).
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut opts = RunOptions::default();
        let argv: Vec<String> = args.collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--paper" => opts = RunOptions::paper(),
                "--runs" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.runs = v;
                        i += 1;
                    }
                }
                "--instances" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.instances = v;
                        i += 1;
                    }
                }
                "--budget-ms" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.budget = Duration::from_millis(v);
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seed = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }
}

/// Five-number summary for box plots (Fig. 9).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Mean (the paper quotes averages in the text).
    pub mean: f64,
}

impl BoxStats {
    /// Computes the summary of a sample (empty ⇒ all zeros).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return BoxStats {
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
                mean: 0.0,
            };
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let q = |p: f64| -> f64 {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
            }
        };
        BoxStats {
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *v.last().expect("non-empty"),
            mean: v.iter().sum::<f64>() / v.len() as f64,
        }
    }
}

/// A simple CSV sink under `target/experiments/`.
pub struct CsvSink {
    path: PathBuf,
    buf: String,
}

impl CsvSink {
    /// Opens a sink for `name.csv` with a header row.
    pub fn new(name: &str, header: &[&str]) -> Self {
        let mut buf = String::new();
        let _ = writeln!(buf, "{}", header.join(","));
        let path = PathBuf::from("target/experiments").join(format!("{name}.csv"));
        CsvSink { path, buf }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        let _ = writeln!(self.buf, "{}", cells.join(","));
    }

    /// Writes the file, returning its path (errors are printed, not
    /// fatal — the experiment data also went to stdout).
    pub fn finish(self) -> PathBuf {
        if let Some(dir) = self.path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        if let Err(e) = fs::write(&self.path, &self.buf) {
            eprintln!("warning: could not write {}: {e}", self.path.display());
        }
        self.path
    }
}

/// Formats a right-aligned text table.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut out = String::new();
    let fmt = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hs: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "{}", fmt(&hs, &widths));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for r in rows {
        let _ = writeln!(out, "{}", fmt(r, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_and_scale() {
        let opts = RunOptions::from_args(
            [
                "--runs",
                "7",
                "--instances",
                "11",
                "--budget-ms",
                "250",
                "--seed",
                "9",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(opts.runs, 7);
        assert_eq!(opts.instances, 11);
        assert_eq!(opts.budget, Duration::from_millis(250));
        assert_eq!(opts.seed, 9);
        let paper = RunOptions::from_args(["--paper".to_string()].into_iter());
        assert_eq!(paper.runs, 30);
        assert_eq!(paper.instances, 500);
    }

    #[test]
    fn box_stats_quartiles() {
        let s = BoxStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        let empty = BoxStats::of(&[]);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn text_table_aligns() {
        let t = text_table(
            &["n", "value"],
            &[
                vec!["10".into(), "0.5".into()],
                vec!["100".into(), "12.25".into()],
            ],
        );
        assert!(t.contains("  n"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn csv_sink_writes() {
        let mut sink = CsvSink::new("util_test", &["a", "b"]);
        sink.row(&["1".into(), "2".into()]);
        let path = sink.finish();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("a,b\n1,2"));
    }
}
