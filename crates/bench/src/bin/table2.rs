//! Regenerates the paper's Table II.
#![forbid(unsafe_code)]

fn main() {
    println!("{}", chronus_bench::table2::render(2));
}
