//! Regenerates the paper's Table II.
fn main() {
    println!("{}", chronus_bench::table2::render(2));
}
