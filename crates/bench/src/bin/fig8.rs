//! Regenerates Fig. 8: number of congested time-extended links.
#![forbid(unsafe_code)]

use chronus_bench::sweep::{run_sweep, PAPER_SIZES};
use chronus_bench::util::{text_table, CsvSink, RunOptions};

fn main() {
    let opts = RunOptions::from_args(std::env::args().skip(1));
    let points = run_sweep(&opts, &PAPER_SIZES);
    let mut sink = CsvSink::new("fig8", &["switches", "chronus_links", "or_links"]);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            sink.row(&[
                p.switches.to_string(),
                format!("{:.2}", p.chronus_congested_links),
                format!("{:.2}", p.or_congested_links),
            ]);
            vec![
                p.switches.to_string(),
                format!("{:.2}", p.chronus_congested_links),
                format!("{:.2}", p.or_congested_links),
            ]
        })
        .collect();
    println!("Fig. 8 — congested time-extended links per instance (mean)");
    println!("{}", text_table(&["switches", "Chronus", "OR"], &rows));
    let path = sink.finish();
    println!("(csv: {})", path.display());
}
