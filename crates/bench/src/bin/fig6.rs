//! Regenerates Fig. 6: bandwidth consumption vs time per scheme.
#![forbid(unsafe_code)]

use chronus_bench::util::CsvSink;

fn main() {
    let series = chronus_bench::fig6::run();
    let mut sink = CsvSink::new("fig6", &["scheme", "second", "mbps"]);
    println!("Fig. 6 — bandwidth consumption (Mbps) during the update");
    println!("{:>8} {:>7} {:>9}", "scheme", "second", "Mbps");
    for s in &series {
        for &(sec, mbps) in &s.series {
            println!("{:>8} {:>7} {:>9.1}", s.name, sec, mbps);
            sink.row(&[s.name.to_string(), sec.to_string(), format!("{mbps:.2}")]);
        }
        println!(
            "-- {} peak {:.1} Mbps, lost bytes {}",
            s.name,
            s.peak(),
            s.lost_bytes
        );
    }
    let path = sink.finish();
    println!("(csv: {})", path.display());
}
