//! Sharded vs joint multi-flow planning benchmark, machine readable.
//!
//! The sharded planner (`chronus_core::shard`) exists to make K-flow
//! updates on fabric-scale topologies *faster* without giving up the
//! joint proof: pods plan in parallel against reserved slices of the
//! shared links, and the per-shard certificates compose into one
//! sealed joint certificate. This bench measures exactly that claim:
//! the same K-flow instances planned **sharded** (pod partition,
//! parallel workers, composed certificate) and **jointly** (one
//! monolithic greedy run), both arms with certification on, on
//! fat-tree fabrics at the nominal scales n ∈ {512, 2048} (arity 20 →
//! 500 switches, arity 40 → 2000 switches) and K ∈ {8, 32, 128} flows.
//!
//! The flow mix is mostly pod-local **dependency chains**: flows in a
//! pod occupy consecutive aggregation groups and each migrates onto
//! its neighbour's current group, with link capacity (150) unable to
//! hold two demands (100) at once — so the chain must hand off
//! sequentially and the planner genuinely works for its schedule.
//! One in sixteen flows crosses pods through the core on dedicated
//! aggregation groups — enough cross-shard load that the reservation
//! table actually has shared links to slice, while staying statically
//! additive so both arms stay clean and the comparison measures
//! *time*, not luck.
//!
//! Per cell it emits wall-clock totals for both arms, the shard
//! stats, and a `summary/{n}x{K}` object with `speedup`
//! (joint ÷ sharded), `sharded_clean` and `joint_clean` rates.
//! Writes `BENCH_multiflow.json`; `bench_check --multiflow` gates the
//! speedup floor at the 2048x128 cell and pins both clean rates at
//! every cell.
// Bench harness: panicking on a malformed fixture is intended.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::indexing_slicing)]
#![forbid(unsafe_code)]

use chronus_core::greedy::{greedy_schedule_in, GreedyConfig};
use chronus_core::shard::{shard_schedule_in, ShardStats, ShardingConfig};
use chronus_net::topology::{fat_tree, LinkParams};
use chronus_net::{Flow, FlowId, Network, Path, SwitchId, UpdateInstance};
use chronus_timenet::SimWorkspace;
use std::fmt::Write as _;
use std::time::Instant;

/// (nominal scale, fat-tree arity): arity 20 → 500 switches, arity
/// 40 → 2000. The nominal n labels the JSON keys.
const FABRICS: &[(usize, usize)] = &[(512, 20), (2048, 40)];
/// Flows per instance.
const FLOW_COUNTS: &[usize] = &[8, 32, 128];
/// Instances per cell (fewer at the large scale: the *joint* arm is
/// the expensive one, and it is the baseline, not the subject).
fn instances_for(n: usize) -> usize {
    if n >= 2048 {
        2
    } else {
        3
    }
}

struct Fabric {
    net: Network,
    cores: Vec<SwitchId>,
    aggs: Vec<SwitchId>,
    edges: Vec<SwitchId>,
    pods: usize,
    half: usize,
}

fn build_fabric(arity: usize) -> Fabric {
    // Capacity 150 against demand 100: no link can hold two flows, so
    // chained migrations must hand off in time.
    let net = fat_tree(
        arity,
        LinkParams {
            capacity: 150,
            delay: 1,
        },
    );
    let half = arity / 2;
    let by_name = |prefix: &str, count: usize| -> Vec<SwitchId> {
        let mut ids = vec![SwitchId(0); count];
        let mut found = 0usize;
        for s in net.switches() {
            if let Some(name) = net.switch_name(s) {
                if let Some(i) = name.strip_prefix(prefix).and_then(|t| t.parse::<usize>().ok()) {
                    ids[i] = s;
                    found += 1;
                }
            }
        }
        assert_eq!(found, count, "fabric is missing {prefix} switches");
        ids
    };
    Fabric {
        cores: by_name("core", half * half),
        aggs: by_name("agg", arity * half),
        edges: by_name("edge", arity * half),
        net,
        pods: arity,
        half,
    }
}

/// One in this many flows crosses pods through the core.
const CROSS_EVERY: usize = 16;
const DEMAND: u64 = 100;
/// Cross flows are half-demand so a *pair* of them fits one link:
/// their shared destination links are additively safe reservations.
const CROSS_DEMAND: u64 = 50;
/// Target chain length per pod (deeper layers allowing).
const CHAIN_TARGET: usize = 16;

/// Deterministic K-flow mix over the fabric.
///
/// Chain flows form per-pod hand-off chains: flow `j` of a pod runs
/// `edge0 → agg(j) → edge1` and migrates to `agg(j + 1)` — exactly
/// the group flow `j + 1` still occupies, and the link cannot hold
/// both (capacity 150, demands 100), so the pod's chain must hand off
/// back-to-front in time. Chains pack into as few pods as the
/// aggregation depth allows (up to [`CHAIN_TARGET`] flows each), so
/// the joint planner faces one big entangled instance while each
/// shard plans a single short chain. Cross flows ride dedicated top
/// aggregation groups and per-flow core switches, and arrive in
/// *pairs* sharing a destination edge at half demand — the shared
/// destination links are loaded by two shards at once, so the
/// reservation table genuinely has capacity to slice, while staying
/// statically additive (two 50s under a 150 link) so both arms stay
/// clean and the comparison measures *time*, not luck. The `seed`
/// rotates each chain's starting group so instances of a cell
/// exercise different links.
fn flows_for(fabric: &Fabric, kflows: usize, seed: u64) -> Vec<Flow> {
    let (pods, half) = (fabric.pods, fabric.half);
    let agg = |pod: usize, a: usize| fabric.aggs[pod * half + a % half];
    let edge = |pod: usize, e: usize| fabric.edges[pod * half + e % half];
    let core = |a: usize, c: usize| fabric.cores[(a % half) * half + c % half];
    let cross = kflows / CROSS_EVERY;
    let chain_total = kflows - cross;
    // Chain groups stay below the two reserved cross groups.
    let max_chain = half.saturating_sub(4).max(1);
    let target = max_chain.min(CHAIN_TARGET);
    let use_pods = chain_total.div_ceil(target).clamp(1, pods);
    assert!(
        use_pods * max_chain >= chain_total,
        "fabric too small for {kflows} flows"
    );
    let mut flows = Vec::with_capacity(kflows);
    for t in 0..chain_total {
        let pod = t % use_pods;
        let j = t / use_pods;
        let len = chain_total / use_pods + usize::from(pod < chain_total % use_pods);
        // Rotate the chain's starting group wherever the layer has
        // slack for it, so seeds touch different links.
        let rot = (seed as usize % 2).min(half.saturating_sub(4).saturating_sub(len));
        let (e0, e1) = (edge(pod, 0), edge(pod, 1));
        flows.push(
            Flow::new(
                FlowId(flows.len() as u32),
                DEMAND,
                Path::new(vec![e0, agg(pod, rot + j), e1]),
                Path::new(vec![e0, agg(pod, rot + j + 1), e1]),
            )
            .expect("chain fixture paths"),
        );
    }
    for m in 0..cross {
        let (p, d) = (m % pods, (pods / 2 + m / 2) % pods);
        let (a0, a1) = (half - 2, half - 1);
        flows.push(
            Flow::new(
                FlowId(flows.len() as u32),
                CROSS_DEMAND,
                Path::new(vec![edge(p, 3), agg(p, a0), core(a0, m), agg(d, a0), edge(d, 4)]),
                Path::new(vec![edge(p, 3), agg(p, a1), core(a1, m), agg(d, a1), edge(d, 4)]),
            )
            .expect("cross fixture paths"),
        );
    }
    flows
}

#[derive(Default)]
struct Arm {
    nanos: f64,
    clean: usize,
    attempts: usize,
}

fn main() {
    let mut rows = String::new();
    let mut summaries = String::new();

    // Process warm-up: burn in clock ramp and allocator on a throwaway
    // small cell before anything is timed.
    {
        let fabric = build_fabric(8);
        let inst =
            UpdateInstance::new(fabric.net.clone(), flows_for(&fabric, 8, 0)).expect("warm-up");
        let mut ws = SimWorkspace::default();
        let _ = shard_schedule_in(&inst, ShardingConfig::default(), &mut ws);
        let _ = greedy_schedule_in(&inst, GreedyConfig::default(), &mut ws);
    }

    for &(n, arity) in FABRICS {
        let fabric = build_fabric(arity);
        for &kflows in FLOW_COUNTS {
            let shard_cfg = ShardingConfig {
                shards: fabric.pods,
                ..ShardingConfig::default()
            };
            let mut sharded = Arm::default();
            let mut joint = Arm::default();
            let mut stats = ShardStats::default();
            let mut ws = SimWorkspace::default();
            for seed in 0..instances_for(n) as u64 {
                let inst = UpdateInstance::new(fabric.net.clone(), flows_for(&fabric, kflows, seed))
                    .unwrap_or_else(|e| panic!("bench instance {n}x{kflows}/{seed}: {e}"));

                let t0 = Instant::now();
                let out = shard_schedule_in(&inst, shard_cfg, &mut ws);
                sharded.nanos += t0.elapsed().as_nanos() as f64;
                sharded.attempts += 1;
                if let Ok(out) = &out {
                    stats = out.stats;
                    let sealed = out
                        .certificate
                        .as_ref()
                        .is_some_and(|c| c.check(&inst).is_ok());
                    if sealed {
                        sharded.clean += 1;
                    }
                }

                let t0 = Instant::now();
                let out = greedy_schedule_in(&inst, GreedyConfig::default(), &mut ws);
                joint.nanos += t0.elapsed().as_nanos() as f64;
                joint.attempts += 1;
                if let Ok(out) = &out {
                    let sealed = out
                        .certificate
                        .as_ref()
                        .is_some_and(|c| c.check(&inst).is_ok());
                    if sealed {
                        joint.clean += 1;
                    }
                }
            }
            let speedup = joint.nanos / sharded.nanos.max(1.0);
            let sharded_clean = sharded.clean as f64 / sharded.attempts.max(1) as f64;
            let joint_clean = joint.clean as f64 / joint.attempts.max(1) as f64;
            println!(
                "multiflow/{n}x{kflows}: sharded {:.1} ms, joint {:.1} ms -> speedup {speedup:.2}x \
                 (shards {}, shared links {}, fallback {}, clean {sharded_clean:.2}/{joint_clean:.2})",
                sharded.nanos / 1e6,
                joint.nanos / 1e6,
                stats.shards,
                stats.shared_links,
                stats.fell_back_joint,
            );
            let _ = write!(
                rows,
                "{}\n  \"multiflow/{n}x{kflows}\": {{\"sharded_ns\": {:.0}, \"joint_ns\": {:.0}, \
                 \"shards\": {}, \"shared_links\": {}, \"replan_rounds\": {}, \"conflicts\": {}}}",
                if rows.is_empty() { "" } else { "," },
                sharded.nanos,
                joint.nanos,
                stats.shards,
                stats.shared_links,
                stats.replan_rounds,
                stats.conflicts,
            );
            let _ = write!(
                summaries,
                ",\n  \"summary/{n}x{kflows}\": {{\"speedup\": {speedup:.2}, \
                 \"sharded_clean\": {sharded_clean:.2}, \"joint_clean\": {joint_clean:.2}}}"
            );
        }
    }

    let json = format!("{{{rows}{summaries}\n}}\n");
    let path = "BENCH_multiflow.json";
    std::fs::write(path, &json).expect("write BENCH_multiflow.json");
    println!("(json: {path})");
}
