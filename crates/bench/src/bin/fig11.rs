//! Regenerates Fig. 11: CDF of the update time at 40 switches.
#![forbid(unsafe_code)]

use chronus_bench::fig11::{run, UpdateTimes};
use chronus_bench::util::{CsvSink, RunOptions};

fn main() {
    let opts = RunOptions::from_args(std::env::args().skip(1));
    let times = run(&opts, 40);
    let mut sink = CsvSink::new("fig11", &["scheme", "time_units", "cdf"]);
    println!("Fig. 11 — CDF of update time (|T|, time units) at 40 switches");
    for (name, sample) in [("Chronus", &times.chronus), ("OPT", &times.opt)] {
        println!("{name}:");
        for (x, f) in UpdateTimes::cdf(sample) {
            println!("  <= {x:>3} time units: {:>5.1}%", f * 100.0);
            sink.row(&[name.to_string(), x.to_string(), format!("{f:.4}")]);
        }
        if let Some(p90) = UpdateTimes::quantile(sample, 0.9) {
            println!("  p90 = {p90} time units over {} instances", sample.len());
        }
    }
    let path = sink.finish();
    println!("(csv: {})", path.display());
}
