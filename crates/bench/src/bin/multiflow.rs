//! Extension experiment: joint vs independent multi-flow scheduling.
#![forbid(unsafe_code)]

use chronus_bench::multiflow::run;
use chronus_bench::util::{text_table, CsvSink, RunOptions};

fn main() {
    let opts = RunOptions::from_args(std::env::args().skip(1));
    let mut sink = CsvSink::new(
        "multiflow",
        &["flows", "joint_clean", "independent_clean", "total"],
    );
    let mut rows = Vec::new();
    for k in [2usize, 3, 4, 6] {
        let p = run(&opts, 16, k);
        sink.row(&[
            k.to_string(),
            p.joint_clean.to_string(),
            p.independent_clean.to_string(),
            p.total.to_string(),
        ]);
        rows.push(vec![
            k.to_string(),
            format!("{}/{}", p.joint_clean, p.total),
            format!("{}/{}", p.independent_clean, p.total),
        ]);
    }
    println!("Multi-flow extension — clean migrations, joint vs independent scheduling");
    println!("{}", text_table(&["flows", "joint", "independent"], &rows));
    let path = sink.finish();
    println!("(csv: {})", path.display());
}
