//! Walks through the paper's Figs. 1/2/3/5 example end to end.
#![forbid(unsafe_code)]

fn main() {
    println!("{}", chronus_bench::walkthrough::run());
}
