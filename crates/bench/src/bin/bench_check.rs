//! CI gate over the committed bench JSONs: turns the bench-smoke job
//! from "print the numbers" into an assertion.
//!
//! Usage:
//! `bench_check <baseline.json> <fresh.json> [<sim_baseline.json> <sim_fresh.json>]`
//!
//! Over `BENCH_incremental.json` (the first pair), two checks, exit
//! code 1 on any failure:
//!
//! 1. **Speedup floor** — the fresh run's `gate_speedup` must be ≥ 1.0
//!    at every size where the incremental ledger is supposed to win
//!    (n ∈ {64, 512, 2048}). The n=8 point is deliberately excluded
//!    from the *gate* comparison: below `incremental_cutoff` the gate
//!    now runs the full backend on both arms (the raw ledger recorded
//!    0.58× there before the cutoff landed), so the ratio is ~1 noise.
//! 2. **Makespan pin** — each size's greedy `makespan` must equal the
//!    committed baseline's. Timing numbers drift with hardware;
//!    schedule *quality* must not. A makespan change means the greedy
//!    scheduler's behaviour changed, which a perf-smoke job must not
//!    let slide through silently.
//!
//! Over `BENCH_simulate.json` (the optional second pair), the same two
//! shapes for the flat-scan optimization:
//!
//! 3. **End-to-end speedup floor** — `e2e_speedup` (legacy scan ÷ flat
//!    scan, whole `greedy_schedule` wall clock) must clear per-size
//!    floors well below the committed numbers but high enough to catch
//!    a real regression: ≥1.2× at 64, ≥3× at 512, ≥5× at 2048 (the
//!    committed run records 1.7×/6.8×/29×). n=8 carries a ≥0.95 floor:
//!    below `incremental_cutoff` the default config now takes the
//!    legacy walks on *both* arms (the flat tables recorded a 0.90×
//!    small-n slowdown before that fallback landed), so the ratio must
//!    sit at ~1.0 noise and anything under 0.95 means small instances
//!    quietly regressed again.
//! 4. **Makespan pin** — as above, at every emitted size; the flat
//!    scan must be behaviourally invisible.
//!
//! A further series is printed but never gated: per-size `gate_nanos`
//! deltas against the baseline (gate wall-clock drifts with hardware,
//! so it is CI-log information, not an assertion).
//!
//! A second mode, `bench_check --multiflow <baseline.json> <fresh.json>`,
//! gates `BENCH_multiflow.json` (sharded vs joint planning):
//!
//! 5. **Sharded speedup floor** — the fresh `summary/2048x128` cell's
//!    `speedup` must be ≥ 2.0. That is the cell the sharded planner
//!    exists for (fabric-scale topology, K = 128 flows); the committed
//!    run records ~2.9×, so the floor is well clear of noise while
//!    still catching the planner losing its edge. Smaller cells are
//!    printed for the log but never gated — at K = 8 the partition
//!    overhead legitimately loses to a trivial joint run.
//! 6. **Clean-rate pin** — `sharded_clean` and `joint_clean` must
//!    equal the committed baseline at *every* cell. Timing drifts;
//!    the fraction of runs that end with a sealed, `check`-clean
//!    certificate must not.
//!
//! The JSON is the bench's own flat hand-written format, so parsing is
//! a hand-rolled field scan — no serde in the workspace.

#![forbid(unsafe_code)]

use std::process::ExitCode;

/// Sizes whose gate speedup must clear 1.0 (see module docs for why
/// n=8 is excluded).
const GATED_SIZES: &[usize] = &[64, 512, 2048];

/// All sizes the benches emit; makespans are pinned at every one.
const ALL_SIZES: &[usize] = &[8, 64, 512, 2048];

/// Per-size floors for the flat-scan end-to-end speedup (size, floor).
/// n=8 runs the legacy scan on both arms (small-n cutoff), so its
/// floor guards against the ratio drifting below parity noise.
const E2E_FLOORS: &[(usize, f64)] = &[(8, 0.95), (64, 1.2), (512, 3.0), (2048, 5.0)];

/// Every cell `bench_multiflow` emits, as `{n}x{K}` key suffixes.
const MULTIFLOW_CELLS: &[&str] = &["512x8", "512x32", "512x128", "2048x8", "2048x32", "2048x128"];

/// The one gated multiflow cell and its sharded-speedup floor. The
/// committed run records ~2.9× here; 2.0 catches a real regression
/// without flaking on scheduler noise.
const MULTIFLOW_GATE: (&str, f64) = ("2048x128", 2.0);

/// Extracts `field` from the flat JSON object that follows `"key":`.
/// Returns `None` when the key or field is missing — the caller
/// decides whether that is fatal (fresh file) or tolerable (an older
/// committed baseline without the field).
fn lookup(json: &str, key: &str, field: &str) -> Option<f64> {
    let start = json.find(&format!("\"{key}\""))?;
    let obj = &json[start..];
    let open = obj.find('{')?;
    let close = obj[open..].find('}')? + open;
    let body = &obj[open..=close];
    let fstart = body.find(&format!("\"{field}\""))?;
    let after = &body[fstart..];
    let colon = after.find(':')?;
    let tail = after[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn read(path: &str) -> Option<String> {
    match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            None
        }
    }
}

/// `--multiflow` mode: gates `BENCH_multiflow.json` (see module docs,
/// checks 5 and 6).
fn check_multiflow(baseline_path: &str, fresh_path: &str) -> ExitCode {
    let (Some(baseline), Some(fresh)) = (read(baseline_path), read(fresh_path)) else {
        return ExitCode::FAILURE;
    };

    let mut failures = 0u32;

    let (gate_cell, floor) = MULTIFLOW_GATE;
    let gate_key = format!("summary/{gate_cell}");
    match lookup(&fresh, &gate_key, "speedup") {
        Some(s) if s >= floor => println!("ok: {gate_key} speedup {s:.2} >= {floor:.2}"),
        Some(s) => {
            eprintln!("FAIL: {gate_key} speedup {s:.2} < {floor:.2} — sharded planner regressed");
            failures += 1;
        }
        None => {
            eprintln!("FAIL: {gate_key} speedup missing from {fresh_path}");
            failures += 1;
        }
    }

    for &cell in MULTIFLOW_CELLS {
        let key = format!("summary/{cell}");
        for field in ["sharded_clean", "joint_clean"] {
            match (lookup(&baseline, &key, field), lookup(&fresh, &key, field)) {
                (Some(b), Some(f)) if b == f => println!("ok: {key} {field} {f:.2} unchanged"),
                (Some(b), Some(f)) => {
                    eprintln!("FAIL: {key} {field} changed: baseline {b:.2}, fresh {f:.2}");
                    failures += 1;
                }
                (None, _) => {
                    eprintln!("FAIL: {key} {field} missing from baseline {baseline_path}");
                    failures += 1;
                }
                (_, None) => {
                    eprintln!("FAIL: {key} {field} missing from {fresh_path}");
                    failures += 1;
                }
            }
        }
        // Ungated speedups: CI-log information (hardware-dependent,
        // and small cells legitimately sit below 1.0).
        if cell != gate_cell {
            match lookup(&fresh, &key, "speedup") {
                Some(s) => println!("info: {key} speedup {s:.2} (ungated)"),
                None => println!("info: {key} speedup not recorded in {fresh_path}"),
            }
        }
    }

    if failures > 0 {
        eprintln!("bench_check: {failures} assertion(s) failed");
        ExitCode::FAILURE
    } else {
        println!("bench_check: all multiflow gates passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (baseline_path, fresh_path, sim_paths) = match args.as_slice() {
        [_, flag, b, f] if flag == "--multiflow" => return check_multiflow(b, f),
        [_, b, f] => (b.clone(), f.clone(), None),
        [_, b, f, sb, sf] => (b.clone(), f.clone(), Some((sb.clone(), sf.clone()))),
        _ => {
            eprintln!(
                "usage: bench_check <baseline.json> <fresh.json> \
                 [<sim_baseline.json> <sim_fresh.json>]\n\
                 \u{20}      bench_check --multiflow <baseline.json> <fresh.json>"
            );
            return ExitCode::FAILURE;
        }
    };
    let (Some(baseline), Some(fresh)) = (read(&baseline_path), read(&fresh_path)) else {
        return ExitCode::FAILURE;
    };

    let mut failures = 0u32;

    for &n in GATED_SIZES {
        let key = format!("summary/{n}");
        match lookup(&fresh, &key, "gate_speedup") {
            Some(s) if s >= 1.0 => println!("ok: {key} gate_speedup {s:.2} >= 1.0"),
            Some(s) => {
                eprintln!("FAIL: {key} gate_speedup {s:.2} < 1.0 — incremental gate regressed");
                failures += 1;
            }
            None => {
                eprintln!("FAIL: {key} gate_speedup missing from {fresh_path}");
                failures += 1;
            }
        }
    }

    for &n in ALL_SIZES {
        let key = format!("summary/{n}");
        let (base_m, fresh_m) = (
            lookup(&baseline, &key, "makespan"),
            lookup(&fresh, &key, "makespan"),
        );
        match (base_m, fresh_m) {
            (Some(b), Some(f)) if b == f => println!("ok: {key} makespan {f} unchanged"),
            (Some(b), Some(f)) => {
                eprintln!("FAIL: {key} makespan changed: baseline {b}, fresh {f}");
                failures += 1;
            }
            (None, _) => {
                eprintln!("FAIL: {key} makespan missing from baseline {baseline_path}");
                failures += 1;
            }
            (_, None) => {
                eprintln!("FAIL: {key} makespan missing from {fresh_path}");
                failures += 1;
            }
        }
    }

    if let Some((sim_baseline_path, sim_fresh_path)) = &sim_paths {
        let (Some(sim_baseline), Some(sim_fresh)) = (read(sim_baseline_path), read(sim_fresh_path))
        else {
            return ExitCode::FAILURE;
        };

        for &(n, floor) in E2E_FLOORS {
            let key = format!("summary/{n}");
            match lookup(&sim_fresh, &key, "e2e_speedup") {
                Some(s) if s >= floor => {
                    println!("ok: sim {key} e2e_speedup {s:.2} >= {floor:.2}");
                }
                Some(s) => {
                    eprintln!(
                        "FAIL: sim {key} e2e_speedup {s:.2} < {floor:.2} — \
                         flat-scan greedy regressed"
                    );
                    failures += 1;
                }
                None => {
                    eprintln!("FAIL: sim {key} e2e_speedup missing from {sim_fresh_path}");
                    failures += 1;
                }
            }
        }

        for &n in ALL_SIZES {
            let key = format!("summary/{n}");
            match (
                lookup(&sim_baseline, &key, "makespan"),
                lookup(&sim_fresh, &key, "makespan"),
            ) {
                (Some(b), Some(f)) if b == f => println!("ok: sim {key} makespan {f} unchanged"),
                (Some(b), Some(f)) => {
                    eprintln!("FAIL: sim {key} makespan changed: baseline {b}, fresh {f}");
                    failures += 1;
                }
                (None, _) => {
                    eprintln!("FAIL: sim {key} makespan missing from baseline {sim_baseline_path}");
                    failures += 1;
                }
                (_, None) => {
                    eprintln!("FAIL: sim {key} makespan missing from {sim_fresh_path}");
                    failures += 1;
                }
            }
        }
    }

    // Informational only — gate-time wall-clock drifts with hardware,
    // so the deltas are printed for the CI log but never gated on.
    for &n in ALL_SIZES {
        let key = format!("summary/{n}");
        match (
            lookup(&baseline, &key, "gate_nanos"),
            lookup(&fresh, &key, "gate_nanos"),
        ) {
            (Some(b), Some(f)) if b > 0.0 => println!(
                "info: {key} gate_nanos {f:.0} (baseline {b:.0}, {:+.1}%)",
                (f - b) / b * 100.0
            ),
            (_, Some(f)) => println!("info: {key} gate_nanos {f:.0} (no baseline value)"),
            (_, None) => println!("info: {key} gate_nanos not recorded in {fresh_path}"),
        }
    }

    if failures > 0 {
        eprintln!("bench_check: {failures} assertion(s) failed");
        ExitCode::FAILURE
    } else {
        println!("bench_check: all gates passed");
        ExitCode::SUCCESS
    }
}
