//! Certified fault sweep: the end-to-end robustness gate for the
//! fault-injection + reliable-delivery + slack-recovery stack.
//!
//! Usage: `fault_sweep [seeds]` (default 1000).
//!
//! For every seed the sweep runs the motivating example's timed update
//! through the emulator with faults injected on the control channel:
//!
//! - message drops with per-seed probability up to 20%;
//! - one switch-agent reboot that wipes armed triggers, timed to end
//!   before the update window so recovery re-arms can land;
//! - the reliable-delivery protocol (acks, exponential-backoff
//!   retransmission, receiver dedup) defending the channel;
//! - a slack budget taken from a real `chronus-verify` certificate
//!   over the dilated greedy schedule, bounding watchdog re-arms.
//!
//! Every run must end *certified*: all timed tasks applied, no
//! rollback, and a clean data plane (no loops, blackholes or drops).
//! Any seed that fails is reported and the process exits non-zero —
//! this binary is a CI gate, not a demo.
//!
//! The sweep also prints the trigger-executor scaling check: 10 000
//! triggers drained through the `BinaryHeap` `ScheduledExecutor`
//! versus a naive rescan-on-every-advance executor (the shape of the
//! pre-fix implementation), timed side by side. The print is
//! informational, like `bench_check`'s `gate_nanos` series: wall-clock
//! ratios drift with hardware, correctness gates do not.

#![forbid(unsafe_code)]

use chronus_clock::{HardwareClock, Nanos, ScheduledExecutor};
use chronus_core::greedy::greedy_schedule;
use chronus_emu::{EmuConfig, Emulator, UpdateDriver};
use chronus_faults::{FaultPlan, FaultSummary, ReliableConfig};
use chronus_net::{motivating_example, SwitchId};
use chronus_verify::{slack_certificate, SlackConfig};
use std::process::ExitCode;
use std::time::Instant;

/// Schedule-time dilation factor: the greedy packing certifies zero
/// slack on the motivating example; ×2 buys a full step of certified
/// tolerance (Δ ≈ one 100 ms step) for the watchdog to spend.
const DILATION: i64 = 2;

/// A naive trigger executor with the pre-fix shape: armed triggers in
/// a flat vector, every `advance_to` rescanning everything — O(n) per
/// firing, O(n²) to drain n triggers one by one.
struct NaiveExecutor {
    clock: HardwareClock,
    armed: Vec<(Nanos, u64)>,
}

impl NaiveExecutor {
    fn new(clock: HardwareClock) -> Self {
        NaiveExecutor {
            clock,
            armed: Vec::new(),
        }
    }

    fn arm(&mut self, local_time: Nanos, payload: u64) {
        self.armed.push((local_time, payload));
    }

    fn advance_to(&mut self, now: Nanos) -> Vec<(Nanos, u64)> {
        let local_now = self.clock.read(now);
        let mut fired: Vec<(Nanos, u64)> = Vec::new();
        let mut i = 0;
        while i < self.armed.len() {
            if self.armed[i].0 <= local_now {
                fired.push(self.armed.remove(i));
            } else {
                i += 1;
            }
        }
        fired.sort_unstable();
        fired
    }
}

/// Drains `n` triggers one firing per `advance_to` call through both
/// executors and prints the wall-clock comparison.
fn executor_scaling_check(n: usize) {
    let clock = HardwareClock::perfect();

    let start = Instant::now();
    let mut heap = ScheduledExecutor::new(clock);
    for i in 0..n {
        heap.arm(i as Nanos, i as u64);
    }
    let mut heap_fired = 0usize;
    for t in 0..n {
        heap_fired += heap.advance_to(t as Nanos).len();
    }
    let heap_elapsed = start.elapsed();

    let start = Instant::now();
    let mut naive = NaiveExecutor::new(clock);
    for i in 0..n {
        naive.arm(i as Nanos, i as u64);
    }
    let mut naive_fired = 0usize;
    for t in 0..n {
        naive_fired += naive.advance_to(t as Nanos).len();
    }
    let naive_elapsed = start.elapsed();

    assert_eq!(heap_fired, n);
    assert_eq!(naive_fired, n);
    let speedup = naive_elapsed.as_nanos() as f64 / heap_elapsed.as_nanos().max(1) as f64;
    println!(
        "info: executor drain of {n} triggers: heap {heap_elapsed:?}, \
         naive rescan {naive_elapsed:?} ({speedup:.0}x) — O(n log n) vs O(n^2)"
    );
}

fn main() -> ExitCode {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);

    let inst = motivating_example();
    let schedule = greedy_schedule(&inst)
        .expect("the motivating example is greedy-schedulable")
        .schedule
        .dilated(DILATION);
    let cert = slack_certificate(&inst, &schedule, &SlackConfig::default())
        .expect("the dilated schedule certifies");
    assert!(
        cert.slack_steps >= 1,
        "dilation must buy at least one step of slack, got {}",
        cert.slack_steps
    );
    let config = EmuConfig {
        run_for: 8_000_000_000,
        update_at: 2_000_000_000,
        ..EmuConfig::default()
    };
    println!(
        "fault sweep: {seeds} seeds, drop <= 20%, one reboot, slack {} step(s) (delta {} ns)",
        cert.slack_steps,
        cert.delta_ns(config.step_ns)
    );

    let started = Instant::now();
    let mut failures = 0u64;
    let mut totals = FaultSummary::default();
    let mut max_deviation = 0u64;
    for seed in 0..seeds {
        // Per-seed fault mix: loss rate sweeps 0..=20%, the rebooting
        // switch cycles through the scheduled ones, and the outage
        // always ends before the update window opens at 2 s.
        let drop_prob = (seed % 21) as f64 / 100.0;
        let reboot_switch = SwitchId((seed % 4) as u32);
        let reboot_at = 1_000_000_000 + (seed % 5) as Nanos * 100_000_000;
        let outage = 200_000_000 + (seed % 3) as Nanos * 100_000_000;
        let plan = FaultPlan::lossy(seed, drop_prob).with_reboot(reboot_at, reboot_switch, outage);

        let mut emu = Emulator::new(&inst, config, seed);
        emu.install_faults_certified(plan, ReliableConfig::default(), &cert);
        emu.install_driver(UpdateDriver::chronus(schedule.clone(), &inst));
        let report = emu.run();

        let f = report.faults.expect("faults were installed");
        totals.drops += f.drops;
        totals.dups += f.dups;
        totals.retransmits += f.retransmits;
        totals.exhausted += f.exhausted;
        totals.reboots += f.reboots;
        totals.triggers_lost += f.triggers_lost;
        totals.rearms += f.rearms;
        totals.rollbacks += f.rollbacks;
        max_deviation = max_deviation.max(f.max_fire_deviation_ns);

        let certified = report.timed_tasks_pending == 0 && !report.rolled_back && report.clean();
        if !certified {
            failures += 1;
            eprintln!(
                "FAIL: seed {seed} (drop {drop_prob:.2}, reboot {reboot_switch} at {reboot_at}): \
                 pending {}, rolled_back {}, ttl_drops {}, misses {}, buffer_drops {}\n  {f}",
                report.timed_tasks_pending,
                report.rolled_back,
                report.ttl_drops,
                report.table_misses,
                report.buffer_drops
            );
        }
    }

    println!(
        "swept {seeds} seeds in {:?}: {} drops, {} dups, {} retransmits, {} exhausted, \
         {} reboots ({} triggers lost), {} rearms, {} rollbacks",
        started.elapsed(),
        totals.drops,
        totals.dups,
        totals.retransmits,
        totals.exhausted,
        totals.reboots,
        totals.triggers_lost,
        totals.rearms,
        totals.rollbacks
    );
    println!(
        "max firing deviation {} ns vs certified delta {} ns",
        max_deviation,
        cert.delta_ns(config.step_ns)
    );
    if max_deviation > cert.delta_ns(config.step_ns).max(0) as u64 {
        eprintln!("FAIL: a firing strayed outside the certified slack window");
        failures += 1;
    }

    executor_scaling_check(10_000);

    if failures > 0 {
        eprintln!("fault_sweep: {failures} run(s) ended uncertified");
        ExitCode::FAILURE
    } else {
        println!("fault_sweep: all {seeds} runs ended certified");
        ExitCode::SUCCESS
    }
}
