//! Incremental-vs-full exact-gate benchmark, machine readable.
//!
//! Times `greedy_schedule` with the gate backed by the incremental
//! link×time ledger against the same run re-simulating from scratch at
//! every check, on fig10-scale single-flow instances. Two metrics per
//! size:
//!
//! - `gate_ns_per_op`: wall-clock time spent *inside* the exact gate
//!   (backend construction plus every check), measured by the gate
//!   itself — this isolates the optimization from the greedy loop's
//!   own dependency/loop work, which the gate backend cannot change;
//! - `cells_touched` vs `full_equivalent_cells`: ledger link-time
//!   cells the incremental path visited vs what full re-simulation
//!   would have visited for the same checks.
//!
//! Writes `BENCH_incremental.json`; CI runs this as a smoke job and
//! DESIGN.md §9 quotes the committed numbers.
//!
//! Note on n=8: it sits below the default
//! `GreedyConfig::incremental_cutoff` (32), so the "incremental" arm
//! actually runs the full backend there too — its speedup is timing
//! noise around 1.0 and `bench_check` does not gate it.

#![forbid(unsafe_code)]

use chronus_bench::fig10::scale_instance;
use chronus_core::greedy::{greedy_schedule_in, GreedyConfig, GreedyOutcome};
use chronus_core::ScheduleError;
use chronus_net::UpdateInstance;
use chronus_timenet::SimWorkspace;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Sample {
    name: String,
    ns_per_op: f64,
    gate_ns_per_op: f64,
    simulator_calls: u64,
    cells_touched: u64,
    full_equivalent_cells: u64,
}

/// Repeats one configuration until 400 ms or 20 reps, whichever first
/// (always at least once — the larger sizes may need a single slow
/// rep).
fn time_backend(
    inst: &UpdateInstance,
    incremental: bool,
) -> (f64, f64, Result<GreedyOutcome, ScheduleError>) {
    // Certification off: this benchmark isolates the exact gate, and
    // the independent certifier's cost is the same for both backends.
    let cfg = GreedyConfig {
        incremental_gate: incremental,
        verify: chronus_verify::VerifyConfig::disabled(),
        ..Default::default()
    };
    let mut ws = SimWorkspace::default();
    let mut reps = 0u32;
    let mut total = Duration::ZERO;
    let mut gate_total = 0u64;
    let mut last = None;
    while reps == 0 || (total < Duration::from_millis(400) && reps < 20) {
        let t0 = Instant::now();
        let out = greedy_schedule_in(inst, cfg, &mut ws);
        total += t0.elapsed();
        reps += 1;
        if let Ok(o) = &out {
            gate_total += o.gate_nanos;
        }
        last = Some(out);
    }
    (
        total.as_nanos() as f64 / f64::from(reps),
        gate_total as f64 / f64::from(reps),
        last.expect("at least one rep"),
    )
}

fn main() {
    // 2048 is the acceptance-scale point: a ≥512-switch fig10-scale
    // instance where the gate dominates the full-simulation cost.
    let sizes: &[usize] = &[8, 64, 512, 2048];
    let mut samples: Vec<Sample> = Vec::new();
    let mut summaries = String::new();

    for &n in sizes {
        // A handful of seeds: the random-walk generator occasionally
        // fails to produce a route at small n.
        let inst = (0..8)
            .find_map(|s| scale_instance(n, 20170605 + 977 + s))
            .unwrap_or_else(|| panic!("no fig10-scale instance at n={n}"));

        let mut per_backend = Vec::new();
        let mut makespans = Vec::new();
        for (name, incremental) in [("incremental", true), ("full", false)] {
            let (ns, gate_ns, out) = time_backend(&inst, incremental);
            let (calls, cells, full_cells) = match &out {
                Ok(o) => {
                    makespans.push(o.makespan);
                    (
                        o.simulator_calls as u64,
                        o.gate.cells_touched,
                        o.gate.full_equivalent_cells,
                    )
                }
                Err(e) => panic!("greedy failed on bench instance n={n}: {e}"),
            };
            println!(
                "greedy_exact_gate/{name}/{n}: {ns:.0} ns/op ({gate_ns:.0} ns in gate), \
                 {calls} simulator calls, {cells} cells touched, {full_cells} full-equivalent"
            );
            per_backend.push((ns, gate_ns, cells, full_cells));
            samples.push(Sample {
                name: format!("greedy_exact_gate/{name}/{n}"),
                ns_per_op: ns,
                gate_ns_per_op: gate_ns,
                simulator_calls: calls,
                cells_touched: cells,
                full_equivalent_cells: full_cells,
            });
        }
        let (inc, full) = (&per_backend[0], &per_backend[1]);
        assert_eq!(
            makespans[0], makespans[1],
            "incremental and full gates must schedule identically at n={n}"
        );
        let makespan = makespans[0];
        let speedup = full.0 / inc.0;
        let gate_speedup = full.1 / inc.1;
        let cell_ratio = inc.3 as f64 / inc.2.max(1) as f64;
        println!(
            "  -> n={n}: gate speedup {gate_speedup:.1}x, \
             link visits saved {cell_ratio:.1}x, end-to-end {speedup:.1}x, \
             makespan {makespan}"
        );
        // `gate_nanos` = per-op time inside the incremental gate; an
        // informational series (bench_check prints deltas, never gates
        // on it — wall-clock drifts with hardware).
        let _ = write!(
            summaries,
            ",\n  \"summary/{n}\": {{\"speedup\": {speedup:.2}, \
             \"gate_speedup\": {gate_speedup:.2}, \"cell_ratio\": {cell_ratio:.2}, \
             \"makespan\": {makespan}, \"gate_nanos\": {:.0}}}",
            inc.1
        );
    }

    let mut json = String::from("{");
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n  \"{}\": {{\"ns_per_op\": {:.1}, \"gate_ns_per_op\": {:.1}, \
             \"simulator_calls\": {}, \"cells_touched\": {}, \"full_equivalent_cells\": {}}}",
            s.name,
            s.ns_per_op,
            s.gate_ns_per_op,
            s.simulator_calls,
            s.cells_touched,
            s.full_equivalent_cells
        );
    }
    json.push_str(&summaries);
    json.push_str("\n}\n");

    let path = "BENCH_incremental.json";
    std::fs::write(path, &json).expect("write BENCH_incremental.json");
    println!("(json: {path})");
}
