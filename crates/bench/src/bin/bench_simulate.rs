//! Flat-scan end-to-end greedy benchmark, machine readable.
//!
//! `bench_incremental` isolates the exact *gate*; this bench measures
//! what the gate numbers cannot: the whole `greedy_schedule` wall
//! clock, where profiling showed the per-step candidate scan
//! (Algorithm 3 dependency sets + Algorithm 4 loop walks over
//! `Path` primitives) dominating once the gate went incremental. It
//! times the default flat [`FlowScan`]-based scan against the legacy
//! path-walking scan (`legacy_scan: true`) on the same fig10-scale
//! instances, in the same process with interleaved reps — both arms
//! share every other optimization and see the same clock/load drift,
//! so `e2e_speedup` attributes to the scan alone. (At n=8 the small-n
//! cutoff sends *both* arms down the legacy walks, so that ratio is a
//! parity check, gated at ≥0.95 by `bench_check`.)
//!
//! Per size it emits `flat_ns_per_op`, `legacy_ns_per_op`, their ratio
//! `e2e_speedup`, the (asserted-identical) `makespan`, and the arena
//! high-water mark. Writes `BENCH_simulate.json`; `bench_check` gates
//! `e2e_speedup` floors at n ∈ {64, 512, 2048} and pins makespans.
//!
//! [`FlowScan`]: chronus_core::greedy::GreedyConfig::legacy_scan

#![forbid(unsafe_code)]

use chronus_bench::fig10::scale_instance;
use chronus_core::greedy::{greedy_schedule_in, GreedyConfig, GreedyOutcome};
use chronus_core::ScheduleError;
use chronus_net::UpdateInstance;
use chronus_timenet::SimWorkspace;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn config(legacy_scan: bool) -> GreedyConfig {
    // Certification off: both arms pay it identically, and this bench
    // isolates planning cost.
    GreedyConfig {
        legacy_scan,
        verify: chronus_verify::VerifyConfig::disabled(),
        ..Default::default()
    }
}

/// Times both arms with interleaved reps (flat, legacy, flat, legacy,
/// …) so clock-frequency ramps and neighbour load hit the two arms
/// equally — back-to-back arm blocks made the n=8 ratio drift ±20%
/// even on identical code paths. Runs until an 800 ms shared budget or
/// 2000 rep pairs, whichever first (always at least one pair), after
/// one untimed warm-up pair that eats workspace arena growth and cold
/// caches. Reports each arm's *fastest* rep: the minimum discards
/// scheduler preemptions and cache-eviction spikes that land on one
/// arm but not the other, which is what keeps the small-n parity
/// ratio pinned near 1.0 instead of wandering ±5%.
#[allow(clippy::type_complexity)]
fn time_pair(
    inst: &UpdateInstance,
) -> (
    (f64, Result<GreedyOutcome, ScheduleError>),
    (f64, Result<GreedyOutcome, ScheduleError>),
) {
    let (cfg_flat, cfg_legacy) = (config(false), config(true));
    let mut ws_flat = SimWorkspace::default();
    let mut ws_legacy = SimWorkspace::default();
    let mut last_flat = Some(greedy_schedule_in(inst, cfg_flat, &mut ws_flat));
    let mut last_legacy = Some(greedy_schedule_in(inst, cfg_legacy, &mut ws_legacy));
    let mut reps = 0u32;
    let mut total = Duration::ZERO;
    let mut min_flat = Duration::MAX;
    let mut min_legacy = Duration::MAX;
    while reps == 0 || (total < Duration::from_millis(800) && reps < 2000) {
        let t0 = Instant::now();
        let out = greedy_schedule_in(inst, cfg_flat, &mut ws_flat);
        let dt = t0.elapsed();
        total += dt;
        min_flat = min_flat.min(dt);
        last_flat = Some(out);
        let t0 = Instant::now();
        let out = greedy_schedule_in(inst, cfg_legacy, &mut ws_legacy);
        let dt = t0.elapsed();
        total += dt;
        min_legacy = min_legacy.min(dt);
        last_legacy = Some(out);
        reps += 1;
    }
    (
        (
            min_flat.as_nanos() as f64,
            last_flat.expect("at least one rep"),
        ),
        (
            min_legacy.as_nanos() as f64,
            last_legacy.expect("at least one rep"),
        ),
    )
}

fn main() {
    let sizes: &[usize] = &[8, 64, 512, 2048];
    let mut rows = String::new();
    let mut summaries = String::new();

    // Process-level warm-up: the first hundred ms of a fresh process
    // run at ramping clock speed with cold caches, which lands
    // entirely on the first (smallest) arm and skews its ratio. Burn
    // that in on a throwaway instance before anything is timed.
    if let Some(inst) = (0..8).find_map(|s| scale_instance(64, 20170605 + 977 + s)) {
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(300) {
            let _ = time_pair(&inst);
        }
    }

    for &n in sizes {
        // Same seeds as bench_incremental so makespans line up across
        // the two JSON files.
        let inst = (0..8)
            .find_map(|s| scale_instance(n, 20170605 + 977 + s))
            .unwrap_or_else(|| panic!("no fig10-scale instance at n={n}"));

        let mut per_arm = Vec::new();
        let mut makespans = Vec::new();
        let mut arena_bytes = 0u64;
        let (flat_arm, legacy_arm) = time_pair(&inst);
        for (name, legacy, (ns, out)) in [("flat", false, flat_arm), ("legacy", true, legacy_arm)] {
            match &out {
                Ok(o) => {
                    makespans.push(o.makespan);
                    if !legacy {
                        arena_bytes = o.arena_bytes;
                    }
                }
                Err(e) => panic!("greedy failed on bench instance n={n}: {e}"),
            }
            println!("greedy_scan/{name}/{n}: {ns:.0} ns/op");
            per_arm.push(ns);
        }
        assert_eq!(
            makespans[0], makespans[1],
            "flat and legacy scans must schedule identically at n={n}"
        );
        let makespan = makespans[0];
        let (flat, legacy) = (per_arm[0], per_arm[1]);
        let speedup = legacy / flat;
        println!(
            "  -> n={n}: end-to-end speedup {speedup:.1}x, makespan {makespan}, \
             arena ~{arena_bytes} B"
        );
        let _ = write!(
            rows,
            "{}\n  \"greedy_scan/{n}\": {{\"flat_ns_per_op\": {flat:.1}, \
             \"legacy_ns_per_op\": {legacy:.1}, \"arena_bytes\": {arena_bytes}}}",
            if rows.is_empty() { "" } else { "," },
        );
        let _ = write!(
            summaries,
            ",\n  \"summary/{n}\": {{\"e2e_speedup\": {speedup:.2}, \
             \"makespan\": {makespan}}}"
        );
    }

    let json = format!("{{{rows}{summaries}\n}}\n");
    let path = "BENCH_simulate.json";
    std::fs::write(path, &json).expect("write BENCH_simulate.json");
    println!("(json: {path})");
}
