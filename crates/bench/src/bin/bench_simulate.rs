//! Flat-scan end-to-end greedy benchmark, machine readable.
//!
//! `bench_incremental` isolates the exact *gate*; this bench measures
//! what the gate numbers cannot: the whole `greedy_schedule` wall
//! clock, where profiling showed the per-step candidate scan
//! (Algorithm 3 dependency sets + Algorithm 4 loop walks over
//! `Path` primitives) dominating once the gate went incremental. It
//! times the default flat [`FlowScan`]-based scan against the legacy
//! path-walking scan (`legacy_scan: true`) on the same fig10-scale
//! instances, in the same process — both arms share every other
//! optimization, so `e2e_speedup` attributes to the scan alone.
//!
//! Per size it emits `flat_ns_per_op`, `legacy_ns_per_op`, their ratio
//! `e2e_speedup`, the (asserted-identical) `makespan`, and the arena
//! high-water mark. Writes `BENCH_simulate.json`; `bench_check` gates
//! `e2e_speedup` floors at n ∈ {64, 512, 2048} and pins makespans.
//!
//! [`FlowScan`]: chronus_core::greedy::GreedyConfig::legacy_scan

#![forbid(unsafe_code)]

use chronus_bench::fig10::scale_instance;
use chronus_core::greedy::{greedy_schedule_in, GreedyConfig, GreedyOutcome};
use chronus_core::ScheduleError;
use chronus_net::UpdateInstance;
use chronus_timenet::SimWorkspace;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Repeats one configuration until 400 ms or 20 reps, whichever first
/// (always at least once).
fn time_scan(
    inst: &UpdateInstance,
    legacy_scan: bool,
) -> (f64, Result<GreedyOutcome, ScheduleError>) {
    // Certification off: both arms pay it identically, and this bench
    // isolates planning cost.
    let cfg = GreedyConfig {
        legacy_scan,
        verify: chronus_verify::VerifyConfig::disabled(),
        ..Default::default()
    };
    let mut ws = SimWorkspace::default();
    let mut reps = 0u32;
    let mut total = Duration::ZERO;
    let mut last = None;
    while reps == 0 || (total < Duration::from_millis(400) && reps < 20) {
        let t0 = Instant::now();
        let out = greedy_schedule_in(inst, cfg, &mut ws);
        total += t0.elapsed();
        reps += 1;
        last = Some(out);
    }
    (
        total.as_nanos() as f64 / f64::from(reps),
        last.expect("at least one rep"),
    )
}

fn main() {
    let sizes: &[usize] = &[8, 64, 512, 2048];
    let mut rows = String::new();
    let mut summaries = String::new();

    for &n in sizes {
        // Same seeds as bench_incremental so makespans line up across
        // the two JSON files.
        let inst = (0..8)
            .find_map(|s| scale_instance(n, 20170605 + 977 + s))
            .unwrap_or_else(|| panic!("no fig10-scale instance at n={n}"));

        let mut per_arm = Vec::new();
        let mut makespans = Vec::new();
        let mut arena_bytes = 0u64;
        for (name, legacy) in [("flat", false), ("legacy", true)] {
            let (ns, out) = time_scan(&inst, legacy);
            match &out {
                Ok(o) => {
                    makespans.push(o.makespan);
                    if !legacy {
                        arena_bytes = o.arena_bytes;
                    }
                }
                Err(e) => panic!("greedy failed on bench instance n={n}: {e}"),
            }
            println!("greedy_scan/{name}/{n}: {ns:.0} ns/op");
            per_arm.push(ns);
        }
        assert_eq!(
            makespans[0], makespans[1],
            "flat and legacy scans must schedule identically at n={n}"
        );
        let makespan = makespans[0];
        let (flat, legacy) = (per_arm[0], per_arm[1]);
        let speedup = legacy / flat;
        println!(
            "  -> n={n}: end-to-end speedup {speedup:.1}x, makespan {makespan}, \
             arena ~{arena_bytes} B"
        );
        let _ = write!(
            rows,
            "{}\n  \"greedy_scan/{n}\": {{\"flat_ns_per_op\": {flat:.1}, \
             \"legacy_ns_per_op\": {legacy:.1}, \"arena_bytes\": {arena_bytes}}}",
            if rows.is_empty() { "" } else { "," },
        );
        let _ = write!(
            summaries,
            ",\n  \"summary/{n}\": {{\"e2e_speedup\": {speedup:.2}, \
             \"makespan\": {makespan}}}"
        );
    }

    let json = format!("{{{rows}{summaries}\n}}\n");
    let path = "BENCH_simulate.json";
    std::fs::write(path, &json).expect("write BENCH_simulate.json");
    println!("(json: {path})");
}
