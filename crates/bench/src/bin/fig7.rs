//! Regenerates Fig. 7: percentage of congestion-free update instances.
#![forbid(unsafe_code)]

use chronus_bench::sweep::{run_sweep, PAPER_SIZES};
use chronus_bench::util::{text_table, CsvSink, RunOptions};

fn main() {
    let opts = RunOptions::from_args(std::env::args().skip(1));
    let points = run_sweep(&opts, &PAPER_SIZES);
    let mut sink = CsvSink::new("fig7", &["switches", "chronus_pct", "opt_pct", "or_pct"]);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            sink.row(&[
                p.switches.to_string(),
                format!("{:.1}", p.chronus_free_pct),
                format!("{:.1}", p.opt_free_pct),
                format!("{:.1}", p.or_free_pct),
            ]);
            vec![
                p.switches.to_string(),
                format!("{:.1}", p.chronus_free_pct),
                format!("{:.1}", p.opt_free_pct),
                format!("{:.1}", p.or_free_pct),
            ]
        })
        .collect();
    println!("Fig. 7 — % congestion-free update instances");
    println!(
        "{}",
        text_table(&["switches", "Chronus %", "OPT %", "OR %"], &rows)
    );
    let path = sink.finish();
    println!("(csv: {})", path.display());
}
