//! Regenerates Fig. 9: forwarding-rule counts, Chronus vs TP.
#![forbid(unsafe_code)]

use chronus_bench::fig9::{run, PAPER_SIZES};
use chronus_bench::util::{text_table, CsvSink, RunOptions};

fn main() {
    let opts = RunOptions::from_args(std::env::args().skip(1));
    let points = run(&opts, &PAPER_SIZES);
    let mut sink = CsvSink::new(
        "fig9",
        &[
            "switches",
            "chronus_min",
            "chronus_q1",
            "chronus_median",
            "chronus_q3",
            "chronus_max",
            "chronus_mean",
            "tp_mean",
            "saving_pct",
        ],
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let c = &p.chronus;
            sink.row(&[
                p.switches.to_string(),
                format!("{:.0}", c.min),
                format!("{:.0}", c.q1),
                format!("{:.0}", c.median),
                format!("{:.0}", c.q3),
                format!("{:.0}", c.max),
                format!("{:.1}", c.mean),
                format!("{:.1}", p.tp_mean),
                format!("{:.1}", p.saving_pct),
            ]);
            vec![
                p.switches.to_string(),
                format!(
                    "{:.0}/{:.0}/{:.0}/{:.0}/{:.0}",
                    c.min, c.q1, c.median, c.q3, c.max
                ),
                format!("{:.1}", c.mean),
                format!("{:.1}", p.tp_mean),
                format!("{:.1}%", p.saving_pct),
            ]
        })
        .collect();
    println!("Fig. 9 — # forwarding rules (box = Chronus, point = TP)");
    println!(
        "{}",
        text_table(
            &[
                "switches",
                "Chronus box (min/q1/med/q3/max)",
                "Chronus mean",
                "TP mean",
                "saving"
            ],
            &rows
        )
    );
    let path = sink.finish();
    println!("(csv: {})", path.display());
}
