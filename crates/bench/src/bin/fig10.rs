//! Regenerates Fig. 10: scheduler running time at scale.
#![forbid(unsafe_code)]

use chronus_bench::fig10::{run, PAPER_SIZES};
use chronus_bench::util::{text_table, CsvSink, RunOptions};

fn main() {
    let mut opts = RunOptions::from_args(std::env::args().skip(1));
    // Fig. 10 needs one instance per size; runs defaults to 3 which is
    // plenty here.
    opts.runs = opts.runs.min(3);
    let small = std::env::args().any(|a| a == "--small");
    let sizes: &[usize] = if small {
        &[200, 400, 600, 800]
    } else {
        &PAPER_SIZES
    };
    let points = run(&opts, sizes);
    let mut sink = CsvSink::new(
        "fig10",
        &[
            "switches",
            "chronus_ms",
            "or_ms",
            "or_completed",
            "opt_ms",
            "opt_completed",
        ],
    );
    let fmt = |t: &chronus_bench::fig10::Timing| {
        if t.completed {
            format!("{:.1}", t.ms)
        } else {
            format!("{:.1} (>budget)", t.ms)
        }
    };
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            sink.row(&[
                p.switches.to_string(),
                format!("{:.2}", p.chronus.ms),
                format!("{:.2}", p.or.ms),
                p.or.completed.to_string(),
                format!("{:.2}", p.opt.ms),
                p.opt.completed.to_string(),
            ]);
            vec![
                p.switches.to_string(),
                format!("{:.2}", p.chronus.ms),
                fmt(&p.or),
                fmt(&p.opt),
            ]
        })
        .collect();
    println!("Fig. 10 — running time (ms; '>budget' = did not complete, paper's 600 s wall)");
    println!(
        "{}",
        text_table(&["switches", "Chronus", "OR", "OPT"], &rows)
    );
    println!("Chronus exact-gate counters (summed over runs):");
    for p in &points {
        let g = &p.chronus_gate;
        let saved = g.full_equivalent_cells.saturating_sub(g.cells_touched);
        println!(
            "  n={:<5} {} gate calls ({} incremental / {} full), \
             {} applies, {} undos, {} cells touched vs {} full-sim equivalent ({} saved)",
            p.switches,
            p.chronus_gate_calls,
            g.incremental_checks,
            g.full_checks,
            g.ledger_applies,
            g.ledger_undos,
            g.cells_touched,
            g.full_equivalent_cells,
            saved
        );
    }
    let path = sink.finish();
    println!("(csv: {})", path.display());
}
