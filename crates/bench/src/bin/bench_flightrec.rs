//! Flight-recorder overhead on the end-to-end greedy path.
//!
//! The recorder's contract is "always on, even in benches": one
//! relaxed-atomic probe when idle, one ring-slot write per span when
//! recording. This bench prices that contract where it matters — the
//! full `greedy_schedule` wall clock at fig10 scale, where every gate
//! check opens a `timenet.simulate` span and the planner opens
//! `core.greedy`, so an n=512 run pushes thousands of events through
//! the calling thread's ring.
//!
//! Methodology matches `bench_simulate`: interleaved reps (off, on,
//! off, on, …) so clock ramps and neighbour load hit both arms
//! equally, min-of-reps to discard preemption spikes, one untimed
//! warm-up pair. Emits `BENCH_flightrec.json` with both arms'
//! ns/op and `overhead_pct`; the acceptance target is < 3%.

#![forbid(unsafe_code)]

use chronus_bench::fig10::scale_instance;
use chronus_core::greedy::{greedy_schedule_in, GreedyConfig};
use chronus_timenet::SimWorkspace;
use chronus_trace::FlightRecorder;
use std::time::{Duration, Instant};

fn config() -> GreedyConfig {
    GreedyConfig {
        verify: chronus_verify::VerifyConfig::disabled(),
        ..Default::default()
    }
}

fn main() {
    let n = 512usize;
    let inst = (0..8)
        .find_map(|s| scale_instance(n, 20170605 + 977 + s))
        .unwrap_or_else(|| panic!("no fig10-scale instance at n={n}"));
    let cfg = config();
    let mut ws_off = SimWorkspace::default();
    let mut ws_on = SimWorkspace::default();

    // Warm-up pair: arena pools, caches, clock ramp. The recorder ring
    // for this thread is also created here, off the timed path.
    FlightRecorder::disable();
    greedy_schedule_in(&inst, cfg, &mut ws_off).expect("feasible");
    FlightRecorder::enable(4096);
    greedy_schedule_in(&inst, cfg, &mut ws_on).expect("feasible");
    FlightRecorder::disable();

    let mut min_off = Duration::MAX;
    let mut min_on = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut reps = 0u32;
    while reps == 0 || (total < Duration::from_millis(1500) && reps < 2000) {
        FlightRecorder::disable();
        let t0 = Instant::now();
        let out = greedy_schedule_in(&inst, cfg, &mut ws_off).expect("feasible");
        let dt = t0.elapsed();
        total += dt;
        min_off = min_off.min(dt);
        let makespan_off = out.makespan;

        FlightRecorder::enable(4096);
        let t0 = Instant::now();
        let out = greedy_schedule_in(&inst, cfg, &mut ws_on).expect("feasible");
        let dt = t0.elapsed();
        total += dt;
        min_on = min_on.min(dt);
        FlightRecorder::disable();

        assert_eq!(
            makespan_off, out.makespan,
            "recording must not change the schedule"
        );
        reps += 1;
    }

    // The recording arm really recorded: its ring saw this run's spans.
    let recorded: u64 = FlightRecorder::snapshot()
        .rings
        .iter()
        .map(|r| r.emitted)
        .sum();
    assert!(recorded > 0, "recorder arm produced no events");

    let off = min_off.as_nanos() as f64;
    let on = min_on.as_nanos() as f64;
    let overhead_pct = (on / off - 1.0) * 100.0;
    println!("flightrec/off/{n}: {off:.0} ns/op");
    println!("flightrec/on/{n}: {on:.0} ns/op");
    println!(
        "  -> n={n}: recorder overhead {overhead_pct:.2}% ({reps} rep pairs, \
         {recorded} ring events)"
    );

    let json = format!(
        "{{\n  \"flightrec/{n}\": {{\"off_ns_per_op\": {off:.1}, \
         \"on_ns_per_op\": {on:.1}, \"overhead_pct\": {overhead_pct:.2}}}\n}}\n"
    );
    let path = "BENCH_flightrec.json";
    std::fs::write(path, &json).expect("write BENCH_flightrec.json");
    println!("(json: {path})");
}
