//! Extension experiment: multi-flow joint scheduling.
//!
//! The paper's algorithms are single-flow; its formulation (3) is not.
//! This experiment quantifies what the joint view buys: `K` flows
//! migrate concurrently over a shared fabric, scheduled either
//! *jointly* (one greedy run over the combined instance, the exact
//! gate checking cross-flow capacity) or *independently* (each flow
//! scheduled alone, pretending the others do not exist — what a
//! per-flow deployment of the paper's algorithm would do). The joint
//! schedule is *certified* whenever it exists; the independent
//! composition is unverified — sometimes it collides on shared links,
//! sometimes it is merely lucky. The experiment counts both, and the
//! interesting cell is the gap: instances where the glued schedules
//! collide but the joint gate finds (and proves) a clean plan.
// Harness code: panicking on a malformed experiment is intended.
#![allow(clippy::indexing_slicing, clippy::expect_used, clippy::unwrap_used)]

use crate::util::RunOptions;
use chronus_core::greedy::greedy_schedule;
use chronus_net::routing::{biased_random_path, seeded_rng, shortest_path_delay};
use chronus_net::topology::{self, TopologyConfig};
use chronus_net::{Flow, FlowId, SwitchId, UpdateInstance};
use chronus_timenet::{FluidSimulator, Schedule, SimulatorConfig};
use rand::Rng;

/// Result of the joint-vs-independent comparison.
#[derive(Clone, Copy, Debug, Default)]
pub struct MultiflowPoint {
    /// Flows per instance.
    pub flows: usize,
    /// Instances where the joint greedy found a clean schedule.
    pub joint_clean: usize,
    /// Instances where gluing independent per-flow schedules at t=0
    /// stayed clean.
    pub independent_clean: usize,
    /// Instances attempted (where every per-flow subproblem was
    /// feasible on its own).
    pub total: usize,
}

/// Builds a `K`-flow instance over one fabric: every flow moves from a
/// biased route to another biased route between its own endpoints.
/// Returns `None` if fewer than `k` flows could be placed.
pub fn multiflow_instance(n: usize, k: usize, seed: u64) -> Option<UpdateInstance> {
    let topo = TopologyConfig {
        switches: n,
        capacity_range: (500, 800),
        delay_range: (1, 5),
        seed,
    };
    let net = topology::random_connected(topo, n / 3);
    let mut rng = seeded_rng(seed ^ 0x11_F10);
    let mut flows = Vec::new();
    for fi in 0..k as u32 * 4 {
        if flows.len() == k {
            break;
        }
        let src = SwitchId(rng.gen_range(0..n as u32));
        let dst = SwitchId(rng.gen_range(0..n as u32));
        if src == dst {
            continue;
        }
        let Some(initial) = biased_random_path(&net, src, dst, 0.4, &mut rng)
            .or_else(|| shortest_path_delay(&net, src, dst))
        else {
            continue;
        };
        let Some(fin) = biased_random_path(&net, src, dst, 0.4, &mut rng) else {
            continue;
        };
        if fin == initial {
            continue;
        }
        let Ok(flow) = Flow::new(FlowId(flows.len() as u32), 300, initial, fin) else {
            continue;
        };
        if flow.validate(&net).is_err() {
            continue;
        }
        let _ = fi;
        flows.push(flow);
    }
    if flows.len() < k {
        return None;
    }
    // The combined instance may be statically infeasible (two flows
    // sharing a link beyond capacity even before/after migration);
    // those are skipped by the caller via validation.
    UpdateInstance::new(net, flows).ok()
}

/// Runs the comparison at `flows_per_instance` flows.
pub fn run(opts: &RunOptions, n: usize, flows_per_instance: usize) -> MultiflowPoint {
    let mut point = MultiflowPoint {
        flows: flows_per_instance,
        ..Default::default()
    };
    let sim_cfg = SimulatorConfig {
        record_loads: false,
        ..SimulatorConfig::default()
    };
    for i in 0..(opts.runs * opts.instances / 4).max(8) {
        let Some(inst) = multiflow_instance(n, flows_per_instance, opts.seed + i as u64) else {
            continue;
        };
        // Per-flow independent schedules must each exist.
        let mut independent = Schedule::new();
        let mut all_single_ok = true;
        for flow in &inst.flows {
            let single =
                UpdateInstance::single(inst.network.clone(), flow.clone()).expect("validated");
            match greedy_schedule(&single) {
                Ok(out) => {
                    for (_, v, t) in out.schedule.iter() {
                        independent.set(flow.id, v, t);
                    }
                }
                Err(_) => {
                    all_single_ok = false;
                    break;
                }
            }
        }
        if !all_single_ok {
            continue;
        }
        point.total += 1;

        if FluidSimulator::with_config(&inst, sim_cfg)
            .run(&independent)
            .verdict()
            == chronus_timenet::Verdict::Consistent
        {
            point.independent_clean += 1;
        }
        if greedy_schedule(&inst).is_ok() {
            point.joint_clean += 1;
        }
    }
    point
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_scheduling_dominates_independent() {
        let opts = RunOptions {
            runs: 1,
            instances: 48,
            ..Default::default()
        };
        let point = run(&opts, 14, 3);
        assert!(
            point.total >= 5,
            "need comparable instances, got {}",
            point.total
        );
        // At this (deterministic) configuration the joint scheduler
        // certifies at least as many migrations as independent
        // composition gets lucky on.
        assert!(
            point.joint_clean >= point.independent_clean,
            "joint {} vs independent {}",
            point.joint_clean,
            point.independent_clean
        );
    }
}
