//! The worked example of Figs. 1, 2, 3 and 5: the motivating
//! six-switch topology, its time-extended network, the dependency
//! sets the greedy computes per step, the resulting timed schedule,
//! OPT, the tree-algorithm verdict, OR's rounds and TP's rule ledger.
// Harness code: panicking on a malformed experiment is intended.
#![allow(clippy::indexing_slicing, clippy::expect_used, clippy::unwrap_used)]

use chronus_baselines::or::{or_rounds, OrConfig};
use chronus_baselines::tp::{chronus_peak_rule_count, tp_plan};
use chronus_core::exec::ExecutionPlan;
use chronus_core::greedy::greedy_schedule;
use chronus_core::tree::{check_feasibility, crossings, Feasibility};
use chronus_net::motivating_example;
use chronus_opt::optimal_schedule;
use chronus_timenet::{FluidSimulator, TimeExtendedNetwork};
use std::fmt::Write as _;

/// Produces the full walkthrough text.
pub fn run() -> String {
    let mut out = String::new();
    let inst = motivating_example();
    let flow = inst.flow().clone();

    let _ = writeln!(out, "== The motivating example (paper Fig. 1) ==");
    let _ = writeln!(out, "initial path: {}", flow.initial);
    let _ = writeln!(out, "final path:   {}", flow.fin);
    let _ = writeln!(
        out,
        "demand {} on unit-capacity unit-delay links; switches to update: {:?}",
        flow.demand,
        flow.switches_to_update()
    );

    let _ = writeln!(out, "\n== Time-extended network window (paper Fig. 2) ==");
    let te = TimeExtendedNetwork::initial_window(&inst.network, 5);
    out.push_str(&te.render());

    let _ = writeln!(out, "\n== Crossings / Algorithm 1 view (paper Fig. 3) ==");
    for c in crossings(&inst, &flow) {
        let _ = writeln!(
            out,
            "detour {} -> {} (phi_new={}, phi_old={:?}, cons={}) admissible={}",
            c.diverge,
            c.merge,
            c.phi_new,
            c.phi_old,
            c.cons,
            c.admissible(flow.demand)
        );
    }
    match check_feasibility(&inst) {
        Feasibility::Feasible { .. } => {
            let _ = writeln!(out, "tree algorithm: a feasible sequence EXISTS");
        }
        other => {
            let _ = writeln!(out, "tree algorithm: {other:?}");
        }
    }

    let _ = writeln!(out, "\n== Greedy run (paper Algorithm 2 / Fig. 5) ==");
    let greedy = greedy_schedule(&inst).expect("the example is feasible");
    for round in &greedy.rounds {
        let chains: Vec<String> = round
            .chains
            .iter()
            .map(|c| {
                c.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" -> ")
            })
            .collect();
        let committed: Vec<String> = round.committed.iter().map(|(_, v)| v.to_string()).collect();
        let _ = writeln!(
            out,
            "t{}: chains [{}]; updated [{}]",
            round.time,
            chains.join("; "),
            committed.join(", ")
        );
    }
    let _ = writeln!(out, "schedule:\n{}", greedy.schedule);
    let report = FluidSimulator::check(&inst, &greedy.schedule);
    let _ = writeln!(out, "simulator verdict: {:?}", report.verdict());

    let _ = writeln!(
        out,
        "\n== Link occupancy during the migration (textual Fig. 2) =="
    );
    out.push_str(&chronus_timenet::render_occupancy(
        &inst,
        &greedy.schedule,
        -2,
        8,
    ));

    let _ = writeln!(out, "\n== Algorithm 5 execution plan ==");
    out.push_str(&ExecutionPlan::from_schedule(&greedy.schedule).to_string());

    let _ = writeln!(out, "\n== OPT (program (3) by branch and bound) ==");
    match optimal_schedule(&inst) {
        Ok(opt) => {
            let _ = writeln!(
                out,
                "optimal makespan {} (greedy {}), schedule:\n{}",
                opt.makespan, greedy.makespan, opt.schedule
            );
        }
        Err(e) => {
            let _ = writeln!(out, "OPT failed: {e}");
        }
    }

    let _ = writeln!(out, "== OR baseline rounds ==");
    match or_rounds(&inst, OrConfig::default()) {
        Ok(or) => {
            for (i, round) in or.rounds.iter().enumerate() {
                let names: Vec<String> = round.iter().map(|v| v.to_string()).collect();
                let _ = writeln!(out, "round {}: [{}]", i + 1, names.join(", "));
            }
        }
        Err(e) => {
            let _ = writeln!(out, "OR failed: {e}");
        }
    }

    let _ = writeln!(out, "\n== TP baseline rule ledger ==");
    let tp = tp_plan(&flow);
    let _ = writeln!(
        out,
        "TP peak rules: {} | Chronus peak rules: {} (the paper's Fig. 9 gap)",
        tp.peak_rule_count(),
        chronus_peak_rule_count(&flow)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkthrough_covers_every_artifact() {
        let text = run();
        for needle in [
            "motivating example",
            "Time-extended",
            "Crossings",
            "feasible sequence EXISTS",
            "Greedy run",
            "simulator verdict: Consistent",
            "Algorithm 5",
            "optimal makespan 2",
            "OR baseline",
            "TP peak rules: 12 | Chronus peak rules: 6",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
