//! Figure 10: running time of the schedulers at scale.
//!
//! "The running time of Chronus, OR and OPT is illustrated in
//! Fig. 10 … When the number of switches is larger than 4K, OR and
//! OPT do not complete within 600 seconds … Chronus's running time is
//! less than 600 seconds, even if the number of switches is 6K"
//! (§V-B).

use crate::util::RunOptions;
use chronus_baselines::or::{or_rounds, OrConfig};
use chronus_core::greedy::greedy_schedule;
use chronus_core::ScheduleError;
use chronus_net::routing::{random_simple_path, seeded_rng};
use chronus_net::topology::{self, TopologyConfig};
use chronus_net::{segment_reversal_at, Flow, FlowId, SwitchId, UpdateInstance};
use chronus_opt::{optimal_schedule_with, OptConfig};
use chronus_timenet::GateStats;
use rand::Rng;
use std::time::Instant;

/// Builds one scale instance: a sparse `n`-switch topology whose
/// longest-available random route is reversed end-to-end, coupling
/// every switch of the route — the workload whose exact solution blows
/// up combinatorially while the greedy keeps finishing (Fig. 10).
pub fn scale_instance(n: usize, seed: u64) -> Option<UpdateInstance> {
    let topo = TopologyConfig {
        switches: n,
        capacity_range: (300, 700),
        delay_range: (1, 10),
        seed,
    };
    let net = topology::random_connected(topo, n / 5);
    let mut rng = seeded_rng(seed ^ 0x5CA1E);
    // Longest of a few uniform walks between random endpoints.
    let mut best: Option<chronus_net::Path> = None;
    for _ in 0..6 {
        let src = SwitchId(rng.gen_range(0..n as u32));
        let dst = SwitchId(rng.gen_range(0..n as u32));
        if src == dst {
            continue;
        }
        if let Some(p) = random_simple_path(&net, src, dst, &mut rng) {
            if best.as_ref().is_none_or(|b| p.len() > b.len()) {
                best = Some(p);
            }
        }
    }
    let initial = best?;
    let last = initial.len() - 1;
    let (net, fin) =
        segment_reversal_at(&net, &initial, 0, last, 300, (300, 700), (1, 10), &mut rng)?;
    let flow = Flow::new(FlowId(0), 300, initial, fin).ok()?;
    flow.validate(&net).ok()?;
    UpdateInstance::single(net, flow).ok()
}

/// One scheduler's timing at one size.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// Mean wall-clock milliseconds.
    pub ms: f64,
    /// `true` if every invocation finished exactly within the budget;
    /// `false` marks the paper's "does not complete within 600 s"
    /// points.
    pub completed: bool,
}

/// One row of Fig. 10.
#[derive(Clone, Copy, Debug)]
pub struct RuntimePoint {
    /// Number of switches.
    pub switches: usize,
    /// Chronus greedy.
    pub chronus: Timing,
    /// OR exact branch and bound.
    pub or: Timing,
    /// OPT exact search.
    pub opt: Timing,
    /// Exact simulator-gate calls across the greedy runs.
    pub chronus_gate_calls: u64,
    /// The greedy gate's ledger counters, summed over the runs.
    pub chronus_gate: GateStats,
}

/// Runs the timing experiment over `sizes` (paper: 1K–6K).
pub fn run(opts: &RunOptions, sizes: &[usize]) -> Vec<RuntimePoint> {
    let mut out = Vec::new();
    for &n in sizes {
        let mut chronus_ms = 0.0;
        let mut or_ms = 0.0;
        let mut opt_ms = 0.0;
        let mut or_done = true;
        let mut opt_done = true;
        let mut gate_calls = 0u64;
        let mut gate = GateStats::default();
        let samples = opts.runs.max(1);
        for run in 0..samples {
            let Some(inst) = scale_instance(n, opts.seed + 977 + run as u64) else {
                continue;
            };

            let t0 = Instant::now();
            if let Ok(out) = greedy_schedule(&inst) {
                gate_calls += out.simulator_calls as u64;
                gate.absorb(&out.gate);
            }
            chronus_ms += t0.elapsed().as_secs_f64() * 1e3;

            let t0 = Instant::now();
            match or_rounds(
                &inst,
                OrConfig {
                    budget: opts.budget,
                },
            ) {
                Ok(o) if o.exact => {}
                _ => or_done = false,
            }
            or_ms += t0.elapsed().as_secs_f64() * 1e3;

            let t0 = Instant::now();
            match optimal_schedule_with(
                &inst,
                OptConfig {
                    budget: opts.budget,
                    ..Default::default()
                },
            ) {
                Ok(_) => {}
                Err(ScheduleError::Infeasible { reason, .. }) if reason.contains("at most 63") => {
                    opt_done = false;
                }
                Err(ScheduleError::TimedOut { .. }) => opt_done = false,
                Err(_) => {}
            }
            opt_ms += t0.elapsed().as_secs_f64() * 1e3;
        }
        let k = samples as f64;
        out.push(RuntimePoint {
            switches: n,
            chronus: Timing {
                ms: chronus_ms / k,
                completed: true,
            },
            or: Timing {
                ms: or_ms / k,
                completed: or_done,
            },
            opt: Timing {
                ms: opt_ms / k,
                completed: opt_done,
            },
            chronus_gate_calls: gate_calls,
            chronus_gate: gate,
        });
    }
    out
}

/// The paper's switch counts for Fig. 10.
pub const PAPER_SIZES: [usize; 6] = [1000, 2000, 3000, 4000, 5000, 6000];

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn chronus_is_orders_of_magnitude_faster_at_scale() {
        let opts = RunOptions {
            runs: 1,
            budget: Duration::from_millis(150),
            ..Default::default()
        };
        let points = run(&opts, &[600]);
        let p = &points[0];
        assert!(p.chronus.completed);
        // The greedy must finish fast even at 600 switches.
        assert!(p.chronus.ms < 5_000.0, "greedy took {} ms", p.chronus.ms);
    }
}
