//! Figure 11: the CDF of update time at 40 switches.
//!
//! "Fig. 11 shows the CDFs of the update time when the number of
//! switches is fixed at 40 … The update time of Chronus can achieve
//! near optimal performance compared to OPT" (§V-B). Update time is
//! `|T|`, the number of time steps the schedule spans (the MUTP
//! objective).
// Harness code: panicking on a malformed experiment is intended.
#![allow(clippy::indexing_slicing, clippy::expect_used, clippy::unwrap_used)]

use crate::util::RunOptions;
use chronus_core::greedy::greedy_schedule;
use chronus_net::{InstanceGenerator, InstanceGeneratorConfig, TimeStep};
use chronus_opt::{optimal_schedule_with, OptConfig};

/// Collected update times (`|T| = makespan + 1`) for both schemes on
/// the same instances.
#[derive(Clone, Debug, Default)]
pub struct UpdateTimes {
    /// Chronus greedy update times.
    pub chronus: Vec<TimeStep>,
    /// OPT update times (instances where the exact solve finished).
    pub opt: Vec<TimeStep>,
    /// Paired `(chronus, opt)` times on the instances both solved —
    /// the apples-to-apples comparison (the OPT column alone is biased
    /// toward the instances its budget could crack).
    pub pairs: Vec<(TimeStep, TimeStep)>,
}

impl UpdateTimes {
    /// The empirical CDF of a sample as `(value, fraction ≤ value)`.
    pub fn cdf(sample: &[TimeStep]) -> Vec<(TimeStep, f64)> {
        let mut v = sample.to_vec();
        v.sort_unstable();
        let n = v.len().max(1) as f64;
        let mut out: Vec<(TimeStep, f64)> = Vec::new();
        for (i, &x) in v.iter().enumerate() {
            let frac = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = frac,
                _ => out.push((x, frac)),
            }
        }
        out
    }

    /// The p-quantile of a sample.
    pub fn quantile(sample: &[TimeStep], p: f64) -> Option<TimeStep> {
        if sample.is_empty() {
            return None;
        }
        let mut v = sample.to_vec();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * p).round() as usize;
        Some(v[idx])
    }
}

/// Collects update times at `switches` switches.
pub fn run(opts: &RunOptions, switches: usize) -> UpdateTimes {
    let mut times = UpdateTimes::default();
    for run in 0..opts.runs {
        let cfg = InstanceGeneratorConfig::paper(switches, opts.seed + 4451 + run as u64);
        let mut gen = InstanceGenerator::new(cfg);
        for inst in gen.generate_batch(opts.instances) {
            let Ok(greedy) = greedy_schedule(&inst) else {
                continue; // infeasible for everyone
            };
            times.chronus.push(greedy.makespan + 1);
            if let Ok(opt) = optimal_schedule_with(
                &inst,
                OptConfig {
                    budget: opts.budget,
                    ..Default::default()
                },
            ) {
                times.opt.push(opt.makespan + 1);
                times.pairs.push((greedy.makespan + 1, opt.makespan + 1));
            }
        }
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let c = UpdateTimes::cdf(&[3, 1, 2, 2, 5]);
        assert_eq!(c.first().unwrap().0, 1);
        assert!((c.last().unwrap().1 - 1.0).abs() < 1e-9);
        for w in c.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(UpdateTimes::quantile(&[1, 2, 3, 4, 5], 0.5), Some(3));
        assert_eq!(UpdateTimes::quantile(&[], 0.5), None);
    }

    #[test]
    fn chronus_tracks_opt_closely() {
        let opts = RunOptions {
            runs: 1,
            instances: 15,
            ..Default::default()
        };
        let times = run(&opts, 20);
        assert!(!times.chronus.is_empty());
        assert!(!times.pairs.is_empty());
        // Pairwise: OPT never longer, and the greedy stays within a
        // few steps on the instances both solved (the paper: 15 vs 13
        // at the 90th percentile).
        let gaps: Vec<TimeStep> = times.pairs.iter().map(|&(c, o)| c - o).collect();
        assert!(gaps.iter().all(|&g| g >= 0), "OPT must not exceed greedy");
        let median_gap = UpdateTimes::quantile(&gaps, 0.5).unwrap();
        assert!(
            median_gap <= 4,
            "median greedy-OPT gap {median_gap} too large"
        );
    }
}
