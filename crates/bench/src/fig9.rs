//! Figure 9: forwarding-rule counts, Chronus vs two-phase.
//!
//! "The box plot in Fig. 9 shows the number of rules for Chronus and
//! the blue solid point shows them for TP … Chronus can save over 60%
//! rules than TP on average" (§V-B). A sample aggregates the rules of
//! a group of concurrently migrating flows (traffic aggregates), as
//! the paper's rule counts (≈596 vs ≈190 at 30 switches) imply.

use crate::util::{BoxStats, RunOptions};
use chronus_baselines::tp::{chronus_peak_rule_count, tp_plan};
use chronus_net::{InstanceGenerator, InstanceGeneratorConfig};

/// Flows aggregated per sample (the paper's workload migrates many
/// flows per reconfiguration event).
pub const FLOWS_PER_SAMPLE: usize = 10;

/// One row of Fig. 9.
#[derive(Clone, Debug)]
pub struct RulePoint {
    /// Number of switches.
    pub switches: usize,
    /// Box-plot stats of Chronus peak rules per sample.
    pub chronus: BoxStats,
    /// Mean TP peak rules per sample (the paper's solid points).
    pub tp_mean: f64,
    /// Mean saving `1 − chronus/tp`.
    pub saving_pct: f64,
}

/// Runs the rule-count experiment over `sizes`.
pub fn run(opts: &RunOptions, sizes: &[usize]) -> Vec<RulePoint> {
    let mut out = Vec::new();
    for &n in sizes {
        let mut chronus_samples: Vec<f64> = Vec::new();
        let mut tp_samples: Vec<f64> = Vec::new();
        for run in 0..opts.runs {
            let cfg = InstanceGeneratorConfig::paper(n, opts.seed + 31 + run as u64 * 101);
            let mut gen = InstanceGenerator::new(cfg);
            let batch = gen.generate_batch(opts.instances.max(FLOWS_PER_SAMPLE));
            for group in batch.chunks(FLOWS_PER_SAMPLE) {
                if group.len() < FLOWS_PER_SAMPLE {
                    break;
                }
                let mut c = 0usize;
                let mut t = 0usize;
                for inst in group {
                    let flow = inst.flow();
                    c += chronus_peak_rule_count(flow);
                    t += tp_plan(flow).peak_rule_count();
                }
                chronus_samples.push(c as f64);
                tp_samples.push(t as f64);
            }
        }
        let chronus = BoxStats::of(&chronus_samples);
        let tp_mean = BoxStats::of(&tp_samples).mean;
        let saving_pct = if tp_mean > 0.0 {
            100.0 * (1.0 - chronus.mean / tp_mean)
        } else {
            0.0
        };
        out.push(RulePoint {
            switches: n,
            chronus,
            tp_mean,
            saving_pct,
        });
    }
    out
}

/// The paper's switch counts for Fig. 9.
pub const PAPER_SIZES: [usize; 6] = [10, 20, 30, 40, 50, 60];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tp_needs_far_more_rules() {
        let opts = RunOptions {
            runs: 1,
            instances: 30,
            ..Default::default()
        };
        let points = run(&opts, &[15, 30]);
        for p in &points {
            assert!(
                p.tp_mean > p.chronus.mean,
                "TP {} must exceed Chronus {}",
                p.tp_mean,
                p.chronus.mean
            );
            // The paper reports >60% savings; the generator's path
            // overlap puts us in the same regime — assert the
            // qualitative bound of ≥ 40% at smoke scale.
            assert!(
                p.saving_pct >= 40.0,
                "saving {}% at n={}",
                p.saving_pct,
                p.switches
            );
            assert!(p.chronus.min <= p.chronus.median);
            assert!(p.chronus.median <= p.chronus.max);
        }
        // Rules grow with the network size.
        assert!(points[1].tp_mean >= points[0].tp_mean * 0.8);
    }
}
