//! Time-extended network and fluid-simulator benches.

use chronus_net::{motivating_example, InstanceGenerator, InstanceGeneratorConfig};
use chronus_timenet::{FluidSimulator, Schedule, TimeExtendedNetwork};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_simulator");
    for n in [20usize, 60, 200] {
        let inst = InstanceGenerator::new(InstanceGeneratorConfig::paper(n, 7))
            .generate()
            .expect("generator succeeds");
        let schedule = Schedule::all_at_zero(&inst);
        g.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(inst, schedule),
            |b, (i, s)| {
                b.iter(|| FluidSimulator::check(std::hint::black_box(i), std::hint::black_box(s)))
            },
        );
    }
    g.finish();
}

fn bench_te_network(c: &mut Criterion) {
    let inst = motivating_example();
    c.bench_function("te_window_links", |b| {
        b.iter(|| {
            let te = TimeExtendedNetwork::new(&inst.network, -5, 20);
            std::hint::black_box(te.link_count())
        })
    });
}

criterion_group!(benches, bench_simulator, bench_te_network);
criterion_main!(benches);
