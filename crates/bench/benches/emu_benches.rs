//! Emulator event-loop throughput.

use chronus_bench::fig6::fig6_instance;
use chronus_core::greedy::greedy_schedule;
use chronus_emu::{EmuConfig, Emulator, UpdateDriver};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_emulation(c: &mut Criterion) {
    let inst = fig6_instance();
    let schedule = greedy_schedule(&inst).expect("feasible").schedule;
    let cfg = EmuConfig {
        run_for: 5_000_000_000,
        update_at: 1_000_000_000,
        ..Default::default()
    };
    c.bench_function("emulate_fig6_5s", |b| {
        b.iter(|| {
            let mut emu = Emulator::new(&inst, cfg, 9);
            emu.install_driver(UpdateDriver::chronus(schedule.clone(), &inst));
            std::hint::black_box(emu.run())
        })
    });
}

criterion_group!(benches, bench_emulation);
criterion_main!(benches);
