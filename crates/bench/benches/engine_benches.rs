//! Engine throughput benches: planned requests per second as the
//! worker count grows, over a mixed batch of feasible instances.

use chronus_engine::{Engine, EngineConfig, UpdateRequest};
use chronus_net::{motivating_example, reversal_instance, UpdateInstance};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;

/// A batch mixing the paper's worked example with path reversals of
/// several sizes — all greedy-feasible, so the bench measures the
/// chain's fast path plus batching overhead.
fn mixed_batch(len: usize) -> Vec<Arc<UpdateInstance>> {
    let shapes: Vec<Arc<UpdateInstance>> = std::iter::once(Arc::new(motivating_example()))
        .chain((4..=8).map(|n| Arc::new(reversal_instance(n, 2, 1))))
        .collect();
    (0..len).map(|i| shapes[i % shapes.len()].clone()).collect()
}

fn requests(instances: &[Arc<UpdateInstance>]) -> Vec<UpdateRequest> {
    instances
        .iter()
        .enumerate()
        .map(|(i, inst)| UpdateRequest::new(i as u64, inst.clone(), Duration::from_secs(30)))
        .collect()
}

fn bench_engine_throughput(c: &mut Criterion) {
    const BATCH: usize = 32;
    let instances = mixed_batch(BATCH);
    let mut g = c.benchmark_group("engine_plan_batch");
    g.throughput(Throughput::Elements(BATCH as u64));
    for workers in [1usize, 2, 4] {
        let engine = Engine::new(EngineConfig::with_workers(workers));
        g.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &instances,
            |b, instances| b.iter(|| engine.plan_batch(requests(std::hint::black_box(instances)))),
        );
    }
    g.finish();
}

fn bench_sequential_reference(c: &mut Criterion) {
    let instances = mixed_batch(32);
    let reqs = requests(&instances);
    let mut g = c.benchmark_group("engine_plan_sequential");
    g.throughput(Throughput::Elements(reqs.len() as u64));
    g.bench_function("reference", |b| {
        b.iter(|| chronus_engine::plan_sequential(std::hint::black_box(&reqs)))
    });
    g.finish();
}

criterion_group!(benches, bench_engine_throughput, bench_sequential_reference);
criterion_main!(benches);
