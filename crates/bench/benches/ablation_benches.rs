//! Ablation benches: the design choices DESIGN.md calls out.
//!
//! - greedy with/without the Algorithm-4 pre-filter;
//! - greedy with heads-only vs all-pending candidates;
//! - greedy vs the one-per-drain-period sequential baseline;
//! - fail-fast vs exhaustive simulator gating.

use chronus_core::greedy::{greedy_schedule_with, GreedyConfig};
use chronus_core::sequential::sequential_schedule;
use chronus_net::{InstanceGenerator, InstanceGeneratorConfig};
use chronus_timenet::{FluidSimulator, Schedule, SimulatorConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn instance(seed: u64) -> chronus_net::UpdateInstance {
    InstanceGenerator::new(InstanceGeneratorConfig::paper(30, seed))
        .generate()
        .expect("generator succeeds")
}

fn bench_greedy_configs(c: &mut Criterion) {
    let inst = instance(5);
    let mut g = c.benchmark_group("greedy_ablation");
    let configs = [
        ("default", GreedyConfig::default()),
        (
            "no_loop_precheck",
            GreedyConfig {
                loop_precheck: false,
                ..GreedyConfig::default()
            },
        ),
        (
            "all_candidates",
            GreedyConfig {
                heads_only: false,
                ..GreedyConfig::default()
            },
        ),
        (
            "unguarded",
            GreedyConfig {
                exact_gate: false,
                ..GreedyConfig::default()
            },
        ),
    ];
    for (name, cfg) in configs {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| greedy_schedule_with(std::hint::black_box(&inst), *cfg))
        });
    }
    g.finish();
}

fn bench_greedy_vs_sequential(c: &mut Criterion) {
    let inst = instance(6);
    let mut g = c.benchmark_group("scheduler_comparison");
    g.bench_function("greedy", |b| {
        b.iter(|| greedy_schedule_with(std::hint::black_box(&inst), GreedyConfig::default()))
    });
    g.bench_function("sequential", |b| {
        b.iter(|| sequential_schedule(std::hint::black_box(&inst)))
    });
    g.finish();
}

fn bench_failfast_gate(c: &mut Criterion) {
    let inst = instance(7);
    let schedule = Schedule::all_at_zero(&inst);
    let mut g = c.benchmark_group("simulator_gate");
    for (name, fail_fast) in [("exhaustive", false), ("fail_fast", true)] {
        let cfg = SimulatorConfig {
            record_loads: false,
            fail_fast,
            ..SimulatorConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            let sim = FluidSimulator::with_config(&inst, *cfg);
            b.iter(|| sim.run(std::hint::black_box(&schedule)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_greedy_configs,
    bench_greedy_vs_sequential,
    bench_failfast_gate
);
criterion_main!(benches);
