//! Scheduler latency benches — the microbenchmark behind Fig. 10's
//! running-time comparison: greedy vs tree vs OR vs OPT at growing
//! instance sizes.

use chronus_baselines::or::or_rounds_greedy;
use chronus_core::greedy::{greedy_schedule, greedy_schedule_with, GreedyConfig};
use chronus_core::tree::check_feasibility;
use chronus_net::{motivating_example, InstanceGenerator, InstanceGeneratorConfig};
use chronus_opt::{optimal_schedule_with, OptConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn instance(n: usize) -> chronus_net::UpdateInstance {
    InstanceGenerator::new(InstanceGeneratorConfig::paper(n, 42))
        .generate()
        .expect("generator succeeds")
}

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_schedule");
    for n in [20usize, 60, 200] {
        let inst = instance(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| greedy_schedule(std::hint::black_box(inst)))
        });
    }
    g.finish();
}

/// The exact gate's two backends head to head: full re-simulation per
/// check vs the incremental link×time ledger, one flow, growing
/// switch counts.
fn bench_incremental_gate(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_exact_gate");
    for n in [8usize, 64, 512] {
        let inst = chronus_bench::fig10::scale_instance(n.max(8), 7 + n as u64)
            .unwrap_or_else(|| instance(n));
        for (name, incremental) in [("incremental", true), ("full", false)] {
            let cfg = GreedyConfig {
                incremental_gate: incremental,
                ..Default::default()
            };
            g.bench_with_input(BenchmarkId::new(name, n), &inst, |b, inst| {
                b.iter(|| greedy_schedule_with(std::hint::black_box(inst), cfg))
            });
        }
    }
    g.finish();
}

fn bench_tree(c: &mut Criterion) {
    let inst = motivating_example();
    c.bench_function("tree_feasibility_motivating", |b| {
        b.iter(|| check_feasibility(std::hint::black_box(&inst)))
    });
}

fn bench_or(c: &mut Criterion) {
    let mut g = c.benchmark_group("or_rounds_greedy");
    for n in [20usize, 60] {
        let inst = instance(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| or_rounds_greedy(std::hint::black_box(inst)))
        });
    }
    g.finish();
}

fn bench_opt(c: &mut Criterion) {
    let inst = motivating_example();
    let cfg = OptConfig {
        budget: Duration::from_secs(5),
        ..Default::default()
    };
    c.bench_function("opt_motivating", |b| {
        b.iter(|| optimal_schedule_with(std::hint::black_box(&inst), cfg))
    });
}

criterion_group!(
    benches,
    bench_greedy,
    bench_incremental_gate,
    bench_tree,
    bench_or,
    bench_opt
);
criterion_main!(benches);
