//! Scheduler latency benches — the microbenchmark behind Fig. 10's
//! running-time comparison: greedy vs tree vs OR vs OPT at growing
//! instance sizes.

use chronus_baselines::or::or_rounds_greedy;
use chronus_core::greedy::greedy_schedule;
use chronus_core::tree::check_feasibility;
use chronus_net::{motivating_example, InstanceGenerator, InstanceGeneratorConfig};
use chronus_opt::{optimal_schedule_with, OptConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn instance(n: usize) -> chronus_net::UpdateInstance {
    InstanceGenerator::new(InstanceGeneratorConfig::paper(n, 42))
        .generate()
        .expect("generator succeeds")
}

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_schedule");
    for n in [20usize, 60, 200] {
        let inst = instance(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| greedy_schedule(std::hint::black_box(inst)))
        });
    }
    g.finish();
}

fn bench_tree(c: &mut Criterion) {
    let inst = motivating_example();
    c.bench_function("tree_feasibility_motivating", |b| {
        b.iter(|| check_feasibility(std::hint::black_box(&inst)))
    });
}

fn bench_or(c: &mut Criterion) {
    let mut g = c.benchmark_group("or_rounds_greedy");
    for n in [20usize, 60] {
        let inst = instance(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| or_rounds_greedy(std::hint::black_box(inst)))
        });
    }
    g.finish();
}

fn bench_opt(c: &mut Criterion) {
    let inst = motivating_example();
    let cfg = OptConfig {
        budget: Duration::from_secs(5),
        max_makespan: None,
    };
    c.bench_function("opt_motivating", |b| {
        b.iter(|| optimal_schedule_with(std::hint::black_box(&inst), cfg))
    });
}

criterion_group!(benches, bench_greedy, bench_tree, bench_or, bench_opt);
criterion_main!(benches);
