//! Flow-table lookup / longest-prefix-match benches.

use chronus_openflow::{Action, FlowTable, Ipv4Prefix, Match, Packet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn table_with(n: usize) -> FlowTable {
    let mut t = FlowTable::new();
    for i in 0..n {
        let p = Ipv4Prefix::new((10 << 24) | ((i as u32) << 8), 24);
        t.add(
            10,
            Match::dst_prefix(p),
            vec![Action::Output((i % 16) as u16)],
        )
        .expect("unbounded");
    }
    t
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_table_lookup");
    for n in [16usize, 256, 4096] {
        let t = table_with(n);
        let pkt = Packet::new(1, 1, (10 << 24) | (((n / 2) as u32) << 8) | 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &(t, pkt), |b, (t, pkt)| {
            b.iter(|| std::hint::black_box(t.lookup(pkt)))
        });
    }
    g.finish();
}

fn bench_modify(c: &mut Criterion) {
    c.bench_function("modify_actions_in_place", |b| {
        let mut t = table_with(256);
        let id = t.rules().next().expect("rule exists").id;
        b.iter(|| t.modify_actions(id, vec![Action::Output(3)]))
    });
}

criterion_group!(benches, bench_lookup, bench_modify);
criterion_main!(benches);
