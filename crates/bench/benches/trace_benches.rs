//! Tracing overhead bench: the same greedy scheduling run with and
//! without a span collector installed.
//!
//! The span fast path is a single relaxed atomic load when no
//! collector is live, so `spans_off` must track the uninstrumented
//! cost and `spans_on` must stay within a few percent of it (the
//! acceptance bar is 5%): greedy emits a handful of spans per run, not
//! one per inner-loop iteration.

use chronus_core::greedy::{greedy_schedule_with, GreedyConfig};
use chronus_net::{InstanceGenerator, InstanceGeneratorConfig};
use chronus_trace::Collector;
use criterion::{criterion_group, criterion_main, Criterion};

fn instance(n: usize) -> chronus_net::UpdateInstance {
    InstanceGenerator::new(InstanceGeneratorConfig::paper(n, 42))
        .generate()
        .expect("generator succeeds")
}

fn bench_trace_overhead(c: &mut Criterion) {
    let inst = instance(60);
    let cfg = GreedyConfig::default();
    let mut g = c.benchmark_group("trace_overhead");
    g.bench_function("greedy/spans_off", |b| {
        b.iter(|| greedy_schedule_with(std::hint::black_box(&inst), cfg))
    });
    g.bench_function("greedy/spans_on", |b| {
        let _guard = Collector::install();
        b.iter(|| {
            let out = greedy_schedule_with(std::hint::black_box(&inst), cfg);
            // Keep the sink bounded; draining a handful of records is
            // part of the cost of running with collection on.
            std::hint::black_box(Collector::drain());
            out
        })
    });
    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
