//! Slack-certified recovery decisions.
//!
//! When the controller detects a missed trigger — a switch rebooted
//! away its armed `ScheduledExecutor` entries, a FlowMod exhausted its
//! retries, or the fire report never arrived — it must decide between
//! two recoveries:
//!
//! 1. **Re-arm within slack.** The verify layer's slack certificate
//!    guarantees consistency as long as every switch fires within ±Δ
//!    of its scheduled instant. If the trigger can still be re-armed
//!    to fire inside that window, the timed update proceeds and the
//!    certificate continues to vouch for it.
//! 2. **Rollback.** Past the certified window the timed schedule's
//!    guarantees are void; the only consistent exit is the two-phase
//!    path (version-tagged rules + a flip once every switch acked),
//!    whose correctness does not depend on timing.
//!
//! [`RecoveryPolicy::decide`] is that decision as a pure function of
//! (nominal fire time, current time, certified slack) — no I/O, no
//! clocks, trivially testable.

use chronus_clock::Nanos;

/// The certified per-switch timing tolerance, in true nanoseconds: a
/// trigger may fire anywhere in `[nominal − delta_ns, nominal +
/// delta_ns]` without voiding the consistency certificate. Produced
/// from a `chronus-verify` slack certificate and the emulation's step
/// length (this crate stays independent of the certifier).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlackBudget {
    /// Certified tolerance ±Δ (ns); zero means only exact firing is
    /// certified.
    pub delta_ns: Nanos,
}

impl SlackBudget {
    /// A budget of ±`delta_ns`.
    pub fn new(delta_ns: Nanos) -> Self {
        SlackBudget {
            delta_ns: delta_ns.max(0),
        }
    }

    /// No tolerance at all: any deviation forces rollback.
    pub fn zero() -> Self {
        SlackBudget { delta_ns: 0 }
    }

    /// Does the budget cover a measured deviation (e.g. the post-sync
    /// residual clock error from `two_way_sync`)?
    pub fn covers(&self, deviation_ns: Nanos) -> bool {
        deviation_ns.abs() <= self.delta_ns
    }
}

/// What the watchdog should do about one missed trigger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Re-send the update to fire at `at` (true ns): its deviation
    /// from nominal stays within the certified slack.
    Rearm {
        /// Earliest achievable firing instant (ns).
        at: Nanos,
    },
    /// The certified window is unreachable: fall back to the
    /// two-phase rollback path.
    Rollback,
}

/// Pure recovery-decision policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// How long a re-sent update takes to reach the switch and apply
    /// (ns): control-channel delay plus install latency headroom. The
    /// earliest achievable fire time is `now + margin_ns`.
    pub margin_ns: Nanos,
}

impl RecoveryPolicy {
    /// A policy with the given re-arm margin.
    pub fn new(margin_ns: Nanos) -> Self {
        RecoveryPolicy {
            margin_ns: margin_ns.max(0),
        }
    }

    /// Decides recovery for a trigger scheduled to fire at true time
    /// `nominal` that is known un-fired at true time `now`.
    pub fn decide(&self, nominal: Nanos, now: Nanos, slack: SlackBudget) -> RecoveryAction {
        let earliest = now + self.margin_ns;
        if earliest <= nominal {
            // Still ahead of schedule: re-arm for the nominal instant
            // itself (deviation zero).
            return RecoveryAction::Rearm { at: nominal };
        }
        if earliest - nominal <= slack.delta_ns {
            RecoveryAction::Rearm { at: earliest }
        } else {
            RecoveryAction::Rollback
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rearms_at_nominal_when_still_ahead() {
        let p = RecoveryPolicy::new(1_000);
        let slack = SlackBudget::new(500);
        assert_eq!(
            p.decide(10_000, 2_000, slack),
            RecoveryAction::Rearm { at: 10_000 }
        );
    }

    #[test]
    fn rearms_late_within_slack() {
        let p = RecoveryPolicy::new(1_000);
        let slack = SlackBudget::new(5_000);
        // now + margin = 12_000, deviation 2_000 ≤ 5_000.
        assert_eq!(
            p.decide(10_000, 11_000, slack),
            RecoveryAction::Rearm { at: 12_000 }
        );
        // Exactly at the edge still re-arms.
        assert_eq!(
            p.decide(10_000, 14_000, slack),
            RecoveryAction::Rearm { at: 15_000 }
        );
    }

    #[test]
    fn rolls_back_past_the_certified_window() {
        let p = RecoveryPolicy::new(1_000);
        let slack = SlackBudget::new(5_000);
        assert_eq!(p.decide(10_000, 14_001, slack), RecoveryAction::Rollback);
        // Zero slack: any lateness rolls back.
        assert_eq!(
            p.decide(10_000, 10_000, SlackBudget::zero()),
            RecoveryAction::Rollback
        );
    }

    #[test]
    fn budget_covers_symmetric_deviations() {
        let b = SlackBudget::new(1_000);
        assert!(b.covers(0));
        assert!(b.covers(1_000));
        assert!(b.covers(-1_000));
        assert!(!b.covers(1_001));
        assert!(!b.covers(-1_001));
        // Negative construction clamps to zero.
        assert_eq!(SlackBudget::new(-5).delta_ns, 0);
    }
}
