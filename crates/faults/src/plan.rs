//! Seeded fault plans and the injector that executes them.
//!
//! A [`FaultPlan`] is a declarative description of everything that can
//! go wrong between the controller and the switches: control-channel
//! message loss, duplication and delay, per-switch install stragglers,
//! clock-desync spikes, and switch reboots that lose armed triggers.
//! A [`FaultInjector`] owns the plan plus its own seeded RNG, so the
//! same plan over the same seed injects the same faults regardless of
//! what else the host simulation draws from *its* RNG.
//!
//! **Determinism contract:** an injector never consumes randomness for
//! a fault class whose rate is zero. A plan with all rates at zero is
//! therefore not just "no faults in expectation" — it draws nothing at
//! all, so a fault-free run and a zero-rate faulty run are
//! byte-identical (pinned by the differential property test in the
//! workspace test suite).

use chronus_clock::Nanos;
use chronus_net::SwitchId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A scheduled clock-desync spike: at true time `at`, `switch`'s clock
/// jumps by `offset_ns` (positive = clock suddenly runs ahead).
/// Models a sync-servo glitch or a grandmaster changeover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClockSpike {
    /// True time of the spike (ns).
    pub at: Nanos,
    /// Afflicted switch.
    pub switch: SwitchId,
    /// Offset jump applied to the local clock (ns).
    pub offset_ns: Nanos,
}

/// A scheduled switch reboot: at true time `at`, `switch`'s control
/// agent restarts — every armed trigger is lost and the control
/// channel is down for `outage_ns`, after which the switch reconnects.
/// The data plane (installed flow table) survives, as TCAM state does
/// across agent restarts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RebootEvent {
    /// True time the agent goes down (ns).
    pub at: Nanos,
    /// Rebooting switch.
    pub switch: SwitchId,
    /// Control-plane outage duration (ns).
    pub outage_ns: Nanos,
}

/// Declarative fault model for one emulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// RNG seed for every probabilistic draw below.
    pub seed: u64,
    /// Probability a control-plane message (either direction) is lost.
    pub drop_prob: f64,
    /// Probability a delivered message is delivered twice.
    pub dup_prob: f64,
    /// Probability a delivered message takes extra delay.
    pub delay_prob: f64,
    /// Extra delay range `[lo, hi]` (ns) when delayed.
    pub delay_range_ns: (Nanos, Nanos),
    /// Probability a switch is a *straggler*: every rule install on it
    /// takes extra latency (Dionysus reports installs stretching from
    /// tens of milliseconds to seconds under load).
    pub straggler_prob: f64,
    /// Extra install latency range `[lo, hi]` (ns) on stragglers.
    pub straggler_extra_ns: (Nanos, Nanos),
    /// Scheduled clock-desync spikes.
    pub spikes: Vec<ClockSpike>,
    /// Scheduled switch reboots.
    pub reboots: Vec<RebootEvent>,
}

impl FaultPlan {
    /// A plan that injects nothing: all rates zero, no scheduled
    /// events. Runs under a quiet plan are byte-identical to runs
    /// without any fault machinery.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            delay_range_ns: (0, 0),
            straggler_prob: 0.0,
            straggler_extra_ns: (0, 0),
            spikes: Vec::new(),
            reboots: Vec::new(),
        }
    }

    /// A lossy-channel plan: messages drop with `drop_prob`, nothing
    /// else misbehaves.
    pub fn lossy(seed: u64, drop_prob: f64) -> Self {
        FaultPlan {
            drop_prob,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Adds a reboot to the plan (builder style).
    pub fn with_reboot(mut self, at: Nanos, switch: SwitchId, outage_ns: Nanos) -> Self {
        self.reboots.push(RebootEvent {
            at,
            switch,
            outage_ns,
        });
        self
    }

    /// Adds a clock-desync spike to the plan (builder style).
    pub fn with_spike(mut self, at: Nanos, switch: SwitchId, offset_ns: Nanos) -> Self {
        self.spikes.push(ClockSpike {
            at,
            switch,
            offset_ns,
        });
        self
    }

    /// True when no fault class can ever fire.
    pub fn is_quiet(&self) -> bool {
        self.drop_prob <= 0.0
            && self.dup_prob <= 0.0
            && self.delay_prob <= 0.0
            && self.straggler_prob <= 0.0
            && self.spikes.is_empty()
            && self.reboots.is_empty()
    }
}

/// What happened to one control-plane message on the wire: each entry
/// is an extra delay (ns, on top of the base channel delay) for one
/// delivered copy. Empty = the message was lost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelFate {
    /// Extra delay per delivered copy (ns).
    pub deliveries: Vec<Nanos>,
}

impl ChannelFate {
    /// The message was lost outright.
    pub fn lost(&self) -> bool {
        self.deliveries.is_empty()
    }
}

/// Executes a [`FaultPlan`] with its own seeded RNG.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    stragglers: HashMap<SwitchId, Nanos>,
}

impl FaultInjector {
    /// An injector for `plan`, seeded from `plan.seed`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector {
            plan,
            rng,
            stragglers: HashMap::new(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of one control-plane message. Draws randomness
    /// only for fault classes with a non-zero rate.
    pub fn channel_fate(&mut self) -> ChannelFate {
        if self.plan.drop_prob > 0.0 && self.rng.gen::<f64>() < self.plan.drop_prob {
            return ChannelFate {
                deliveries: Vec::new(),
            };
        }
        let mut deliveries = vec![self.extra_delay()];
        if self.plan.dup_prob > 0.0 && self.rng.gen::<f64>() < self.plan.dup_prob {
            deliveries.push(self.extra_delay());
        }
        ChannelFate { deliveries }
    }

    fn extra_delay(&mut self) -> Nanos {
        if self.plan.delay_prob > 0.0 && self.rng.gen::<f64>() < self.plan.delay_prob {
            let (lo, hi) = self.plan.delay_range_ns;
            if hi > lo {
                return self.rng.gen_range(lo..=hi);
            }
            return lo.max(0);
        }
        0
    }

    /// Extra install latency for a rule apply on `switch`. The
    /// straggler decision is made once per switch (first install) and
    /// cached; zero-rate plans never draw.
    pub fn install_extra(&mut self, switch: SwitchId) -> Nanos {
        if self.plan.straggler_prob <= 0.0 {
            return 0;
        }
        if let Some(&extra) = self.stragglers.get(&switch) {
            return extra;
        }
        let extra = if self.rng.gen::<f64>() < self.plan.straggler_prob {
            let (lo, hi) = self.plan.straggler_extra_ns;
            if hi > lo {
                self.rng.gen_range(lo..=hi)
            } else {
                lo.max(0)
            }
        } else {
            0
        };
        self.stragglers.insert(switch, extra);
        extra
    }

    /// Scheduled reboots, in plan order.
    pub fn reboots(&self) -> &[RebootEvent] {
        &self.plan.reboots
    }

    /// Scheduled clock spikes, in plan order.
    pub fn spikes(&self) -> &[ClockSpike] {
        &self.plan.spikes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_draws_and_delivers_exactly_once() {
        let mut inj = FaultInjector::new(FaultPlan::quiet(7));
        for _ in 0..100 {
            let fate = inj.channel_fate();
            assert_eq!(fate.deliveries, vec![0]);
            assert!(!fate.lost());
        }
        assert_eq!(inj.install_extra(SwitchId(3)), 0);
        // The RNG was never touched: a fresh injector off the same
        // seed produces an identical stream afterwards.
        let mut probe_a = StdRng::seed_from_u64(7);
        assert_eq!(inj.rng.gen::<u64>(), probe_a.gen::<u64>());
    }

    #[test]
    fn drop_rate_one_loses_everything() {
        let mut inj = FaultInjector::new(FaultPlan::lossy(1, 1.0));
        for _ in 0..50 {
            assert!(inj.channel_fate().lost());
        }
    }

    #[test]
    fn duplication_delivers_twice() {
        let plan = FaultPlan {
            dup_prob: 1.0,
            ..FaultPlan::quiet(2)
        };
        let mut inj = FaultInjector::new(plan);
        let fate = inj.channel_fate();
        assert_eq!(fate.deliveries.len(), 2);
    }

    #[test]
    fn delays_fall_in_range() {
        let plan = FaultPlan {
            delay_prob: 1.0,
            delay_range_ns: (1_000, 2_000),
            ..FaultPlan::quiet(3)
        };
        let mut inj = FaultInjector::new(plan);
        for _ in 0..50 {
            let fate = inj.channel_fate();
            assert_eq!(fate.deliveries.len(), 1);
            let d = fate.deliveries[0];
            assert!((1_000..=2_000).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn straggler_decision_is_sticky_per_switch() {
        let plan = FaultPlan {
            straggler_prob: 1.0,
            straggler_extra_ns: (5_000, 9_000),
            ..FaultPlan::quiet(4)
        };
        let mut inj = FaultInjector::new(plan);
        let first = inj.install_extra(SwitchId(0));
        assert!((5_000..=9_000).contains(&first));
        for _ in 0..10 {
            assert_eq!(inj.install_extra(SwitchId(0)), first);
        }
        // Other switches draw independently but are also sticky.
        let other = inj.install_extra(SwitchId(1));
        assert_eq!(inj.install_extra(SwitchId(1)), other);
    }

    #[test]
    fn same_seed_same_fates() {
        let plan = FaultPlan {
            drop_prob: 0.3,
            dup_prob: 0.2,
            delay_prob: 0.5,
            delay_range_ns: (100, 200),
            ..FaultPlan::quiet(99)
        };
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for _ in 0..200 {
            assert_eq!(a.channel_fate(), b.channel_fate());
        }
    }

    #[test]
    fn builders_schedule_events() {
        let plan = FaultPlan::quiet(0)
            .with_reboot(1_000, SwitchId(2), 500)
            .with_spike(2_000, SwitchId(1), -300);
        assert!(!plan.is_quiet());
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.reboots().len(), 1);
        assert_eq!(inj.spikes().len(), 1);
        assert_eq!(inj.reboots()[0].switch, SwitchId(2));
        assert_eq!(inj.spikes()[0].offset_ns, -300);
    }
}
