//! Fault/recovery observability: `chronus_faults_*` instruments over a
//! `chronus-trace` [`MetricsRegistry`], following the engine-metrics
//! pattern — cached lock-free handles on the hot path, exportable as a
//! Prometheus dump or absorbed into the global registry, plus a plain
//! [`FaultSummary`] value for reports and assertions.

use chronus_clock::Nanos;
use chronus_trace::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use std::fmt;

/// Shared instruments for one faulty run (or one engine's lifetime).
pub struct FaultStats {
    registry: MetricsRegistry,
    drops: Counter,
    dups: Counter,
    delays: Counter,
    straggler_installs: Counter,
    retransmits: Counter,
    acks: Counter,
    exhausted: Counter,
    reboots: Counter,
    spikes: Counter,
    triggers_armed: Counter,
    triggers_fired: Counter,
    triggers_lost: Counter,
    rearms: Counter,
    rollbacks: Counter,
    outstanding: Gauge,
    fire_deviation_ns: Histogram,
    max_fire_deviation_ns: Gauge,
}

impl Default for FaultStats {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultStats")
            .field("summary", &self.summary())
            .finish()
    }
}

impl FaultStats {
    /// Fresh, zeroed instruments over a new scoped registry.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        let counter = |name: &str| registry.counter(name);
        FaultStats {
            drops: counter("chronus_faults_injected_drops_total"),
            dups: counter("chronus_faults_injected_dups_total"),
            delays: counter("chronus_faults_injected_delays_total"),
            straggler_installs: counter("chronus_faults_straggler_installs_total"),
            retransmits: counter("chronus_faults_retransmits_total"),
            acks: counter("chronus_faults_acks_total"),
            exhausted: counter("chronus_faults_retry_exhausted_total"),
            reboots: counter("chronus_faults_switch_reboots_total"),
            spikes: counter("chronus_faults_clock_spikes_total"),
            triggers_armed: counter("chronus_faults_triggers_armed_total"),
            triggers_fired: counter("chronus_faults_triggers_fired_total"),
            triggers_lost: counter("chronus_faults_triggers_lost_total"),
            rearms: counter("chronus_faults_watchdog_rearms_total"),
            rollbacks: counter("chronus_faults_watchdog_rollbacks_total"),
            outstanding: registry.gauge("chronus_faults_outstanding_msgs"),
            fire_deviation_ns: registry.histogram("chronus_faults_fire_deviation_ns"),
            max_fire_deviation_ns: registry.gauge("chronus_faults_max_fire_deviation_ns"),
            registry,
        }
    }

    /// The scoped registry backing every instrument here.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Point-in-time snapshot of every `chronus_faults_*` instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Records an injected message drop.
    pub fn record_drop(&self) {
        self.drops.inc();
    }

    /// Records an injected duplicate delivery.
    pub fn record_dup(&self) {
        self.dups.inc();
    }

    /// Records an injected extra delay.
    pub fn record_delay(&self) {
        self.delays.inc();
    }

    /// Records a rule install stretched by a straggler switch.
    pub fn record_straggler_install(&self) {
        self.straggler_installs.inc();
    }

    /// Records a retransmission attempt.
    pub fn record_retransmit(&self) {
        self.retransmits.inc();
    }

    /// Records a first ack for a logical message.
    pub fn record_ack(&self) {
        self.acks.inc();
    }

    /// Records a message that exhausted its retry budget.
    pub fn record_exhausted(&self) {
        self.exhausted.inc();
    }

    /// Records a switch reboot losing `lost_triggers` armed triggers.
    pub fn record_reboot(&self, lost_triggers: u64) {
        self.reboots.inc();
        self.triggers_lost.add(lost_triggers);
    }

    /// Records a clock-desync spike.
    pub fn record_spike(&self) {
        self.spikes.inc();
    }

    /// Records a trigger armed on a switch.
    pub fn record_armed(&self) {
        self.triggers_armed.inc();
    }

    /// Records a trigger firing with the given deviation from its
    /// nominal instant (true ns; positive = late).
    pub fn record_fired(&self, deviation_ns: Nanos) {
        self.triggers_fired.inc();
        let abs = deviation_ns.unsigned_abs().min(u64::MAX as u128) as u64;
        self.fire_deviation_ns.record(abs);
        self.max_fire_deviation_ns
            .max(abs.min(i64::MAX as u64) as i64);
    }

    /// Records a watchdog re-arm within certified slack.
    pub fn record_rearm(&self) {
        self.rearms.inc();
    }

    /// Records a watchdog fallback to the two-phase rollback path.
    pub fn record_rollback(&self) {
        self.rollbacks.inc();
    }

    /// Adjusts the outstanding (un-acked) message gauge.
    pub fn outstanding_add(&self, d: i64) {
        self.outstanding.add(d);
    }

    /// Derives the plain-value summary for reports and assertions.
    pub fn summary(&self) -> FaultSummary {
        FaultSummary {
            drops: self.drops.get(),
            dups: self.dups.get(),
            delays: self.delays.get(),
            straggler_installs: self.straggler_installs.get(),
            retransmits: self.retransmits.get(),
            acks: self.acks.get(),
            exhausted: self.exhausted.get(),
            reboots: self.reboots.get(),
            spikes: self.spikes.get(),
            triggers_armed: self.triggers_armed.get(),
            triggers_fired: self.triggers_fired.get(),
            triggers_lost: self.triggers_lost.get(),
            rearms: self.rearms.get(),
            rollbacks: self.rollbacks.get(),
            outstanding: self.outstanding.get().max(0) as u64,
            max_fire_deviation_ns: self.max_fire_deviation_ns.get().max(0) as u64,
        }
    }
}

/// Plain-value view of a run's fault and recovery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Control-plane messages lost by injection.
    pub drops: u64,
    /// Duplicate deliveries injected.
    pub dups: u64,
    /// Extra-delay injections.
    pub delays: u64,
    /// Rule installs stretched by straggler switches.
    pub straggler_installs: u64,
    /// Retransmission attempts by the reliable channel.
    pub retransmits: u64,
    /// Logical messages acknowledged.
    pub acks: u64,
    /// Messages that exhausted their retry budget.
    pub exhausted: u64,
    /// Switch reboots injected.
    pub reboots: u64,
    /// Clock-desync spikes injected.
    pub spikes: u64,
    /// Triggers armed on switches.
    pub triggers_armed: u64,
    /// Triggers that fired.
    pub triggers_fired: u64,
    /// Armed triggers lost to reboots.
    pub triggers_lost: u64,
    /// Watchdog re-arms within certified slack.
    pub rearms: u64,
    /// Watchdog fallbacks to the two-phase rollback path.
    pub rollbacks: u64,
    /// Messages still un-acked at snapshot time.
    pub outstanding: u64,
    /// Largest |firing deviation| observed (ns).
    pub max_fire_deviation_ns: u64,
}

impl fmt::Display for FaultSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "faults: {} drops, {} dups, {} delays, {} straggler installs, \
             {} reboots, {} spikes",
            self.drops, self.dups, self.delays, self.straggler_installs, self.reboots, self.spikes
        )?;
        writeln!(
            f,
            "  delivery: {} acks, {} retransmits, {} exhausted, {} outstanding",
            self.acks, self.retransmits, self.exhausted, self.outstanding
        )?;
        write!(
            f,
            "  triggers: {}/{} fired ({} lost to reboots), {} rearms, {} rollbacks, \
             max deviation {} ns",
            self.triggers_fired,
            self.triggers_armed,
            self.triggers_lost,
            self.rearms,
            self.rollbacks,
            self.max_fire_deviation_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_flow_into_summary_and_registry() {
        let s = FaultStats::new();
        s.record_drop();
        s.record_drop();
        s.record_dup();
        s.record_retransmit();
        s.record_ack();
        s.record_reboot(3);
        s.record_armed();
        s.record_fired(-2_500);
        s.record_fired(700);
        s.record_rearm();
        s.outstanding_add(2);
        s.outstanding_add(-1);

        let sum = s.summary();
        assert_eq!(sum.drops, 2);
        assert_eq!(sum.dups, 1);
        assert_eq!(sum.retransmits, 1);
        assert_eq!(sum.acks, 1);
        assert_eq!(sum.reboots, 1);
        assert_eq!(sum.triggers_lost, 3);
        assert_eq!(sum.triggers_fired, 2);
        assert_eq!(sum.rearms, 1);
        assert_eq!(sum.outstanding, 1);
        assert_eq!(sum.max_fire_deviation_ns, 2_500);

        let snap = s.snapshot();
        assert_eq!(snap.counter("chronus_faults_injected_drops_total"), Some(2));
        assert_eq!(
            snap.histogram("chronus_faults_fire_deviation_ns"),
            Some((3_200, 2))
        );
        let prom = s.registry().to_prometheus();
        assert!(
            prom.contains("chronus_faults_injected_drops_total 2"),
            "{prom}"
        );

        let text = sum.to_string();
        assert!(text.contains("2 drops"), "{text}");
        assert!(text.contains("max deviation 2500 ns"), "{text}");
    }

    #[test]
    fn registries_are_isolated() {
        let a = FaultStats::new();
        a.record_drop();
        let b = FaultStats::new();
        assert_eq!(b.summary().drops, 0);
    }
}
