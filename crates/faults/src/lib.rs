//! # chronus-faults — fault injection and failure recovery
//!
//! Chronus's premise is that timed updates fire when the schedule
//! says they do. Real Time4 deployments do not cooperate: FlowMods
//! are lost or straggle (Dionysus measured installs from tens of
//! milliseconds to seconds under load), switch agents reset and drop
//! their armed triggers, and PTP leaves residual clock error after
//! every sync. This crate is the machinery that makes schedules
//! survive all of that:
//!
//! - [`plan`] — declarative, seeded [`FaultPlan`]s and the
//!   [`FaultInjector`] that executes them: message drop / duplication
//!   / delay, per-switch install stragglers, clock-desync spikes, and
//!   switch reboots. Zero-rate plans draw no randomness, so fault-free
//!   and zero-rate runs are byte-identical.
//! - [`delivery`] — a reliable control-plane protocol: acks,
//!   per-message retransmission timers with exponential backoff, and
//!   epoch-numbered envelopes the receiver dedups.
//! - [`watchdog`] — the recovery decision: re-arm a missed trigger
//!   within the certified slack window ([`SlackBudget`]) or fall back
//!   to the two-phase rollback path.
//! - [`stats`] — `chronus_faults_*` instruments over a
//!   `chronus-trace` metrics registry, plus the plain [`FaultSummary`]
//!   view.
//!
//! The crate is deliberately transport-agnostic: everything here is a
//! pure state machine over simulated timestamps. The emulator
//! (`chronus-emu`) wires these pieces to its event queue; the engine
//! (`chronus-engine`) wraps the policy in its runtime watchdog stage;
//! the certifier (`chronus-verify`) produces the slack certificates
//! the budgets come from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod delivery;
pub mod plan;
pub mod stats;
pub mod watchdog;

pub use delivery::{DedupFilter, Envelope, MsgId, ReliableConfig, ReliableOutbox, TimeoutVerdict};
pub use plan::{ChannelFate, ClockSpike, FaultInjector, FaultPlan, RebootEvent};
pub use stats::{FaultStats, FaultSummary};
pub use watchdog::{RecoveryAction, RecoveryPolicy, SlackBudget};
