//! Reliable control-plane delivery: acks, per-message retransmission
//! timers with exponential backoff, and epoch numbers for receiver
//! dedup.
//!
//! The protocol is a pure state machine over simulated timestamps —
//! no I/O, no wall clock — so it is unit-testable without the
//! emulator and reusable by any transport the emulator models:
//!
//! - The **sender** ([`ReliableOutbox`]) assigns each logical message
//!   a fresh [`MsgId`] and an attempt *epoch*, hands the caller an
//!   [`Envelope`] to put on the (lossy) wire, and tells it when to
//!   check back ([`ReliableOutbox::send`] returns the timeout
//!   deadline). On a timeout the caller asks
//!   [`ReliableOutbox::on_timeout`]: either the message was acked in
//!   the meantime, or a retransmission envelope (epoch + 1) comes back
//!   with a doubled timeout, or the retry budget is exhausted and
//!   recovery escalates to the watchdog.
//! - The **receiver** ([`DedupFilter`]) accepts each `MsgId` once;
//!   retransmissions and wire duplicates are acked again (acks can be
//!   lost too) but not re-executed.

use chronus_clock::Nanos;
use std::collections::HashMap;

/// Identity of one logical control-plane message. Retransmissions
/// reuse the id (with a bumped epoch); the receiver dedups on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId(pub u64);

/// One transmission attempt of a logical message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<P> {
    /// Logical message identity (stable across retransmissions).
    pub id: MsgId,
    /// Attempt number: 0 for the first send, +1 per retransmission.
    pub epoch: u32,
    /// The payload.
    pub payload: P,
}

/// Retransmission-policy knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Initial ack timeout (ns); doubles per retransmission.
    pub ack_timeout_ns: Nanos,
    /// Retransmissions allowed before a message is declared dead
    /// (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// How long before its scheduled execution time the controller
    /// starts distributing a timed update (ns).
    pub lead_time_ns: Nanos,
    /// One-way base delay of the control channel (ns).
    pub base_delay_ns: Nanos,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            ack_timeout_ns: 5_000_000,   // 5 ms: ≫ 2× base delay
            max_retries: 10,             // survives sustained 20 % loss
            lead_time_ns: 1_000_000_000, // distribute 1 s ahead
            base_delay_ns: 1_000_000,    // 1 ms one-way
        }
    }
}

impl ReliableConfig {
    /// Timeout for attempt `epoch` (exponential backoff, capped so the
    /// shift cannot overflow).
    pub fn timeout_for(&self, epoch: u32) -> Nanos {
        self.ack_timeout_ns.saturating_mul(1 << epoch.min(20))
    }
}

/// Verdict of a retransmission-timer expiry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimeoutVerdict<P> {
    /// The message was acked before the timer fired; nothing to do.
    AlreadyAcked,
    /// Retransmit: put `envelope` on the wire and check back at
    /// `next_timeout_at`.
    Retransmit {
        /// The retransmission attempt (same id, epoch + 1).
        envelope: Envelope<P>,
        /// True time at which to re-check this message (ns).
        next_timeout_at: Nanos,
    },
    /// Retry budget exhausted: the message is dead; recovery must
    /// escalate (watchdog re-arm or rollback).
    Exhausted,
}

struct Pending<P> {
    payload: P,
    epoch: u32,
}

/// Sender half of the reliable channel: tracks un-acked messages and
/// drives retransmission.
pub struct ReliableOutbox<P> {
    cfg: ReliableConfig,
    next_id: u64,
    pending: HashMap<MsgId, Pending<P>>,
    acked: u64,
    retransmits: u64,
    exhausted: u64,
}

impl<P: Clone> ReliableOutbox<P> {
    /// An empty outbox with the given policy.
    pub fn new(cfg: ReliableConfig) -> Self {
        ReliableOutbox {
            cfg,
            next_id: 0,
            pending: HashMap::new(),
            acked: 0,
            retransmits: 0,
            exhausted: 0,
        }
    }

    /// The retransmission policy.
    pub fn config(&self) -> &ReliableConfig {
        &self.cfg
    }

    /// Registers a new logical message at true time `now`; returns the
    /// first-attempt envelope and the time at which to call
    /// [`ReliableOutbox::on_timeout`] if no ack arrived.
    pub fn send(&mut self, payload: P, now: Nanos) -> (Envelope<P>, Nanos) {
        let id = MsgId(self.next_id);
        self.next_id += 1;
        self.pending.insert(
            id,
            Pending {
                payload: payload.clone(),
                epoch: 0,
            },
        );
        let envelope = Envelope {
            id,
            epoch: 0,
            payload,
        };
        (envelope, now + self.cfg.timeout_for(0))
    }

    /// Processes an ack for `id`; returns `true` on the first ack
    /// (later duplicates are ignored).
    pub fn on_ack(&mut self, id: MsgId) -> bool {
        let was_pending = self.pending.remove(&id).is_some();
        if was_pending {
            self.acked += 1;
        }
        was_pending
    }

    /// Handles the retransmission timer for `id` firing at `now`.
    pub fn on_timeout(&mut self, id: MsgId, now: Nanos) -> TimeoutVerdict<P> {
        let Some(pending) = self.pending.get_mut(&id) else {
            return TimeoutVerdict::AlreadyAcked;
        };
        if pending.epoch >= self.cfg.max_retries {
            self.pending.remove(&id);
            self.exhausted += 1;
            return TimeoutVerdict::Exhausted;
        }
        pending.epoch += 1;
        self.retransmits += 1;
        let envelope = Envelope {
            id,
            epoch: pending.epoch,
            payload: pending.payload.clone(),
        };
        let next_timeout_at = now + self.cfg.timeout_for(pending.epoch);
        TimeoutVerdict::Retransmit {
            envelope,
            next_timeout_at,
        }
    }

    /// Messages still awaiting an ack.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Logical messages acked so far.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Retransmission attempts so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Messages that exhausted their retry budget.
    pub fn exhausted(&self) -> u64 {
        self.exhausted
    }
}

/// Receiver half: accepts each logical message once.
#[derive(Clone, Debug, Default)]
pub struct DedupFilter {
    seen: std::collections::HashSet<MsgId>,
    duplicates: u64,
}

impl DedupFilter {
    /// An empty filter.
    pub fn new() -> Self {
        DedupFilter::default()
    }

    /// Returns `true` the first time `id` is seen (execute the
    /// payload), `false` for retransmissions and wire duplicates
    /// (re-ack but do not re-execute).
    pub fn accept(&mut self, id: MsgId) -> bool {
        let fresh = self.seen.insert(id);
        if !fresh {
            self.duplicates += 1;
        }
        fresh
    }

    /// Duplicate receptions suppressed so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ReliableConfig {
        ReliableConfig {
            ack_timeout_ns: 1_000,
            max_retries: 2,
            lead_time_ns: 10_000,
            base_delay_ns: 100,
        }
    }

    #[test]
    fn ack_before_timeout_settles_the_message() {
        let mut out = ReliableOutbox::new(cfg());
        let (env, deadline) = out.send("arm", 0);
        assert_eq!(env.epoch, 0);
        assert_eq!(deadline, 1_000);
        assert_eq!(out.outstanding(), 1);
        assert!(out.on_ack(env.id));
        assert!(!out.on_ack(env.id), "duplicate ack is ignored");
        assert_eq!(out.outstanding(), 0);
        assert_eq!(out.on_timeout(env.id, 1_000), TimeoutVerdict::AlreadyAcked);
        assert_eq!(out.acked(), 1);
    }

    #[test]
    fn timeouts_back_off_exponentially_then_exhaust() {
        let mut out = ReliableOutbox::new(cfg());
        let (env, t1) = out.send("arm", 0);
        let TimeoutVerdict::Retransmit {
            envelope,
            next_timeout_at,
        } = out.on_timeout(env.id, t1)
        else {
            panic!("expected first retransmission");
        };
        assert_eq!(envelope.epoch, 1);
        assert_eq!(next_timeout_at, t1 + 2_000, "timeout doubled");
        let TimeoutVerdict::Retransmit {
            envelope,
            next_timeout_at,
        } = out.on_timeout(env.id, next_timeout_at)
        else {
            panic!("expected second retransmission");
        };
        assert_eq!(envelope.epoch, 2);
        let final_deadline = next_timeout_at;
        assert_eq!(
            out.on_timeout(env.id, final_deadline),
            TimeoutVerdict::Exhausted
        );
        assert_eq!(out.outstanding(), 0);
        assert_eq!(out.retransmits(), 2);
        assert_eq!(out.exhausted(), 1);
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut out = ReliableOutbox::new(cfg());
        let (a, _) = out.send(1, 0);
        let (b, _) = out.send(2, 0);
        assert!(a.id < b.id);
    }

    #[test]
    fn dedup_accepts_once() {
        let mut f = DedupFilter::new();
        assert!(f.accept(MsgId(5)));
        assert!(!f.accept(MsgId(5)));
        assert!(!f.accept(MsgId(5)));
        assert!(f.accept(MsgId(6)));
        assert_eq!(f.duplicates(), 2);
    }

    #[test]
    fn retransmission_after_late_ack_is_a_noop() {
        let mut out = ReliableOutbox::new(cfg());
        let (env, t1) = out.send("arm", 0);
        assert!(matches!(
            out.on_timeout(env.id, t1),
            TimeoutVerdict::Retransmit { .. }
        ));
        // Ack for the slow first attempt lands after the retransmit.
        assert!(out.on_ack(env.id));
        assert_eq!(
            out.on_timeout(env.id, t1 + 2_000),
            TimeoutVerdict::AlreadyAcked
        );
    }

    #[test]
    fn survives_sustained_loss_within_budget() {
        // 11 attempts at 20 % loss: P(all lost) = 0.2^11 ≈ 2e-8.
        let cfg = ReliableConfig::default();
        assert_eq!(cfg.max_retries, 10);
        // Backoff caps instead of overflowing.
        assert!(cfg.timeout_for(60) > 0);
    }
}
