//! # chronus-lint — the workspace's domain lint pass
//!
//! Chronus's invariants — byte-identical schedules, lock ordering in
//! the daemon, allocation-free hot kernels, audited `unsafe` — are
//! enforced dynamically by proptests, loom and the counting
//! allocator. This crate is the static side of that story: a
//! self-contained analyzer (hand-rolled lexer, no external deps, same
//! offline philosophy as `shims/serde_json`) that walks every
//! workspace crate and checks four rule families:
//!
//! | rule | what it denies |
//! |------|----------------|
//! | `lock-order`, `lock-requires` | guard acquired against the declared partial order (the PR-6 WAL race shape) |
//! | `hot-alloc` | allocating calls in manifest-listed hot functions |
//! | `det-wallclock`, `det-hash` | wall-clock reads and owned hash containers in schedule-producing modules |
//! | `safety-comment`, `forbid-unsafe`, `cast-paren` | unaudited `unsafe`, missing crate-root forbids, bare narrowing casts in bit-math |
//!
//! Configuration lives in the committed `lint.toml` (rule scopes, the
//! hot-function manifest, the baseline); inline escapes are
//! `// chronus-lint: allow(<rule>) — reason` comments covering the
//! next line. The binary prints human text or `--format json` and
//! exits nonzero on any non-baselined finding.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod suppress;
pub mod workspace;

use config::LintConfig;
use diag::Finding;
use std::path::Path;

/// The outcome of one lint run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Non-baselined findings, sorted by file/line/rule.
    pub live: Vec<Finding>,
    /// Count of findings matched (and silenced) by the baseline.
    pub baselined: usize,
    /// Number of files scanned.
    pub files: usize,
}

/// Lints every configured file under `root`. IO or config errors are
/// `Err`; findings are data, not errors.
pub fn run(root: &Path, cfg: &LintConfig) -> Result<Report, String> {
    let files = workspace::collect(root, cfg)?;
    let mut findings = Vec::new();
    for f in &files {
        let src = std::fs::read_to_string(&f.path)
            .map_err(|e| format!("read {}: {e}", f.path.display()))?;
        lint_source(
            cfg,
            &f.rel,
            &f.module,
            f.is_test_file,
            f.is_crate_root,
            &src,
            &mut findings,
        );
    }
    let (mut live, baselined) = diag::apply_baseline(findings, &cfg.baseline);
    diag::sort(&mut live);
    Ok(Report {
        live,
        baselined: baselined.len(),
        files: files.len(),
    })
}

/// Lints one in-memory source file — the unit the fixture tests call.
pub fn lint_source(
    cfg: &LintConfig,
    rel: &str,
    module: &str,
    is_test_file: bool,
    is_crate_root: bool,
    src: &str,
    out: &mut Vec<Finding>,
) {
    let lexed = lexer::lex(src);
    let model = model::scan(&lexed, module);
    let sup = suppress::Suppressions::collect(&lexed.comments);
    let ctx = rules::FileCtx {
        cfg,
        rel,
        module,
        is_test_file,
        is_crate_root,
        lexed: &lexed,
        model: &model,
        sup: &sup,
    };
    rules::run_all(&ctx, out);
}

/// Walks upward from `start` to find the directory holding
/// `lint.toml` — the workspace root from the binary's point of view.
pub fn find_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
