//! Inline suppressions: `// chronus-lint: allow(rule-a, rule-b) — why`.
//!
//! An allow comment covers the line it sits on (for trailing allows)
//! and the line after its last line (for allows placed above the
//! code). Broader suppression belongs in `lint.toml`'s baseline, not
//! in comments — the inline form is deliberately narrow so an allow
//! can't drift away from the code it excuses.

use crate::lexer::Comment;
use std::collections::BTreeMap;

/// The marker an allow comment must carry.
const MARKER: &str = "chronus-lint:";

/// Parsed suppressions for one file: line → allowed rule ids.
#[derive(Clone, Debug, Default)]
pub struct Suppressions {
    by_line: BTreeMap<u32, Vec<String>>,
}

impl Suppressions {
    /// Collects every allow comment in `comments`.
    pub fn collect(comments: &[Comment]) -> Suppressions {
        let mut s = Suppressions::default();
        for c in comments {
            let Some(rules) = parse_allow(&c.text) else {
                continue;
            };
            // Cover the comment's own last line and the next one.
            for line in [c.end_line, c.end_line + 1] {
                s.by_line
                    .entry(line)
                    .or_default()
                    .extend(rules.iter().cloned());
            }
        }
        s
    }

    /// `true` when `rule` is allowed at `line`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.by_line
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule || r == "all"))
    }
}

/// Extracts the rule list from `// chronus-lint: allow(a, b) — why`.
/// Returns `None` for ordinary comments.
fn parse_allow(text: &str) -> Option<Vec<String>> {
    let at = text.find(MARKER)?;
    let rest = text.get(at + MARKER.len()..)?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.find(')')?;
    let rules: Vec<String> = inner
        .get(..close)?
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    (!rules.is_empty()).then_some(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str, line: u32) -> Comment {
        Comment {
            text: text.to_string(),
            line,
            end_line: line,
        }
    }

    #[test]
    fn allow_covers_own_and_next_line() {
        let s = Suppressions::collect(&[comment(
            "// chronus-lint: allow(det-wallclock) — GateStats stamp",
            10,
        )]);
        assert!(s.is_allowed("det-wallclock", 10));
        assert!(s.is_allowed("det-wallclock", 11));
        assert!(!s.is_allowed("det-wallclock", 12));
        assert!(!s.is_allowed("det-hash", 11));
    }

    #[test]
    fn multiple_rules_and_reason_text() {
        let s = Suppressions::collect(&[comment(
            "// chronus-lint: allow(det-hash, hot-alloc) because reasons",
            3,
        )]);
        assert!(s.is_allowed("det-hash", 4));
        assert!(s.is_allowed("hot-alloc", 4));
    }

    #[test]
    fn ordinary_comments_do_not_suppress() {
        let s = Suppressions::collect(&[
            comment("// mentions allow(det-hash) without the marker", 1),
            comment("// chronus-lint: allow() empty", 2),
        ]);
        assert!(!s.is_allowed("det-hash", 1));
        assert!(!s.is_allowed("det-hash", 2));
    }

    #[test]
    fn block_comment_covers_line_after_end() {
        let c = Comment {
            text: "/* chronus-lint: allow(cast-paren) */".to_string(),
            line: 5,
            end_line: 6,
        };
        let s = Suppressions::collect(&[c]);
        assert!(s.is_allowed("cast-paren", 6));
        assert!(s.is_allowed("cast-paren", 7));
        assert!(!s.is_allowed("cast-paren", 5));
    }
}
