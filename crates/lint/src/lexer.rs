//! A hand-rolled Rust lexer, just deep enough for the lint pass.
//!
//! The rules in this crate are token-level: they must never fire on
//! text inside comments, string literals or char literals, and they
//! must not confuse a lifetime (`'a`) with a char literal (`'a'`).
//! This lexer handles exactly that surface — line and (nested) block
//! comments, plain/raw/byte strings, chars vs lifetimes, numbers,
//! identifiers and longest-match punctuation — with no external
//! dependencies, in the same offline spirit as `shims/serde_json`.
//!
//! Comments are not part of the token stream; they are collected
//! separately (with line numbers) because two rules read them: inline
//! `chronus-lint: allow(...)` suppressions and the `// SAFETY:` audit.
// The scanner indexes into the byte buffer it just bounds-checked;
// `is_char_boundary`-safe because every multi-byte char is consumed
// through `char_indices`.
#![allow(clippy::indexing_slicing)]

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// Integer or float literal.
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) — distinct from [`TokKind::Char`].
    Lifetime,
    /// Operator or delimiter, longest-match (`::`, `<<=`, `{`, …).
    Punct,
}

/// One lexeme with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokKind,
    /// The lexeme text (for [`TokKind::Str`], the raw source slice).
    pub text: String,
    /// 1-based source line of the lexeme's first character.
    pub line: u32,
}

impl Token {
    /// `true` when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` when the token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment (line or block) with its starting line.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` sigils.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based line of the last character (equals `line` for `//`).
    pub end_line: u32,
}

/// The lexed form of one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Token stream, comments excluded.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character punctuation, longest first so the scanner can take
/// the first prefix match.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "&&", "||", "<<", ">>", "<=", ">=", "==", "!=", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=", "^=", "::", "->", "=>", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Malformed input (an
/// unterminated string, say) never panics: the scanner consumes to
/// end-of-file and returns what it has — lint rules degrade to
/// missing a finding, not to crashing the pass.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i];
        // Newlines and other whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < bytes.len() {
            match bytes[i + 1] {
                b'/' => {
                    let start = i;
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                    out.comments.push(Comment {
                        text: src[start..i].to_string(),
                        line,
                        end_line: line,
                    });
                    continue;
                }
                b'*' => {
                    let start = i;
                    let start_line = line;
                    let mut depth = 1u32;
                    i += 2;
                    while i < bytes.len() && depth > 0 {
                        if bytes[i] == b'\n' {
                            line += 1;
                            i += 1;
                        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                            depth += 1;
                            i += 2;
                        } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    out.comments.push(Comment {
                        text: src[start..i].to_string(),
                        line: start_line,
                        end_line: line,
                    });
                    continue;
                }
                _ => {}
            }
        }
        // Raw / byte strings: r"…", r#"…"#, br"…", b"…".
        if c == b'r' || c == b'b' {
            if let Some((len, lines)) = raw_or_byte_string(&src[i..]) {
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: src[i..i + len].to_string(),
                    line,
                });
                line += lines;
                i += len;
                continue;
            }
        }
        // Plain strings.
        if c == b'"' {
            let (len, lines) = quoted(&src[i..], b'"');
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: src[i..i + len].to_string(),
                line,
            });
            line += lines;
            i += len;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if let Some(len) = char_literal(&src[i..]) {
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: src[i..i + len].to_string(),
                    line,
                });
                i += len;
                continue;
            }
            // Lifetime: `'` followed by an identifier, no closing quote.
            let mut j = i + 1;
            while j < bytes.len() && is_ident_continue(bytes[j] as char) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Lifetime,
                text: src[i..j].to_string(),
                line,
            });
            i = j;
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(c as char) {
            let start = i;
            // Multi-byte chars only appear in identifiers/comments;
            // walk char-wise here.
            let mut j = i;
            for (off, ch) in src[i..].char_indices() {
                if off == 0 {
                    j = i + ch.len_utf8();
                    continue;
                }
                if is_ident_continue(ch) {
                    j = i + off + ch.len_utf8();
                } else {
                    break;
                }
            }
            i = j;
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: src[start..i].to_string(),
                line,
            });
            continue;
        }
        // Numbers (lexed loosely; lint rules never read their value).
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
            {
                // `1..3` range: stop before `..`.
                if bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    break;
                }
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Number,
                text: src[start..i].to_string(),
                line,
            });
            continue;
        }
        // Punctuation, longest match first.
        let rest = &src[i..];
        let mut matched = 1usize;
        for p in PUNCTS {
            if rest.starts_with(p) {
                matched = p.len();
                break;
            }
        }
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: src[i..i + matched].to_string(),
            line,
        });
        i += matched;
    }
    out
}

/// Length and newline count of a quoted literal starting at `s[0] ==
/// quote`, honoring backslash escapes.
fn quoted(s: &str, quote: u8) -> (usize, u32) {
    let bytes = s.as_bytes();
    let mut i = 1usize;
    let mut lines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                lines += 1;
                i += 1;
            }
            b if b == quote => return (i + 1, lines),
            _ => i += 1,
        }
    }
    (bytes.len(), lines)
}

/// Recognizes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` prefixes. Returns
/// `(byte length, newline count)` or `None` when `s` is not a raw or
/// byte string (e.g. it is just an identifier starting with r/b).
fn raw_or_byte_string(s: &str) -> Option<(usize, u32)> {
    let bytes = s.as_bytes();
    let mut i = 0usize;
    if bytes.first() == Some(&b'b') {
        i += 1;
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while raw && bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    if !raw {
        if i == 0 {
            return None; // plain "…" is handled by the caller
        }
        // b"…": escapes apply.
        let (len, lines) = quoted(&s[i..], b'"');
        return Some((i + len, lines));
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    i += 1;
    let mut lines = 0u32;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            lines += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return Some((i + 1 + hashes, lines));
            }
        }
        i += 1;
    }
    Some((bytes.len(), lines))
}

/// Recognizes a char literal at `s[0] == '\''`. Returns its byte
/// length, or `None` when the quote starts a lifetime instead.
fn char_literal(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    match bytes.get(1) {
        None => None,
        // Escape: always a char literal — scan to the closing quote.
        Some(b'\\') => {
            let mut i = 2usize;
            if bytes.get(i).is_some() {
                i += 1; // the escaped character
            }
            // \u{…} and \x.. escapes: consume to the quote.
            while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
                i += 1;
            }
            (bytes.get(i) == Some(&b'\'')).then_some(i + 1)
        }
        Some(&c) => {
            // `'X'` where X is a single char: char literal iff a
            // closing quote follows the (possibly multi-byte) char.
            let ch = s[1..].chars().next()?;
            let after = 1 + ch.len_utf8();
            if bytes.get(after) == Some(&b'\'') && (ch != '\'' || c == b'\'') {
                Some(after + 1)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("a // HashMap in a comment\n/* Instant::now */ b");
        assert_eq!(l.tokens.len(), 2);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
        assert_eq!(l.tokens[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ x");
        assert_eq!(l.tokens.len(), 1);
        assert!(l.tokens[0].is_ident("x"));
    }

    #[test]
    fn strings_swallow_their_contents() {
        let l = lex(r#"let s = "unsafe { HashMap::new() }";"#);
        assert!(l.tokens.iter().all(|t| !t.is_ident("HashMap")));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = lex(r##"let s = r#"has "quotes" and HashMap"#; y"##);
        assert!(l.tokens.iter().any(|t| t.is_ident("y")));
        assert!(l.tokens.iter().all(|t| !t.is_ident("HashMap")));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn longest_match_punct() {
        let toks = kinds("a <<= b :: c .. d ..= e");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["<<=", "::", "..", "..="]);
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let l = lex("let a = \"one\ntwo\";\nlet b = 1;");
        let b = l.tokens.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        assert_eq!(b, Some(3));
    }
}
