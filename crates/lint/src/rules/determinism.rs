//! `det-wallclock` / `det-hash`: schedule-producing code must be a
//! pure function of its inputs.
//!
//! In the configured modules (`core`, `timenet`, `opt`, `net::routing`)
//! two nondeterminism sources are denied outside test code:
//!
//! - **wall clock** — `Instant::now` / `SystemTime` anywhere except
//!   the designated timing-wrapper functions (`[determinism]
//!   timing_wrappers`) and inline-allowed `GateStats` stamp sites;
//! - **hash containers** — constructing an owned `std::collections`
//!   `HashMap`/`HashSet` (constructor call or owned type ascription).
//!   Iteration order over these is randomized per process, so any
//!   owned hash container is one `.iter()` away from nondeterministic
//!   schedules; membership-only uses carry a justified inline allow.
//!   Borrowed `&HashMap` parameters are exempt — the owner already
//!   answered for them.

use super::FileCtx;
use crate::config::LintConfig;
use crate::diag::{Finding, Severity};
use crate::lexer::TokKind;

/// Constructor idents whose `Hash*::<ctor>` call builds an owned map.
const CTORS: &[&str] = &["new", "with_capacity", "from", "default", "from_iter"];

/// Runs both determinism rules.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_test_file || !LintConfig::module_in(ctx.module, &ctx.cfg.det_modules) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.model.in_test(i) {
            continue;
        }
        // Wall clock.
        for pat in &ctx.cfg.det_wallclock {
            let hit = match pat.split_once("::") {
                Some((ty, m)) => {
                    t.is_ident(ty)
                        && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                        && toks.get(i + 2).is_some_and(|n| n.is_ident(m))
                }
                None => t.is_ident(pat),
            };
            if hit && !in_timing_wrapper(ctx, i) {
                ctx.emit(
                    out,
                    "det-wallclock",
                    Severity::Error,
                    t.line,
                    format!(
                        "`{pat}` in deterministic module `{}`; schedules must not depend on \
                         the wall clock (move into a [determinism] timing_wrapper or add a \
                         justified allow)",
                        ctx.module
                    ),
                );
            }
        }
        // Hash containers.
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            let next = toks.get(i + 1);
            let prev = i.checked_sub(1).and_then(|p| toks.get(p));
            // `HashMap::new(...)` — but not path mentions like
            // `std::collections::HashMap;` in a `use`.
            let constructed = next.is_some_and(|n| n.is_punct("::"))
                && toks
                    .get(i + 2)
                    .is_some_and(|c| CTORS.iter().any(|m| c.is_ident(m)));
            // `: HashMap<...>` owned ascription (field or local);
            // `&HashMap<...>` borrows are exempt.
            let owned_ascription =
                next.is_some_and(|n| n.is_punct("<")) && prev.is_some_and(|p| p.is_punct(":"));
            if constructed || owned_ascription {
                ctx.emit(
                    out,
                    "det-hash",
                    Severity::Error,
                    t.line,
                    format!(
                        "owned `{}` in deterministic module `{}`; iteration order is \
                         process-random — use BTreeMap/BTreeSet, or add a justified allow \
                         if provably never iterated",
                        t.text, ctx.module
                    ),
                );
            }
        }
    }
}

/// `true` when token `i` sits inside a designated timing wrapper fn.
fn in_timing_wrapper(ctx: &FileCtx<'_>, i: usize) -> bool {
    ctx.model
        .enclosing_fn(i)
        .is_some_and(|f| ctx.cfg.det_timing_wrappers.contains(&f.path))
}
