//! `lock-order` / `lock-requires`: the declared lock partial order.
//!
//! An intraprocedural guard-liveness walk over each function body.
//! Acquisitions are recognized syntactically — `lock(&x.FIELD)` (the
//! daemon's poison-free helper), `FIELD.lock()`, `FIELD.read()` and
//! `FIELD.write()` — for FIELD names declared as lock classes in
//! `lint.toml`. A `let`-bound guard lives until its block closes or
//! an explicit `drop(name)`; an unbound (temporary) guard dies at the
//! next `;`. Acquiring a class whose declared rank is ≤ the rank of
//! any live guard is a `lock-order` finding — the exact shape of the
//! PR-6 WAL race (`journal` held while re-acquiring `armed`). A
//! `lock.requires` constraint additionally demands that some class
//! (e.g. `armed`) be live when another (e.g. `journal`) is acquired.

use super::FileCtx;
use crate::config::{LintConfig, LockOrder, LockRequires};
use crate::diag::{Finding, Severity};
use crate::lexer::{TokKind, Token};
use crate::model::FnSpan;

/// One live guard.
struct Guard {
    /// Lock class name.
    class: String,
    /// Binding name, `None` for a temporary.
    name: Option<String>,
    /// Brace depth (within the fn body) at which it was bound.
    depth: usize,
    /// Source line of the acquisition.
    line: u32,
}

/// Runs the lock rules over every non-test function in scope.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_test_file {
        return;
    }
    let orders: Vec<&LockOrder> = ctx
        .cfg
        .lock_orders
        .iter()
        .filter(|o| LintConfig::module_in(ctx.module, &o.modules))
        .collect();
    let requires: Vec<&LockRequires> = ctx
        .cfg
        .lock_requires
        .iter()
        .filter(|r| LintConfig::module_in(ctx.module, &r.modules))
        .collect();
    if orders.is_empty() && requires.is_empty() {
        return;
    }
    for f in &ctx.model.fns {
        if f.is_test || ctx.model.in_test(f.open) {
            continue;
        }
        walk_fn(ctx, f, &orders, &requires, out);
    }
}

/// Rank of `class` in some applicable order, if declared.
fn rank(class: &str, orders: &[&LockOrder]) -> Option<(usize, usize)> {
    orders
        .iter()
        .enumerate()
        .find_map(|(oi, o)| o.classes.iter().position(|c| c == class).map(|r| (oi, r)))
}

fn walk_fn(
    ctx: &FileCtx<'_>,
    f: &FnSpan,
    orders: &[&LockOrder],
    requires: &[&LockRequires],
    out: &mut Vec<Finding>,
) {
    let toks = &ctx.lexed.tokens;
    let Some(body) = toks.get(f.open..=f.close) else {
        return;
    };
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // The binding name of the `let` statement currently open at each
    // depth (top of stack = innermost block's current statement).
    let mut let_stack: Vec<Option<String>> = vec![None];

    let mut i = 0usize;
    while let Some(t) = body.get(i) {
        if t.is_punct("{") {
            depth += 1;
            let_stack.push(None);
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            let_stack.pop();
            // Bound guards die with their block; temporaries also die
            // when a block of their own statement closes (the `if let
            // Some(x) = m.lock().get(..) { .. }` shape — the scrutinee
            // temp does not outlive the if-let).
            guards.retain(|g| g.depth <= depth && (g.name.is_some() || g.depth < depth));
            i += 1;
            continue;
        }
        if t.is_punct(";") {
            if let Some(top) = let_stack.last_mut() {
                *top = None;
            }
            // Temporaries die at the statement end.
            guards.retain(|g| g.name.is_some() || g.depth < depth);
            i += 1;
            continue;
        }
        if t.is_ident("let") {
            // `let NAME`, `let mut NAME`, or `let (NAME, ...)` (the
            // condvar-handoff tuple). An enum pattern — `if let
            // Some(g) = m.lock()...` — is NOT a binding of the guard:
            // the guard is a scrutinee temporary that dies when the
            // if-let closes, so it stays unnamed here.
            let mut j = i + 1;
            if body.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let tuple = body.get(j).is_some_and(|n| n.is_punct("("));
            if tuple {
                j += 1;
            }
            if let Some(name) = body.get(j).filter(|n| n.kind == TokKind::Ident) {
                let enum_pattern = !tuple
                    && body
                        .get(j + 1)
                        .is_some_and(|n| n.is_punct("(") || n.is_punct("::"));
                if !enum_pattern {
                    if let Some(top) = let_stack.last_mut() {
                        *top = Some(name.text.clone());
                    }
                }
            }
            i += 1;
            continue;
        }
        // `drop(name)` releases a bound guard early.
        if t.is_ident("drop") && body.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            if let Some(name) = body.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                guards.retain(|g| g.name.as_deref() != Some(name.text.as_str()));
            }
            i += 3;
            continue;
        }
        if let Some((class, line, adv)) = acquisition(body, i, orders, requires) {
            report(ctx, f, &guards, &class, line, orders, requires, out);
            let name = let_stack.last().and_then(Clone::clone);
            // A rebinding of an existing guard name (condvar wait
            // handoff) replaces the old guard, it does not nest.
            if let Some(n) = &name {
                guards.retain(|g| g.name.as_deref() != Some(n.as_str()));
            }
            guards.push(Guard {
                class,
                name,
                depth,
                line,
            });
            i += adv;
            continue;
        }
        i += 1;
    }
}

/// Recognizes a lock acquisition at `i`. Returns the class name, the
/// source line, and how many tokens to advance.
fn acquisition(
    body: &[Token],
    i: usize,
    orders: &[&LockOrder],
    requires: &[&LockRequires],
) -> Option<(String, u32, usize)> {
    let is_class = |s: &str| {
        orders.iter().any(|o| o.classes.iter().any(|c| c == s))
            || requires
                .iter()
                .any(|r| r.class == s || r.requires.iter().any(|q| q == s))
    };
    let t = body.get(i)?;
    // `lock ( & path . FIELD )` — the daemon's helper.
    if t.is_ident("lock") && body.get(i + 1).is_some_and(|n| n.is_punct("(")) {
        // Find the matching `)` and take the last ident before it.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut last_ident: Option<(String, u32)> = None;
        while let Some(n) = body.get(j) {
            if n.is_punct("(") {
                depth += 1;
            } else if n.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if n.kind == TokKind::Ident {
                last_ident = Some((n.text.clone(), n.line));
            }
            j += 1;
        }
        let (field, line) = last_ident?;
        if is_class(&field) {
            return Some((field, line, j.saturating_sub(i).max(1)));
        }
        return None;
    }
    // `FIELD . lock ( )` / `.read()` / `.write()`.
    if t.kind == TokKind::Ident
        && is_class(&t.text)
        && body.get(i + 1).is_some_and(|n| n.is_punct("."))
    {
        if let Some(m) = body.get(i + 2) {
            if (m.is_ident("lock") || m.is_ident("read") || m.is_ident("write"))
                && body.get(i + 3).is_some_and(|n| n.is_punct("("))
            {
                return Some((t.text.clone(), t.line, 4));
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)] // internal helper, all context needed
fn report(
    ctx: &FileCtx<'_>,
    f: &FnSpan,
    guards: &[Guard],
    class: &str,
    line: u32,
    orders: &[&LockOrder],
    requires: &[&LockRequires],
    out: &mut Vec<Finding>,
) {
    if let Some((oi, new_rank)) = rank(class, orders) {
        for g in guards {
            let Some((goi, held_rank)) = rank(&g.class, orders) else {
                continue;
            };
            if goi == oi && held_rank >= new_rank {
                let order = match orders.get(oi) {
                    Some(o) => o,
                    None => continue,
                };
                ctx.emit(
                    out,
                    "lock-order",
                    Severity::Error,
                    line,
                    format!(
                        "`{}` acquired while `{}` (acquired at line {}) is still held; \
                         declared order `{}` is {} (in `{}`)",
                        class,
                        g.class,
                        g.line,
                        order.name,
                        order.classes.join(" -> "),
                        f.path,
                    ),
                );
            }
        }
    }
    for r in requires {
        if r.class == class {
            let held = guards.iter().any(|g| r.requires.contains(&g.class));
            if !held {
                ctx.emit(
                    out,
                    "lock-requires",
                    Severity::Error,
                    line,
                    format!(
                        "`{}` acquired without holding {} (constraint `{}`, in `{}`)",
                        class,
                        r.requires
                            .iter()
                            .map(|q| format!("`{q}`"))
                            .collect::<Vec<_>>()
                            .join(" or "),
                        r.name,
                        f.path,
                    ),
                );
            }
        }
    }
}
