//! `hot-alloc`: no allocating calls inside manifest-listed hot
//! functions. The manifest (`[hot] functions` in `lint.toml`) names
//! fully-qualified fn paths, with a trailing `::*` wildcard for whole
//! impl blocks or modules; the deny list names path calls
//! (`Vec::new`, `Box::new`), macros (`vec!`, `format!`) and methods
//! (`.collect()`, `.clone()`, `.to_string()`). This is the static
//! complement of the runtime `alloc_counter` pin in `crates/bench`.

use super::FileCtx;
use crate::diag::{Finding, Severity};
use crate::lexer::TokKind;

/// `true` when `path` is named by `pat` (exact, or `prefix::*`).
pub fn manifest_matches(pat: &str, path: &str) -> bool {
    if let Some(prefix) = pat.strip_suffix("::*") {
        path.len() > prefix.len()
            && path.starts_with(prefix)
            && path.get(prefix.len()..prefix.len() + 2) == Some("::")
    } else {
        pat == path
    }
}

/// Runs the hot-allocation rule over manifest-listed functions.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_test_file || ctx.cfg.hot_functions.is_empty() {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for f in &ctx.model.fns {
        if f.is_test {
            continue;
        }
        if !ctx
            .cfg
            .hot_functions
            .iter()
            .any(|p| manifest_matches(p, &f.path))
        {
            continue;
        }
        // Skip nested fns separately matched; the body scan below
        // covers nested tokens anyway, and a nested fn that also
        // matches would double-report.
        let inner: Vec<(usize, usize)> = ctx
            .model
            .fns
            .iter()
            .filter(|g| g.open > f.open && g.close < f.close)
            .map(|g| (g.open, g.close))
            .collect();

        let mut i = f.open;
        while i <= f.close {
            if inner.iter().any(|&(o, c)| o <= i && i <= c) {
                i += 1;
                continue;
            }
            let Some(t) = toks.get(i) else { break };
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            for pat in &ctx.cfg.hot_deny {
                if let Some(macro_name) = pat.strip_suffix('!') {
                    // `vec!`, `format!`.
                    if t.is_ident(macro_name) && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
                        emit(ctx, out, f, pat, t.line);
                    }
                } else if let Some((ty, m)) = pat.split_once("::") {
                    // `Vec::new`, `Box::new`, `String::new`.
                    if t.is_ident(ty)
                        && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                        && toks.get(i + 2).is_some_and(|n| n.is_ident(m))
                    {
                        emit(ctx, out, f, pat, t.line);
                    }
                } else {
                    // Method calls: `.collect(`, `.clone(`,
                    // `.collect::<T>(` — require the leading dot so a
                    // local named `clone` can't trip the rule.
                    if t.is_ident(pat)
                        && i > 0
                        && toks.get(i - 1).is_some_and(|p| p.is_punct("."))
                        && toks
                            .get(i + 1)
                            .is_some_and(|n| n.is_punct("(") || n.is_punct("::"))
                    {
                        emit(ctx, out, f, pat, t.line);
                    }
                }
            }
            i += 1;
        }
    }
}

fn emit(ctx: &FileCtx<'_>, out: &mut Vec<Finding>, f: &crate::model::FnSpan, pat: &str, line: u32) {
    ctx.emit(
        out,
        "hot-alloc",
        Severity::Error,
        line,
        format!(
            "allocating call `{}` in hot function `{}` (listed in lint.toml [hot] manifest)",
            pat, f.path
        ),
    );
}
