//! The rule families. Each rule is a free function over a
//! [`FileCtx`] — one lexed, scanned, suppression-resolved source file
//! plus the workspace config — appending [`Finding`]s to a shared
//! vector. Rules never read the filesystem; everything they need is
//! in the context, which keeps them unit-testable on string fixtures.

pub mod casts;
pub mod determinism;
pub mod hot_alloc;
pub mod lock_order;
pub mod stdio;
pub mod unsafe_audit;

use crate::config::LintConfig;
use crate::diag::Finding;
use crate::lexer::Lexed;
use crate::model::FileModel;
use crate::suppress::Suppressions;

/// Everything a rule may look at for one file.
pub struct FileCtx<'a> {
    /// The workspace configuration.
    pub cfg: &'a LintConfig,
    /// Workspace-relative path (diagnostic position).
    pub rel: &'a str,
    /// The file's module path.
    pub module: &'a str,
    /// Under `tests/`, `benches/` or `examples/`.
    pub is_test_file: bool,
    /// `src/lib.rs`, `src/main.rs` or `src/bin/*.rs`.
    pub is_crate_root: bool,
    /// Token stream + comments.
    pub lexed: &'a Lexed,
    /// Function spans and test ranges.
    pub model: &'a FileModel,
    /// Inline `chronus-lint: allow(...)` suppressions.
    pub sup: &'a Suppressions,
}

impl FileCtx<'_> {
    /// `true` when a finding of `rule` at `line` is suppressed inline.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.sup.is_allowed(rule, line)
    }

    /// Pushes a finding unless an inline allow covers it.
    pub fn emit(
        &self,
        out: &mut Vec<Finding>,
        rule: &'static str,
        severity: crate::diag::Severity,
        line: u32,
        message: String,
    ) {
        if self.allowed(rule, line) {
            return;
        }
        out.push(Finding {
            rule,
            severity,
            file: self.rel.to_string(),
            line,
            message,
        });
    }
}

/// Runs every rule family over one file.
pub fn run_all(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    lock_order::check(ctx, out);
    hot_alloc::check(ctx, out);
    determinism::check(ctx, out);
    unsafe_audit::check(ctx, out);
    casts::check(ctx, out);
    stdio::check(ctx, out);
}
