//! `no-stdio`: library crates must not write to stdout/stderr.
//!
//! Libraries in the configured modules report through return values,
//! metrics and the trace facade — a `println!` deep in planning code
//! corrupts `chronusctl metrics`-style machine-readable output and
//! bypasses the flight recorder. Denied: `println!`, `print!`,
//! `eprintln!`, `eprint!` and `dbg!` outside test code. Binaries
//! (`src/main.rs`, `src/bin/*.rs`) and test files are exempt — stdout
//! is their interface.

use super::FileCtx;
use crate::config::LintConfig;
use crate::diag::{Finding, Severity};
use crate::lexer::TokKind;

/// The denied macro names (matched as `ident` followed by `!`).
const STDIO_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Runs the stdio rule over one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.cfg.stdio_modules.is_empty()
        || ctx.is_test_file
        || is_bin_file(ctx.rel)
        || !LintConfig::module_in(ctx.module, &ctx.cfg.stdio_modules)
    {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.model.in_test(i) {
            continue;
        }
        let denied = STDIO_MACROS.iter().any(|m| t.is_ident(m));
        if denied && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            ctx.emit(
                out,
                "no-stdio",
                Severity::Error,
                t.line,
                format!(
                    "`{}!` in library module `{}`; libraries report through return \
                     values, metrics or the trace facade — stdout/stderr belong to \
                     binaries (or add a justified allow)",
                    t.text, ctx.module
                ),
            );
        }
    }
}

/// `src/main.rs` and `src/bin/*.rs` own their stdout.
fn is_bin_file(rel: &str) -> bool {
    rel.ends_with("src/main.rs") || rel.contains("/src/bin/")
}
