//! `cast-paren`: narrowing `as` casts used bare inside arithmetic.
//!
//! In the arena/ledger bit-math, `a + b as usize * c` reads as
//! `a + ((b as usize) * c)` but is one precedence slip away from a
//! silent truncation bug — `as` binds tighter than every arithmetic
//! operator, which surprises exactly when the cast narrows. In the
//! configured modules, an integer `as` cast that is a bare operand of
//! an arithmetic operator (on either side) must be parenthesized:
//! `(b as usize) * c`.

use super::FileCtx;
use crate::config::LintConfig;
use crate::diag::{Finding, Severity};
use crate::lexer::{TokKind, Token};

/// Operators whose operands must not be bare casts.
const ARITH: &[&str] = &["+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"];

fn is_arith(t: &Token) -> bool {
    t.kind == TokKind::Punct && ARITH.iter().any(|o| t.text == *o)
}

/// Runs the cast rule over configured modules, test code excluded.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_test_file || !LintConfig::module_in(ctx.module, &ctx.cfg.cast_modules) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("as") || ctx.model.in_test(i) {
            continue;
        }
        let Some(ty) = toks.get(i + 1) else { continue };
        if ty.kind != TokKind::Ident || !ctx.cfg.cast_types.iter().any(|c| ty.is_ident(c)) {
            continue;
        }
        // The token just past the cast expression: `x as usize * y`.
        let after = toks.get(i + 2);
        let after_arith = after.is_some_and(is_arith);
        // The token just before the cast's operand chain:
        // `a + b.c() as usize`.
        let before_arith = chain_start(toks, i).is_some_and(|j| {
            toks.get(j).is_some_and(is_arith)
                && binary_use(toks, j)
                && !(toks.get(j).is_some_and(|t| t.is_punct("|")) && closes_closure_params(toks, j))
        });
        if after_arith || before_arith {
            ctx.emit(
                out,
                "cast-paren",
                Severity::Error,
                t.line,
                format!(
                    "bare `as {}` cast used as an arithmetic operand; parenthesize the cast \
                     (`(expr as {})`) so the narrowing boundary is explicit",
                    ty.text, ty.text
                ),
            );
        }
    }
}

/// Index of the token immediately before the postfix operand chain
/// feeding the `as` at index `as_idx` — i.e. before `b.c()[d]` in
/// `a + b.c()[d] as usize`. Walks left over idents, numbers,
/// `.`/`::`, and matched `(...)`/`[...]` groups. `None` at the start
/// of the stream.
fn chain_start(toks: &[Token], as_idx: usize) -> Option<usize> {
    let mut i = as_idx;
    loop {
        let prev_idx = i.checked_sub(1)?;
        let prev = toks.get(prev_idx)?;
        if prev.kind == TokKind::Ident || prev.kind == TokKind::Number {
            // `(x) as` vs `f(x) as`: an ident before a group is part
            // of the chain; handled by continuing the walk.
            i = prev_idx;
            continue;
        }
        if prev.is_punct(".") || prev.is_punct("::") {
            i = prev_idx;
            continue;
        }
        if prev.is_punct(")") || prev.is_punct("]") {
            i = match_back(toks, prev_idx)?;
            continue;
        }
        return Some(prev_idx);
    }
}

/// `true` when the operator at `op_idx` is used as a *binary*
/// operator — i.e. the token before it ends an operand. Rules out the
/// unary readings of `*` (deref), `&` (reference) and `-` (negation),
/// as in `|v| *v as u64` where `*` dereferences rather than
/// multiplies.
fn binary_use(toks: &[Token], op_idx: usize) -> bool {
    let Some(prev) = op_idx.checked_sub(1).and_then(|p| toks.get(p)) else {
        return false;
    };
    const KEYWORDS: &[&str] = &["return", "if", "else", "match", "in", "move", "break"];
    if prev.kind == TokKind::Ident {
        return !KEYWORDS.iter().any(|k| prev.is_ident(k));
    }
    prev.kind == TokKind::Number
        || prev.kind == TokKind::Str
        || prev.kind == TokKind::Char
        || prev.is_punct(")")
        || prev.is_punct("]")
}

/// `true` when the `|` at `pipe_idx` closes a closure's parameter
/// list (`|v| expr`) rather than acting as bitwise-or: walking left
/// over parameter-ish tokens must reach an opening `|` that itself
/// follows an expression-start position (`(`, `,`, `=`, `{`, `;`,
/// `move`, `=>`) or the stream start.
fn closes_closure_params(toks: &[Token], pipe_idx: usize) -> bool {
    let mut i = pipe_idx;
    loop {
        let Some(prev_idx) = i.checked_sub(1) else {
            return false;
        };
        let Some(t) = toks.get(prev_idx) else {
            return false;
        };
        if t.is_punct("|") {
            return match prev_idx.checked_sub(1).and_then(|p| toks.get(p)) {
                None => true,
                Some(b) => {
                    b.is_punct("(")
                        || b.is_punct(",")
                        || b.is_punct("=")
                        || b.is_punct("{")
                        || b.is_punct(";")
                        || b.is_punct("=>")
                        || b.is_ident("move")
                }
            };
        }
        // Parameter-list tokens: patterns, types, separators.
        let param_ok = t.kind == TokKind::Ident
            || t.kind == TokKind::Lifetime
            || t.is_punct(",")
            || t.is_punct(":")
            || t.is_punct("&")
            || t.is_punct("<")
            || t.is_punct(">")
            || t.is_punct("::")
            || t.is_punct("(")
            || t.is_punct(")")
            || t.is_punct("_");
        if !param_ok {
            return false;
        }
        i = prev_idx;
    }
}

/// Index of the punct opening the group that closes at `close_idx`.
fn match_back(toks: &[Token], close_idx: usize) -> Option<usize> {
    let (open, close) = match toks.get(close_idx)?.text.as_str() {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        _ => return None,
    };
    let mut depth = 0i32;
    let mut i = close_idx;
    loop {
        let t = toks.get(i)?;
        if t.is_punct(close) {
            depth += 1;
        } else if t.is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i = i.checked_sub(1)?;
    }
}
