//! `safety-comment` / `forbid-unsafe`: the unsafe audit.
//!
//! Every `unsafe` keyword (block, fn, impl, trait) must be preceded —
//! same line or the one or two lines above, to leave room for an
//! attribute — by a comment containing `SAFETY:` that states the
//! obligation being discharged. This rule runs on test code too: the
//! only real `unsafe` in the workspace is the counting allocator in
//! `crates/bench/tests`, and its obligations deserve stating.
//!
//! Separately, when `[unsafe_audit] require_forbid = true`, every
//! crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`) must
//! carry `#![forbid(unsafe_code)]` unless listed in `forbid_exempt` —
//! keeping the workspace's zero-unsafe posture a compile error, not a
//! convention.

use super::FileCtx;
use crate::diag::{Finding, Severity};

/// Runs both audit sub-rules.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    // SAFETY comments (all code, tests included).
    for t in &ctx.lexed.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        let covered = ctx
            .lexed
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.end_line + 3 > t.line && c.line <= t.line);
        if !covered {
            ctx.emit(
                out,
                "safety-comment",
                Severity::Error,
                t.line,
                "`unsafe` without a preceding `// SAFETY:` comment stating the discharged \
                 obligation"
                    .to_string(),
            );
        }
    }
    // Crate-root forbid(unsafe_code).
    if ctx.cfg.require_forbid
        && ctx.is_crate_root
        && !ctx.cfg.forbid_exempt.iter().any(|e| e == ctx.rel)
        && !has_forbid(ctx)
    {
        ctx.emit(
            out,
            "forbid-unsafe",
            Severity::Error,
            1,
            "crate root lacks `#![forbid(unsafe_code)]` (add it, or list the file under \
             [unsafe_audit] forbid_exempt)"
                .to_string(),
        );
    }
}

/// `true` when the token stream contains `forbid(unsafe_code` (or a
/// deny of it, which is as strong for the audit's purposes).
fn has_forbid(ctx: &FileCtx<'_>) -> bool {
    let toks = &ctx.lexed.tokens;
    toks.iter().enumerate().any(|(i, t)| {
        (t.is_ident("forbid") || t.is_ident("deny"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("unsafe_code"))
    })
}
