//! The `chronus-lint` binary: lints the workspace against `lint.toml`
//! and exits nonzero on any non-baselined finding.
//!
//! ```text
//! chronus-lint [--root DIR] [--config FILE] [--format text|json]
//! ```
//!
//! With no `--root`, the workspace root is found by walking upward
//! from the current directory to the nearest `lint.toml`.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

use chronus_lint::{config::LintConfig, diag, find_root, run};
use std::path::PathBuf;
use std::process::ExitCode;

/// Output format.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    format: Format,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        format: Format::Text,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--format" => {
                args.format = match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format text|json, got {other:?}")),
                };
            }
            "--help" | "-h" => {
                return Err(
                    "usage: chronus-lint [--root DIR] [--config FILE] [--format text|json]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("chronus-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("current_dir: {e}"))?;
            find_root(&cwd).ok_or("no lint.toml found here or in any parent directory")?
        }
    };
    let cfg_path = args.config.unwrap_or_else(|| root.join("lint.toml"));
    let cfg = LintConfig::load(&cfg_path)?;
    let report = run(&root, &cfg)?;

    match args.format {
        Format::Json => println!("{}", diag::render_json(&report.live, report.baselined)),
        Format::Text => {
            for f in &report.live {
                println!("{}", f.render_text());
            }
            println!(
                "chronus-lint: {} file(s), {} finding(s), {} baselined",
                report.files,
                report.live.len(),
                report.baselined
            );
        }
    }
    Ok(if report.live.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
