//! The item model: a brace-matching scan over the token stream that
//! recovers, for every function, its fully-qualified path
//! (`crate::module::Type::name`), its body's token range, and whether
//! it lives under `#[cfg(test)]` / `#[test]`. All four rule families
//! key off this: the lock and cast rules walk function bodies, the
//! hot-allocation rule matches paths against the manifest, and the
//! determinism rule skips test code.

use crate::lexer::{Lexed, TokKind, Token};

/// One function item found in a file.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// Fully-qualified path: file module + inner mods + impl self
    /// type + fn name (e.g. `core::scan::FlowScan::begin_step`).
    pub path: String,
    /// The bare function name.
    pub name: String,
    /// Token index of the body's `{`.
    pub open: usize,
    /// Token index of the matching `}` (== `open` if unclosed at EOF).
    pub close: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `#[test]` fn, or any enclosing `#[cfg(test)]` mod.
    pub is_test: bool,
}

/// The scanned form of one file.
#[derive(Clone, Debug, Default)]
pub struct FileModel {
    /// Every function, outermost first, nested fns included.
    pub fns: Vec<FnSpan>,
    /// Token ranges (open brace ..= close brace) of `#[cfg(test)]`
    /// modules, for rules that scan outside function bodies.
    pub test_ranges: Vec<(usize, usize)>,
}

impl FileModel {
    /// The innermost function containing token `idx`, if any.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.open <= idx && idx <= f.close)
            .max_by_key(|f| f.open)
    }

    /// `true` when token `idx` sits in test code (a `#[cfg(test)]`
    /// module or a `#[test]` function).
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(o, c)| o <= idx && idx <= c)
            || self.enclosing_fn(idx).is_some_and(|f| f.is_test)
    }
}

/// A scope opened by `{`.
struct Scope {
    kind: ScopeKind,
    /// Index into `FileModel::fns` for `Fn` scopes.
    fn_idx: usize,
    /// This scope (or an ancestor) is test code.
    test: bool,
    /// Token index of the opening `{` (for test ranges).
    open: usize,
}

enum ScopeKind {
    Mod(String),
    Impl(String),
    Fn(String),
    Other,
}

/// Scans a lexed file into its [`FileModel`]. `module` is the file's
/// module path from the workspace walker (e.g. `core::scan`).
pub fn scan(lexed: &Lexed, module: &str) -> FileModel {
    let toks = &lexed.tokens;
    let mut model = FileModel::default();
    let mut stack: Vec<Scope> = Vec::new();

    // Attribute state accumulated since the last item keyword.
    let mut attr_cfg_test = false;
    let mut attr_test = false;
    // Items seen but whose `{` has not arrived yet.
    let mut pending_fn: Option<(String, u32, bool)> = None;
    let mut pending_mod: Option<(String, bool)> = None;
    let mut pending_impl: Option<String> = None;

    let mut i = 0usize;
    while let Some(t) = toks.get(i) {
        // Attributes: `#[...]` (outer) — record cfg(test) / test;
        // `#![...]` (inner) — skip.
        if t.is_punct("#") {
            let mut j = i + 1;
            let inner = toks.get(j).is_some_and(|n| n.is_punct("!"));
            if inner {
                j += 1;
            }
            if toks.get(j).is_some_and(|n| n.is_punct("[")) {
                let end = match_group(toks, j, "[", "]");
                if !inner {
                    let has = |s: &str| {
                        toks.get(j..=end)
                            .is_some_and(|w| w.iter().any(|t| t.is_ident(s)))
                    };
                    if has("cfg") && has("test") {
                        attr_cfg_test = true;
                    } else if toks.get(j + 1).is_some_and(|n| n.is_ident("test"))
                        && toks.get(j + 2).is_some_and(|n| n.is_punct("]"))
                    {
                        attr_test = true;
                    }
                }
                i = end + 1;
                continue;
            }
        }

        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "mod" => {
                    if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        pending_mod = Some((name.text.clone(), attr_cfg_test));
                    }
                    attr_cfg_test = false;
                    attr_test = false;
                    i += 1;
                    continue;
                }
                "impl" => {
                    pending_impl = impl_self_type(toks, i);
                    attr_cfg_test = false;
                    attr_test = false;
                    i += 1;
                    continue;
                }
                // A trait contributes its name as a path segment just
                // like an impl's self type (default method bodies).
                "trait" => {
                    if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        pending_impl = Some(name.text.clone());
                    }
                    attr_cfg_test = false;
                    attr_test = false;
                    i += 1;
                    continue;
                }
                "fn" => {
                    // `fn(u32) -> u32` in type position has no name.
                    if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        pending_fn = Some((name.text.clone(), t.line, attr_test));
                    }
                    attr_cfg_test = false;
                    attr_test = false;
                    i += 1;
                    continue;
                }
                _ => {}
            }
        }

        if t.is_punct(";") {
            // Trait-method declarations and `mod name;` never open a
            // body; drop whatever was pending.
            pending_fn = None;
            pending_mod = None;
            i += 1;
            continue;
        }

        if t.is_punct("{") {
            let in_test_now = stack.last().is_some_and(|s| s.test);
            // `impl Trait` in a signature sets `pending_impl` even
            // though the `{` opens the fn body; consuming one pending
            // kind clears the others so stale ones can't attach to a
            // later block.
            if let Some((name, line, test_attr)) = pending_fn.take() {
                pending_mod = None;
                pending_impl = None;
                let path = fn_path(module, &stack, &name);
                let is_test = test_attr || in_test_now;
                model.fns.push(FnSpan {
                    path,
                    name: name.clone(),
                    open: i,
                    close: i,
                    line,
                    is_test,
                });
                stack.push(Scope {
                    kind: ScopeKind::Fn(name),
                    fn_idx: model.fns.len() - 1,
                    test: is_test,
                    open: i,
                });
            } else if let Some((name, cfg_test)) = pending_mod.take() {
                pending_impl = None;
                stack.push(Scope {
                    kind: ScopeKind::Mod(name),
                    fn_idx: usize::MAX,
                    test: cfg_test || in_test_now,
                    open: i,
                });
            } else if let Some(ty) = pending_impl.take() {
                stack.push(Scope {
                    kind: ScopeKind::Impl(ty),
                    fn_idx: usize::MAX,
                    test: in_test_now,
                    open: i,
                });
            } else {
                stack.push(Scope {
                    kind: ScopeKind::Other,
                    fn_idx: usize::MAX,
                    test: in_test_now,
                    open: i,
                });
            }
            i += 1;
            continue;
        }

        if t.is_punct("}") {
            if let Some(s) = stack.pop() {
                if let ScopeKind::Fn(_) = s.kind {
                    if let Some(f) = model.fns.get_mut(s.fn_idx) {
                        f.close = i;
                    }
                }
                // Record a top-most cfg(test) region once.
                let parent_test = stack.last().is_some_and(|p| p.test);
                if s.test && !parent_test {
                    if let ScopeKind::Mod(_) = s.kind {
                        model.test_ranges.push((s.open, i));
                    }
                }
            }
            i += 1;
            continue;
        }

        i += 1;
    }
    model
}

/// Index of the punct closing the group opened at `open_idx`.
fn match_group(toks: &[Token], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while let Some(t) = toks.get(i) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// The self type of an `impl` starting at token `impl_idx`: the first
/// identifier after a top-level `for` (trait impls), else the first
/// identifier after the impl's generic parameters (inherent impls).
/// HRTB `for<'a>` is skipped (its `for` is followed by `<`).
fn impl_self_type(toks: &[Token], impl_idx: usize) -> Option<String> {
    let mut i = impl_idx + 1;
    // Skip `<...>` generic parameters (with `>>` closing two levels).
    if toks.get(i).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            if t.is_punct("<") || t.is_punct("<<") {
                depth += if t.text.len() == 2 { 2 } else { 1 };
            } else if t.is_punct(">") || t.is_punct(">>") {
                depth -= if t.text.len() == 2 { 2 } else { 1 };
                if depth <= 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let mut first_after_generics: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while let Some(t) = toks.get(i) {
        if t.is_punct("{") || t.is_ident("where") {
            break;
        }
        if t.is_ident("for") && !toks.get(i + 1).is_some_and(|n| n.is_punct("<")) {
            saw_for = true;
            after_for = None;
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident && !t.is_ident("dyn") {
            if saw_for {
                if after_for.is_none() {
                    after_for = Some(t.text.clone());
                }
            } else if first_after_generics.is_none() {
                first_after_generics = Some(t.text.clone());
            }
        }
        i += 1;
    }
    after_for.or(first_after_generics)
}

/// Builds a fn path from the file module, the scope stack and the
/// fn's own name: mods and impl self types contribute segments;
/// enclosing fns contribute theirs (nested fn).
fn fn_path(module: &str, stack: &[Scope], name: &str) -> String {
    let mut path = module.to_string();
    for s in stack {
        match &s.kind {
            ScopeKind::Mod(m) => {
                path.push_str("::");
                path.push_str(m);
            }
            ScopeKind::Impl(ty) => {
                path.push_str("::");
                path.push_str(ty);
            }
            ScopeKind::Fn(f) => {
                path.push_str("::");
                path.push_str(f);
            }
            ScopeKind::Other => {}
        }
    }
    path.push_str("::");
    path.push_str(name);
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn paths(src: &str) -> Vec<(String, bool)> {
        scan(&lex(src), "m")
            .fns
            .into_iter()
            .map(|f| (f.path, f.is_test))
            .collect()
    }

    #[test]
    fn impl_and_mod_paths() {
        let ps = paths(
            "impl<'s> FlowScan<'s> { fn begin_step(&mut self) {} }\n\
             mod inner { pub fn helper() {} }\n\
             fn free() {}",
        );
        assert_eq!(
            ps,
            vec![
                ("m::FlowScan::begin_step".to_string(), false),
                ("m::inner::helper".to_string(), false),
                ("m::free".to_string(), false),
            ]
        );
    }

    #[test]
    fn trait_impl_uses_self_type() {
        let ps = paths("impl Default for SimArena { fn default() -> Self { todo() } }");
        assert_eq!(ps[0].0, "m::SimArena::default");
    }

    #[test]
    fn cfg_test_mod_marks_fns_and_range() {
        let model = scan(
            &lex("#[cfg(test)]\nmod tests { #[test] fn t() {} fn helper() {} }\nfn real() {}"),
            "m",
        );
        let t = model.fns.iter().find(|f| f.name == "t").expect("t");
        let h = model.fns.iter().find(|f| f.name == "helper").expect("h");
        let r = model.fns.iter().find(|f| f.name == "real").expect("r");
        assert!(t.is_test && h.is_test && !r.is_test);
        assert_eq!(model.test_ranges.len(), 1);
        assert!(model.in_test(t.open) && !model.in_test(r.open));
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped() {
        let ps = paths("trait T { fn decl(&self); fn with_default(&self) {} }");
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].0, "m::T::with_default");
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let model = scan(&lex("fn outer() { fn inner() { let x = 1; } }"), "m");
        let inner = model.fns.iter().find(|f| f.name == "inner").expect("inner");
        let mid = inner.open + 1;
        assert_eq!(
            model.enclosing_fn(mid).map(|f| f.path.as_str()),
            Some("m::outer::inner")
        );
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let ps = paths("fn real(cb: fn(u32) -> u32) { let _ = cb; }");
        assert_eq!(ps.len(), 1);
    }
}
