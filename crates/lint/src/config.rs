//! `lint.toml`: rule configuration, the hot-function manifest and the
//! findings baseline, parsed by a minimal hand-rolled TOML-subset
//! reader (tables, arrays of tables, string/bool/integer values and
//! single- or multi-line string arrays — everything the committed
//! config uses, nothing more, no external deps).

use std::collections::BTreeMap;
use std::path::Path;

/// One parsed `key = value` right-hand side.
#[derive(Clone, Debug, PartialEq)]
pub enum TomlValue {
    /// `"…"`.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// `[ "…", … ]` (strings only).
    StrArray(Vec<String>),
}

/// One table: ordered key → value pairs.
pub type TomlTable = BTreeMap<String, TomlValue>;

/// The parsed file: header path → the tables declared under it.
/// `[a.b]` appears once under `"a.b"`; every `[[a.b]]` appends one
/// more table under the same key. Top-level keys live under `""`.
#[derive(Clone, Debug, Default)]
pub struct TomlDoc {
    tables: BTreeMap<String, Vec<TomlTable>>,
}

impl TomlDoc {
    /// All tables declared under `header` (empty slice when absent).
    pub fn tables(&self, header: &str) -> &[TomlTable] {
        self.tables.get(header).map_or(&[], Vec::as_slice)
    }

    /// The first table under `header`, if any.
    pub fn table(&self, header: &str) -> Option<&TomlTable> {
        self.tables(header).first()
    }
}

/// Parses the TOML subset. Unknown syntax is an error, not a guess —
/// a config typo must fail the run loudly.
pub fn parse_toml(src: &str) -> Result<TomlDoc, String> {
    let mut doc = TomlDoc::default();
    let mut current = String::new();
    doc.tables
        .entry(String::new())
        .or_default()
        .push(TomlTable::new());

    let mut lines = src.lines().enumerate().peekable();
    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .ok_or_else(|| format!("line {}: malformed [[table]]", ln + 1))?
                .trim()
                .to_string();
            doc.tables
                .entry(name.clone())
                .or_default()
                .push(TomlTable::new());
            current = name;
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {}: malformed [table]", ln + 1))?
                .trim()
                .to_string();
            let slot = doc.tables.entry(name.clone()).or_default();
            if slot.is_empty() {
                slot.push(TomlTable::new());
            }
            current = name;
            continue;
        }
        let (key, mut value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .ok_or_else(|| format!("line {}: expected key = value", ln + 1))?;
        // Multi-line arrays: accumulate until the closing bracket.
        if value.starts_with('[') && !balanced_array(&value) {
            for (_, cont) in lines.by_ref() {
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
                if balanced_array(&value) {
                    break;
                }
            }
        }
        let parsed = parse_value(&value).map_err(|e| format!("line {}: {e}", ln + 1))?;
        let table = doc
            .tables
            .get_mut(&current)
            .and_then(|v| v.last_mut())
            .ok_or_else(|| format!("line {}: no open table", ln + 1))?;
        table.insert(key, parsed);
    }
    Ok(doc)
}

/// Drops a trailing `# comment`, respecting string quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return line.get(..i).unwrap_or(line),
            _ => {}
        }
    }
    line
}

/// `true` when every `[` in `s` outside strings has a matching `]`.
fn balanced_array(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(v: &str) -> Result<TomlValue, String> {
    if v == "true" {
        return Ok(TomlValue::Bool(true));
    }
    if v == "false" {
        return Ok(TomlValue::Bool(false));
    }
    if let Some(s) = v.strip_prefix('"') {
        let s = s
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string: {v}"))?;
        return Ok(TomlValue::Str(s.to_string()));
    }
    if let Some(inner) = v.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array: {v}"))?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                TomlValue::Str(s) => items.push(s),
                other => return Err(format!("only string arrays are supported, got {other:?}")),
            }
        }
        return Ok(TomlValue::StrArray(items));
    }
    v.parse::<i64>()
        .map(TomlValue::Int)
        .map_err(|_| format!("unsupported value: {v}"))
}

/// Splits `a, b, c` on commas outside string quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

// ---------------------------------------------------------------------
// Typed configuration.
// ---------------------------------------------------------------------

/// A declared lock partial order over one module scope.
#[derive(Clone, Debug)]
pub struct LockOrder {
    /// Human name (shown in diagnostics).
    pub name: String,
    /// Module-path prefixes the order applies to.
    pub modules: Vec<String>,
    /// Lock field names, earliest-acquired first.
    pub classes: Vec<String>,
}

/// A "class X may only be acquired while holding Y" constraint.
#[derive(Clone, Debug)]
pub struct LockRequires {
    /// Human name (shown in diagnostics).
    pub name: String,
    /// Module-path prefixes the constraint applies to.
    pub modules: Vec<String>,
    /// The constrained lock class.
    pub class: String,
    /// Classes of which at least one must be held.
    pub requires: Vec<String>,
}

/// One baselined (grandfathered) finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// The whole `lint.toml`, typed.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Directories scanned, relative to the workspace root.
    pub roots: Vec<String>,
    /// Path prefixes excluded from the scan.
    pub exclude: Vec<String>,
    /// Declared lock orders.
    pub lock_orders: Vec<LockOrder>,
    /// Declared lock requirements.
    pub lock_requires: Vec<LockRequires>,
    /// Fully-qualified hot functions (trailing `::*` wildcards ok).
    pub hot_functions: Vec<String>,
    /// Denied call patterns inside hot functions.
    pub hot_deny: Vec<String>,
    /// Module prefixes under the determinism rules.
    pub det_modules: Vec<String>,
    /// Wall-clock call patterns denied there.
    pub det_wallclock: Vec<String>,
    /// Functions whose bodies may read the wall clock.
    pub det_timing_wrappers: Vec<String>,
    /// Require `#![forbid(unsafe_code)]` in crate roots.
    pub require_forbid: bool,
    /// Crate-root paths exempt from the forbid requirement.
    pub forbid_exempt: Vec<String>,
    /// Module prefixes where stdout/stderr macros are denied.
    pub stdio_modules: Vec<String>,
    /// Module prefixes under the cast-parenthesization rule.
    pub cast_modules: Vec<String>,
    /// Integer type names the cast rule watches.
    pub cast_types: Vec<String>,
    /// Grandfathered findings.
    pub baseline: Vec<BaselineEntry>,
}

fn strings(t: &TomlTable, key: &str) -> Vec<String> {
    match t.get(key) {
        Some(TomlValue::StrArray(v)) => v.clone(),
        Some(TomlValue::Str(s)) => vec![s.clone()],
        _ => Vec::new(),
    }
}

fn string(t: &TomlTable, key: &str) -> Option<String> {
    match t.get(key) {
        Some(TomlValue::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

impl LintConfig {
    /// Loads and types `lint.toml` from `path`.
    pub fn load(path: &Path) -> Result<LintConfig, String> {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_toml(&src).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Types an already-parsed TOML source.
    pub fn from_toml(src: &str) -> Result<LintConfig, String> {
        let doc = parse_toml(src)?;
        let mut cfg = LintConfig::default();

        if let Some(ws) = doc.table("workspace") {
            cfg.roots = strings(ws, "roots");
            cfg.exclude = strings(ws, "exclude");
        }
        if cfg.roots.is_empty() {
            cfg.roots = vec!["crates".to_string(), "src".to_string()];
        }

        for t in doc.tables("lock.order") {
            cfg.lock_orders.push(LockOrder {
                name: string(t, "name").unwrap_or_else(|| "unnamed".to_string()),
                modules: strings(t, "modules"),
                classes: strings(t, "classes"),
            });
        }
        for t in doc.tables("lock.requires") {
            cfg.lock_requires.push(LockRequires {
                name: string(t, "name").unwrap_or_else(|| "unnamed".to_string()),
                modules: strings(t, "modules"),
                class: string(t, "class").ok_or("lock.requires needs `class`")?,
                requires: strings(t, "requires"),
            });
        }
        if let Some(hot) = doc.table("hot") {
            cfg.hot_functions = strings(hot, "functions");
            cfg.hot_deny = strings(hot, "deny");
        }
        if cfg.hot_deny.is_empty() {
            cfg.hot_deny = [
                "Vec::new",
                "vec!",
                "collect",
                "to_string",
                "to_vec",
                "format!",
                "Box::new",
                "clone",
                "to_owned",
                "String::new",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
        }
        if let Some(det) = doc.table("determinism") {
            cfg.det_modules = strings(det, "modules");
            cfg.det_wallclock = strings(det, "wallclock");
            cfg.det_timing_wrappers = strings(det, "timing_wrappers");
        }
        if cfg.det_wallclock.is_empty() {
            cfg.det_wallclock = vec!["Instant::now".to_string(), "SystemTime".to_string()];
        }
        if let Some(ua) = doc.table("unsafe_audit") {
            cfg.require_forbid = matches!(ua.get("require_forbid"), Some(TomlValue::Bool(true)));
            cfg.forbid_exempt = strings(ua, "forbid_exempt");
        }
        if let Some(stdio) = doc.table("stdio") {
            cfg.stdio_modules = strings(stdio, "modules");
        }
        if let Some(casts) = doc.table("casts") {
            cfg.cast_modules = strings(casts, "modules");
            cfg.cast_types = strings(casts, "types");
        }
        if cfg.cast_types.is_empty() {
            cfg.cast_types = [
                "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize", "TimeStep",
                "Capacity", "Delay", "Nanos",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
        }
        for t in doc.tables("baseline") {
            let rule = string(t, "rule").ok_or("baseline needs `rule`")?;
            let file = string(t, "file").ok_or("baseline needs `file`")?;
            let line = match t.get("line") {
                Some(TomlValue::Int(n)) => u32::try_from(*n).unwrap_or(0),
                _ => 0,
            };
            cfg.baseline.push(BaselineEntry { rule, file, line });
        }
        Ok(cfg)
    }

    /// `true` when `module` falls under one of `prefixes` (exact match
    /// or a `prefix::…` descendant).
    pub fn module_in(module: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| {
            module == p
                || (module.len() > p.len()
                    && module.starts_with(p.as_str())
                    && module.get(p.len()..p.len() + 2) == Some("::"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_multiline() {
        let doc = parse_toml(
            r#"
top = "x"  # trailing comment
[workspace]
roots = ["crates", "src"]
[hot]
functions = [
  "a::b",   # with a comment
  "c::d::*",
]
[[lock.order]]
name = "daemon"
classes = ["armed", "journal"]
[[lock.order]]
name = "engine"
classes = ["entries"]
"#,
        )
        .expect("parses");
        assert_eq!(
            doc.table("").and_then(|t| t.get("top")),
            Some(&TomlValue::Str("x".to_string()))
        );
        assert_eq!(doc.tables("lock.order").len(), 2);
        let hot = doc.table("hot").expect("hot");
        assert_eq!(
            hot.get("functions"),
            Some(&TomlValue::StrArray(vec![
                "a::b".to_string(),
                "c::d::*".to_string()
            ]))
        );
    }

    #[test]
    fn typed_config_round_trip() {
        let cfg = LintConfig::from_toml(
            r#"
[workspace]
roots = ["crates"]
exclude = ["crates/lint/tests"]
[hot]
functions = ["core::scan::FlowScan::begin_step"]
[determinism]
modules = ["core", "net::routing"]
[unsafe_audit]
require_forbid = true
[[lock.order]]
name = "daemon-wal"
modules = ["daemon::service"]
classes = ["admission", "statuses", "armed", "journal"]
[[lock.requires]]
name = "journal-under-armed"
modules = ["daemon::service"]
class = "journal"
requires = ["armed"]
[[baseline]]
rule = "det-wallclock"
file = "crates/x/src/lib.rs"
line = 10
"#,
        )
        .expect("valid config");
        assert!(cfg.require_forbid);
        assert_eq!(cfg.lock_orders.len(), 1);
        assert_eq!(cfg.lock_requires[0].class, "journal");
        assert_eq!(cfg.baseline.len(), 1);
        assert!(LintConfig::module_in("core::scan", &cfg.det_modules));
        assert!(LintConfig::module_in("net::routing", &cfg.det_modules));
        assert!(!LintConfig::module_in("net::network", &cfg.det_modules));
        assert!(!LintConfig::module_in("corex", &cfg.det_modules));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_toml("not a kv line").is_err());
        assert!(parse_toml("[unclosed").is_err());
        assert!(LintConfig::from_toml("[casts]\nmodules = [1]").is_err());
    }
}
