//! Findings: the one diagnostic type every rule emits, plus the text
//! and JSON renderers and baseline filtering.

use crate::config::BaselineEntry;
use serde_json::{Map, Value};

/// How serious a finding is. Everything here currently fails the run;
/// the distinction is for readers and for the JSON report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Breaks a correctness invariant (lock order, determinism).
    Error,
    /// Likely a defect but with a plausible benign reading.
    Warning,
}

impl Severity {
    /// Lowercase label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One diagnostic: rule id, severity, position and message.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable rule id (`lock-order`, `hot-alloc`, …).
    pub rule: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human explanation, one line.
    pub message: String,
}

impl Finding {
    /// `error[lock-order] crates/daemon/src/service.rs:607: …`
    pub fn render_text(&self) -> String {
        format!(
            "{}[{}] {}:{}: {}",
            self.severity.label(),
            self.rule,
            self.file,
            self.line,
            self.message
        )
    }

    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("rule".to_string(), Value::String(self.rule.to_string()));
        m.insert(
            "severity".to_string(),
            Value::String(self.severity.label().to_string()),
        );
        m.insert("file".to_string(), Value::String(self.file.clone()));
        m.insert(
            "line".to_string(),
            Value::from_u64_exact(u64::from(self.line)),
        );
        m.insert("message".to_string(), Value::String(self.message.clone()));
        Value::Object(m)
    }
}

/// Splits `findings` into (live, baselined) against the committed
/// baseline. A baseline entry matches on rule + file; a nonzero line
/// must also match exactly, so a baselined finding that moves shows
/// up again rather than silently covering a new one nearby.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &[BaselineEntry],
) -> (Vec<Finding>, Vec<Finding>) {
    findings.into_iter().partition(|f| {
        !baseline
            .iter()
            .any(|b| b.rule == f.rule && b.file == f.file && (b.line == 0 || b.line == f.line))
    })
}

/// Renders the full report as a JSON object:
/// `{ "findings": [...], "baselined": n, "total": n }`.
pub fn render_json(live: &[Finding], baselined: usize) -> String {
    let mut root = Map::new();
    root.insert(
        "findings".to_string(),
        Value::Array(live.iter().map(Finding::to_json).collect()),
    );
    root.insert(
        "baselined".to_string(),
        Value::from_u64_exact(baselined as u64),
    );
    root.insert(
        "total".to_string(),
        Value::from_u64_exact((live.len() + baselined) as u64),
    );
    serde_json::to_string_pretty(&Value::Object(root)).unwrap_or_else(|_| "{}".to_string())
}

/// Sorts findings for stable output: file, line, rule.
pub fn sort(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn text_format_is_file_line_clickable() {
        let f = finding("lock-order", "crates/daemon/src/service.rs", 607);
        assert_eq!(
            f.render_text(),
            "error[lock-order] crates/daemon/src/service.rs:607: m"
        );
    }

    #[test]
    fn baseline_matches_rule_file_line() {
        let fs = vec![
            finding("hot-alloc", "a.rs", 5),
            finding("hot-alloc", "a.rs", 9),
        ];
        let base = vec![BaselineEntry {
            rule: "hot-alloc".to_string(),
            file: "a.rs".to_string(),
            line: 5,
        }];
        let (live, dead) = apply_baseline(fs, &base);
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].line, 9);
        assert_eq!(dead.len(), 1);
    }

    #[test]
    fn baseline_line_zero_matches_whole_file() {
        let fs = vec![
            finding("cast-paren", "b.rs", 1),
            finding("cast-paren", "b.rs", 2),
        ];
        let base = vec![BaselineEntry {
            rule: "cast-paren".to_string(),
            file: "b.rs".to_string(),
            line: 0,
        }];
        let (live, dead) = apply_baseline(fs, &base);
        assert!(live.is_empty());
        assert_eq!(dead.len(), 2);
    }

    #[test]
    fn json_report_shape() {
        let live = vec![finding("det-hash", "c.rs", 3)];
        let json = render_json(&live, 2);
        let v = serde_json::from_str(&json).expect("valid json");
        assert_eq!(v.get("total").and_then(Value::as_u64), Some(3));
        assert_eq!(
            v.get("findings").and_then(Value::as_array).map(Vec::len),
            Some(1)
        );
    }
}
