//! Workspace walking: finds every `.rs` file under the configured
//! roots and maps its path to a module path (`crates/core/src/scan.rs`
//! → `core::scan`), marking test files and crate roots on the way.

use crate::config::LintConfig;
use std::path::{Path, PathBuf};

/// One source file to lint.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute (or root-joined) path for reading.
    pub path: PathBuf,
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Module path (`core::scan`, `daemon::bin::chronusd`, …).
    pub module: String,
    /// Lives under `tests/`, `benches/` or `examples/`.
    pub is_test_file: bool,
    /// A crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`).
    pub is_crate_root: bool,
}

/// Collects every lintable source file under `root`, honoring the
/// config's roots and exclude prefixes. Deterministic order.
pub fn collect(root: &Path, cfg: &LintConfig) -> Result<Vec<SourceFile>, String> {
    let mut rels: Vec<String> = Vec::new();
    for r in &cfg.roots {
        let dir = root.join(r);
        if dir.is_dir() {
            walk(&dir, root, cfg, &mut rels)?;
        }
    }
    rels.sort();
    let mut out = Vec::with_capacity(rels.len());
    for rel in rels {
        if let Some((module, is_test_file, is_crate_root)) = classify(&rel) {
            out.push(SourceFile {
                path: root.join(&rel),
                rel,
                module,
                is_test_file,
                is_crate_root,
            });
        }
    }
    Ok(out)
}

fn walk(dir: &Path, root: &Path, cfg: &LintConfig, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if cfg
            .exclude
            .iter()
            .any(|ex| rel == *ex || rel.starts_with(&format!("{ex}/")))
        {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, cfg, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Maps a workspace-relative path to `(module, is_test, is_crate_root)`.
/// Returns `None` for files with no module mapping (none currently).
fn classify(rel: &str) -> Option<(String, bool, bool)> {
    let segs: Vec<&str> = rel.split('/').collect();
    // crates/<crate>/...
    if segs.first() == Some(&"crates") {
        let krate = (*segs.get(1)?).to_string();
        let rest = segs.get(2..)?;
        return classify_in_crate(&krate, rest);
    }
    // shims/<shim>/... — normally excluded; map like a crate.
    if segs.first() == Some(&"shims") {
        let krate = (*segs.get(1)?).to_string();
        let rest = segs.get(2..)?;
        return classify_in_crate(&krate, rest);
    }
    // Root facade package: src/, tests/, examples/, benches/.
    classify_in_crate("chronus", &segs)
}

fn classify_in_crate(krate: &str, rest: &[&str]) -> Option<(String, bool, bool)> {
    let stem = |s: &str| s.trim_end_matches(".rs").to_string();
    match rest.first().copied() {
        Some("src") => {
            let inner = rest.get(1..)?;
            match inner {
                ["lib.rs"] => Some((krate.to_string(), false, true)),
                ["main.rs"] => Some((format!("{krate}::main"), false, true)),
                ["bin", b] => Some((format!("{krate}::bin::{}", stem(b)), false, true)),
                _ => {
                    // src/a/b.rs → krate::a::b; mod.rs drops its segment.
                    let mut module = krate.to_string();
                    for (i, seg) in inner.iter().enumerate() {
                        let last = i + 1 == inner.len();
                        if last && *seg == "mod.rs" {
                            break;
                        }
                        module.push_str("::");
                        module.push_str(&if last { stem(seg) } else { (*seg).to_string() });
                    }
                    Some((module, false, false))
                }
            }
        }
        Some(kind @ ("tests" | "benches" | "examples")) => {
            let mut module = format!("{krate}::{kind}");
            for (i, seg) in rest.get(1..)?.iter().enumerate() {
                let last = i + 2 == rest.len();
                if last && *seg == "mod.rs" {
                    break;
                }
                module.push_str("::");
                module.push_str(&if last { stem(seg) } else { (*seg).to_string() });
            }
            Some((module, true, false))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rel: &str) -> (String, bool, bool) {
        classify(rel).expect("classified")
    }

    #[test]
    fn crate_module_mapping() {
        assert_eq!(
            m("crates/core/src/lib.rs"),
            ("core".to_string(), false, true)
        );
        assert_eq!(
            m("crates/core/src/scan.rs"),
            ("core::scan".to_string(), false, false)
        );
        assert_eq!(
            m("crates/daemon/src/bin/chronusd.rs"),
            ("daemon::bin::chronusd".to_string(), false, true)
        );
        assert_eq!(
            m("crates/timenet/src/sub/mod.rs"),
            ("timenet::sub".to_string(), false, false)
        );
        assert_eq!(
            m("crates/bench/tests/alloc_counter.rs"),
            ("bench::tests::alloc_counter".to_string(), true, false)
        );
    }

    #[test]
    fn root_facade_mapping() {
        assert_eq!(m("src/lib.rs"), ("chronus".to_string(), false, true));
        assert_eq!(
            m("tests/paper_example.rs"),
            ("chronus::tests::paper_example".to_string(), true, false)
        );
        assert_eq!(
            m("examples/quickstart.rs"),
            ("chronus::examples::quickstart".to_string(), true, false)
        );
    }
}
