//! Fixture: a grandfathered finding silenced by the baseline — and
//! only that one; the second stamp below is new and must still fail.
use std::time::Instant;

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let t1 = Instant::now();
    t0.elapsed().as_nanos() + t1.elapsed().as_nanos()
}
