//! Fixture: unsafe without its SAFETY story, in a crate root that
//! also forgot `#![forbid(unsafe_code)]`.

pub fn head(xs: &[u32]) -> u32 {
    unsafe { *xs.get_unchecked(0) }
}
