//! Fixture: audited unsafe — the crate root is exempted from the
//! forbid requirement and every unsafe block carries its SAFETY.

pub fn head(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    // SAFETY: bounds asserted on the line above; index 0 is in range.
    unsafe { *xs.get_unchecked(0) }
}
