//! Fixture: bare narrowing casts as arithmetic operands.
pub fn first_set(w: usize, word: u64) -> usize {
    w * 64 + word.trailing_zeros() as usize
}

pub fn window_end(base: i64, steps: usize) -> i64 {
    base + steps as i64 - 1
}
