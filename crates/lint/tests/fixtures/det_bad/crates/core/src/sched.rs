//! Fixture: wall clock and hash-ordered state in a schedule producer.
use std::collections::HashMap;
use std::time::Instant;

pub fn pick(xs: &[u32]) -> u32 {
    let t0 = Instant::now();
    let mut weights: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *weights.entry(x).or_insert(0) += 1;
    }
    let mut best = 0;
    for (&k, &w) in weights.iter() {
        if w > best {
            best = k;
        }
    }
    best.wrapping_add(t0.elapsed().subsec_nanos())
}
