//! Fixture: the PR-6 WAL race, both shapes.
use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap()
}

pub struct Service {
    admission: Mutex<u32>,
    statuses: Mutex<u32>,
    armed: Mutex<u32>,
    journal: Mutex<u32>,
}

impl Service {
    /// BAD: journal appended outside the armed lock — a concurrent
    /// snapshot can observe the armed schedule without its WAL record.
    pub fn arm(&self) {
        let mut journal = lock(&self.journal);
        *journal += 1;
    }

    /// BAD: armed re-acquired while the journal guard is still live —
    /// the inverse nesting deadlocks against `arm_fixed`.
    pub fn snapshot(&self) {
        let armed = lock(&self.armed);
        let journal = lock(&self.journal);
        drop(armed);
        let again = lock(&self.armed);
        drop(again);
        drop(journal);
    }
}
