//! Fixture: the PR-6 fix — journal strictly nested under armed, locks
//! taken in declared order, plus the if-let scrutinee-temporary shape
//! that must not count as a held guard after its if-let closes.
use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap()
}

pub struct Service {
    admission: Mutex<u32>,
    statuses: Mutex<u32>,
    armed: Mutex<Option<u32>>,
    journal: Mutex<u32>,
}

impl Service {
    pub fn arm(&self) {
        let armed = lock(&self.armed);
        let mut journal = lock(&self.journal);
        *journal += 1;
        drop(journal);
        drop(armed);
    }

    pub fn admit(&self) {
        if let Some(slot) = *lock(&self.armed) {
            let _ = slot;
        }
        // The scrutinee temporary above died with its if-let: taking
        // an earlier-ordered lock here is fine.
        let statuses = lock(&self.statuses);
        drop(statuses);
        let admission = lock(&self.admission);
        drop(admission);
    }
}
