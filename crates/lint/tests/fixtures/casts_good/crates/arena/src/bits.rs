//! Fixture: the parenthesized twins, plus a closure whose `|` must
//! not read as bitwise-or.
pub fn first_set(w: usize, word: u64) -> usize {
    w * 64 + (word.trailing_zeros() as usize)
}

pub fn window_end(base: i64, steps: usize) -> i64 {
    base + (steps as i64) - 1
}

pub fn total(xs: &[u32]) -> u64 {
    xs.iter().map(|v| *v as u64).sum::<u64>()
}
