//! Fixture: binaries own their stdout — never flagged.

fn main() {
    println!("enginectl: ok");
    eprintln!("enginectl: diagnostics go to stderr");
}
