//! Fixture: the clean twin — the library returns data, the binary
//! prints, and one justified allow covers a deliberate boot banner.

pub fn plan(n: u32) -> Result<u32, String> {
    let result = n.saturating_mul(2);
    if result == 0 {
        return Err("empty plan".to_string());
    }
    Ok(result)
}

pub fn banner() -> &'static str {
    // chronus-lint: allow(no-stdio) — one-time boot banner requested by the operator
    println!("engine ready");
    "ready"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_output_is_fine() {
        println!("tests own their stdout");
        assert_eq!(super::plan(2), Ok(4));
    }
}
