//! Fixture: a library planner that narrates to stdout/stderr.

pub fn plan(n: u32) -> u32 {
    println!("planning {n} flows");
    let result = n.saturating_mul(2);
    if result == 0 {
        eprintln!("empty plan");
    }
    dbg!(result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_output_is_fine() {
        println!("tests own their stdout");
        assert_eq!(super::plan(2), 4);
    }
}
