//! Fixture: the deterministic twin — BTreeMap ordering and an inline-
//! allowed observability stamp that never feeds the result.
use std::collections::BTreeMap;
use std::time::Instant;

pub fn pick(xs: &[u32]) -> (u32, u128) {
    // chronus-lint: allow(det-wallclock) — timing stamp for metrics only; never feeds the schedule
    let t0 = Instant::now();
    let mut weights: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        *weights.entry(x).or_insert(0) += 1;
    }
    let mut best = 0;
    for (&k, &w) in weights.iter() {
        if w > best {
            best = k;
        }
    }
    (best, t0.elapsed().as_nanos())
}
