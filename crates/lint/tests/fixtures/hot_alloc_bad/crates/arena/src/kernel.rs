//! Fixture: allocations seeded into a manifest-listed hot function.
pub struct Step {
    acc: u64,
}

impl Step {
    pub fn bump(&mut self, xs: &[u64]) -> u64 {
        let mut out = Vec::new();
        let extra = vec![0u64; 4];
        let doubled: Vec<u64> = xs.iter().map(|x| x * 2).collect();
        out.extend_from_slice(&doubled);
        self.acc += out.len() as u64 + extra.len() as u64;
        self.acc
    }

    /// Not in the manifest: free to allocate.
    pub fn cold_summary(&self) -> String {
        format!("acc={}", self.acc)
    }
}
