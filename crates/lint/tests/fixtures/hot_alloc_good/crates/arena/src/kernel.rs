//! Fixture: the same kernel, allocation-free — reused buffers and one
//! justified inline allow for an alloc-free `Vec::new`.
pub struct Step {
    acc: u64,
    scratch: Vec<u64>,
}

impl Step {
    pub fn bump(&mut self, xs: &[u64]) -> u64 {
        self.scratch.clear();
        for &x in xs {
            self.scratch.push(x * 2);
        }
        // chronus-lint: allow(hot-alloc) — empty Vec::new is alloc-free until first push
        let spill: Vec<u64> = Vec::new();
        self.acc += self.scratch.len() as u64 + spill.len() as u64;
        self.acc
    }
}
