//! The two workspace-level guarantees behind the CI gate:
//!
//! 1. The committed `lint.toml` lints the real workspace clean with an
//!    *empty* baseline — every inline allow is a reviewed, justified
//!    escape, not a rug to sweep findings under.
//! 2. The hot-function manifest names items that actually exist, so a
//!    rename cannot silently shrink hot-path allocation coverage.

use chronus_lint::config::LintConfig;
use chronus_lint::rules::hot_alloc::manifest_matches;
use chronus_lint::{lexer, model, workspace};
use std::path::Path;

fn repo_root() -> &'static Path {
    // crates/lint -> crates -> repo root, where lint.toml lives.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has two ancestors");
    assert!(
        root.join("lint.toml").is_file(),
        "expected the committed lint.toml at the repo root"
    );
    root
}

/// The workspace lints clean under the committed config, and the
/// committed baseline is empty (nothing grandfathered).
#[test]
fn workspace_lints_clean_with_empty_baseline() {
    let root = repo_root();
    let cfg = LintConfig::load(&root.join("lint.toml")).expect("parse committed lint.toml");
    assert!(
        cfg.baseline.is_empty(),
        "the committed baseline must stay empty; fix or inline-allow new findings instead"
    );
    let report = chronus_lint::run(root, &cfg).expect("lint the workspace");
    assert!(
        report.files > 100,
        "suspiciously few files scanned ({}); did the roots move?",
        report.files
    );
    assert!(
        report.live.is_empty(),
        "workspace must lint clean; found:\n{}",
        report
            .live
            .iter()
            .map(|f| f.render_text())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Every entry in the `[hot] functions` manifest matches at least one
/// real function in the scanned workspace. Catches the silent-rot
/// failure where a kernel is renamed and its allocation checks stop
/// applying without anyone noticing.
#[test]
fn hot_manifest_names_real_functions() {
    let root = repo_root();
    let cfg = LintConfig::load(&root.join("lint.toml")).expect("parse committed lint.toml");
    assert!(!cfg.hot_functions.is_empty(), "manifest unexpectedly empty");

    let files = workspace::collect(root, &cfg).expect("collect workspace files");
    let mut fn_paths: Vec<String> = Vec::new();
    for f in &files {
        let src = std::fs::read_to_string(&f.path).expect("read workspace source");
        let lexed = lexer::lex(&src);
        let fm = model::scan(&lexed, &f.module);
        fn_paths.extend(fm.fns.into_iter().map(|s| s.path));
    }

    let stale: Vec<&String> = cfg
        .hot_functions
        .iter()
        .filter(|pat| !fn_paths.iter().any(|p| manifest_matches(pat, p)))
        .collect();
    assert!(
        stale.is_empty(),
        "lint.toml [hot] manifest entries match no function in the workspace \
         (renamed or removed?): {stale:?}"
    );
}
