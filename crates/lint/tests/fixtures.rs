//! UI-style fixture tests.
//!
//! Each directory under `tests/fixtures/` is a miniature workspace:
//! its own `lint.toml`, a `crates/` tree of deliberately bad (or
//! deliberately fixed) code, and an `expected.txt` golden holding the
//! rendered live findings, one per line, in report order. `*_bad`
//! cases seed a real defect shape — the PR-6 WAL lock race, a hot
//! kernel that allocates, a wall-clock schedule — and must reproduce
//! the exact diagnostics; `*_good` cases hold the fixed twin and must
//! lint clean, pinning the analyzer's false-positive behaviour (the
//! if-let scrutinee temporary, the closure-pipe cast, the inline
//! allow).
//!
//! To refresh a golden after an intentional diagnostic change:
//! `cargo run -p chronus-lint -- --root crates/lint/tests/fixtures/<case>`
//! and paste the finding lines (not the summary) into `expected.txt`.

use chronus_lint::config::LintConfig;
use chronus_lint::Report;
use std::path::{Path, PathBuf};

fn fixture_root(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(case)
}

fn run_case(case: &str) -> Report {
    let root = fixture_root(case);
    let cfg = LintConfig::load(&root.join("lint.toml"))
        .unwrap_or_else(|e| panic!("{case}: load lint.toml: {e}"));
    chronus_lint::run(&root, &cfg).unwrap_or_else(|e| panic!("{case}: run: {e}"))
}

fn assert_golden(case: &str, report: &Report) {
    let golden_path = fixture_root(case).join("expected.txt");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{case}: read expected.txt: {e}"));
    let expected: Vec<&str> = golden.lines().filter(|l| !l.trim().is_empty()).collect();
    let actual: Vec<String> = report.live.iter().map(|f| f.render_text()).collect();
    assert_eq!(
        actual, expected,
        "{case}: findings diverge from expected.txt (left = actual)"
    );
}

/// Bad fixtures must reproduce their goldens exactly — rule id,
/// `file:line`, and message.
#[test]
fn bad_fixtures_reproduce_goldens() {
    for case in [
        "lock_bad",
        "hot_alloc_bad",
        "det_bad",
        "unsafe_bad",
        "casts_bad",
        "stdio_bad",
    ] {
        let report = run_case(case);
        assert!(
            !report.live.is_empty(),
            "{case}: expected findings, got none"
        );
        assert_golden(case, &report);
    }
}

/// Good fixtures — the fixed twins of the bad ones, including the
/// known false-positive shapes — must lint clean.
#[test]
fn good_fixtures_lint_clean() {
    for case in [
        "lock_good",
        "hot_alloc_good",
        "det_good",
        "unsafe_good",
        "casts_good",
        "stdio_good",
    ] {
        let report = run_case(case);
        assert_golden(case, &report);
        assert!(
            report.live.is_empty(),
            "{case}: expected clean, got: {:?}",
            report
                .live
                .iter()
                .map(|f| f.render_text())
                .collect::<Vec<_>>()
        );
    }
}

/// The baseline silences exactly the grandfathered finding; a new
/// finding in the same file still surfaces live.
#[test]
fn baseline_silences_only_listed_findings() {
    let report = run_case("baseline");
    assert_golden("baseline", &report);
    assert_eq!(report.baselined, 1, "one grandfathered finding expected");
    assert_eq!(report.live.len(), 1, "the new finding must stay live");
    let only = report.live.first().expect("checked non-empty");
    assert_eq!(only.rule, "det-wallclock");
    assert_eq!(only.line, 7);
}

/// The lock_bad fixture is the PR-6 regression test in miniature:
/// both the journal-outside-armed append and the inverse nesting must
/// be caught, each with a `file:line` pointing at the acquisition.
#[test]
fn lock_bad_catches_the_pr6_wal_race_shape() {
    let report = run_case("lock_bad");
    let rules: Vec<&str> = report.live.iter().map(|f| f.rule).collect();
    assert!(
        rules.contains(&"lock-requires"),
        "journal append outside armed"
    );
    assert!(
        rules.contains(&"lock-order"),
        "armed re-acquired under journal"
    );
    for f in &report.live {
        assert!(f.line > 0, "diagnostic must carry a real line");
        assert!(f.file.ends_with("service.rs"));
    }
}
