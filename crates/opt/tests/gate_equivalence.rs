//! The branch-and-bound must explore the *same tree* whichever gate
//! backend answers its node queries: identical schedules, makespans,
//! simulator-call counts and expanded-state counts.

use chronus_net::{
    motivating_example, reversal_instance, InstanceGenerator, InstanceGeneratorConfig,
    UpdateInstance,
};
use chronus_opt::{optimal_schedule_with, OptConfig};
use proptest::prelude::*;
use std::time::Duration;

fn assert_equivalent(inst: &UpdateInstance) {
    let base_cfg = OptConfig {
        budget: Duration::from_secs(20),
        ..Default::default()
    };
    let full = optimal_schedule_with(
        inst,
        OptConfig {
            incremental_gate: false,
            ..base_cfg
        },
    );
    let inc = optimal_schedule_with(inst, base_cfg);
    match (full, inc) {
        (Ok(f), Ok(i)) => {
            assert_eq!(f.schedule, i.schedule, "schedules diverged");
            assert_eq!(f.makespan, i.makespan, "makespans diverged");
            assert_eq!(
                f.simulator_calls, i.simulator_calls,
                "check counts diverged"
            );
            assert_eq!(f.states, i.states, "expanded states diverged");
        }
        (Err(_), Err(_)) => {}
        (f, i) => panic!("feasibility diverged: full={f:?} incremental={i:?}"),
    }
}

#[test]
fn motivating_example_equivalent() {
    assert_equivalent(&motivating_example());
}

#[test]
fn reversal_instances_equivalent() {
    for n in 4..8 {
        assert_equivalent(&reversal_instance(n, 2, 1));
        assert_equivalent(&reversal_instance(n, 1, 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_paper_instances_equivalent(
        switches in 6usize..14,
        seed in 0u64..10_000,
    ) {
        let cfg = InstanceGeneratorConfig::paper(switches, seed);
        if let Some(inst) = InstanceGenerator::new(cfg).generate() {
            assert_equivalent(&inst);
        }
    }
}
