//! # chronus-opt — exact MUTP solvers (the paper's OPT baseline)
//!
//! The paper obtains OPT by solving the integer program (3) with
//! branch and bound. This crate provides two equivalent routes:
//!
//! - [`search::optimal_schedule`] — an iterative-deepening branch-and-
//!   bound over the discrete schedule space: for growing makespan
//!   bounds it runs a time-ordered DFS in which, once every update at
//!   steps `≤ t` is decided, all simulation events at steps `≤ t` are
//!   frozen and can soundly prune the subtree. The first makespan
//!   admitting a consistent schedule is optimal.
//! - [`ilp`] — a faithful rendering of program (3): the path set
//!   `P(f)` is enumerated in the time-extended network, variables
//!   `x_{f,p}` pick one path per flow, constraint (3a) bounds the load
//!   of every time-extended link, and a small exact 0/1
//!   branch-and-bound solver minimizes `|T|`. This is the form the
//!   paper feeds to its solver; on every instance both routes agree
//!   (asserted in the integration tests).
//!
//! Both solvers accept a wall-clock budget, mirroring the paper's
//! 600-second cap in the Fig. 10 running-time experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod enumerate;
pub mod ilp;
pub mod search;

pub use search::{optimal_schedule, optimal_schedule_with, OptConfig, OptOutcome};
