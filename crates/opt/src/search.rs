//! Iterative-deepening branch-and-bound over the schedule space.
//!
//! For a makespan bound `M` the searcher walks time steps `t = 0…M`;
//! at each step it decides which of the remaining switches update at
//! `t` (a subset choice explored one switch at a time). When the step
//! closes, all data-plane events at simulated times `≤ t` are frozen —
//! any remaining update happens at `≥ t + 1` and can only influence
//! departures from `t + 1` on — so a violation at a frozen time
//! soundly prunes the subtree. Visited `(t, remaining-set)` states are
//! memoized. The outer loop raises `M` until a schedule exists; the
//! first hit is optimal, because a schedule with makespan `M` exists
//! in the `M`-bounded space and none exists in the `(M−1)`-bounded
//! one.
// Branch-and-bound frames index per-item slots minted from the
// instance's own update items.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use chronus_core::greedy::greedy_schedule;
use chronus_core::{MutpProblem, ScheduleError};
use chronus_net::{SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::{
    Delta, FluidSimulator, IncrementalSimulator, Schedule, SimulationReport, SimulatorConfig,
    Verdict,
};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Configuration for [`optimal_schedule_with`].
#[derive(Clone, Copy, Debug)]
pub struct OptConfig {
    /// Wall-clock budget (the paper caps OPT at 600 s in Fig. 10).
    pub budget: Duration,
    /// Hard cap on the makespan explored; defaults to the greedy
    /// makespan (OPT can never need more) or the instance's search
    /// horizon when the greedy fails.
    pub max_makespan: Option<TimeStep>,
    /// Answer the per-node consistency and frozen-prefix checks from a
    /// persistent [`IncrementalSimulator`] updated in O(Δ) alongside
    /// the branch walk (default true) instead of re-simulating the
    /// whole schedule at every node. Identical verdicts either way.
    pub incremental_gate: bool,
    /// Post-hoc certification of the winning schedule by the
    /// independent static certifier (`chronus-verify`); enabled by
    /// default, disable for hot benchmark loops.
    pub verify: chronus_verify::VerifyConfig,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            budget: Duration::from_secs(600),
            max_makespan: None,
            incremental_gate: true,
            verify: chronus_verify::VerifyConfig::default(),
        }
    }
}

/// Result of a successful exact solve.
#[derive(Clone, Debug)]
pub struct OptOutcome {
    /// An optimal (minimum-makespan) consistent schedule.
    pub schedule: Schedule,
    /// Its makespan; `|T| = makespan + 1` in the paper's objective.
    pub makespan: TimeStep,
    /// Simulator invocations spent.
    pub simulator_calls: usize,
    /// Search states expanded.
    pub states: usize,
    /// The independent certifier's proof of consistency, when
    /// certification was enabled (see [`OptConfig::verify`]).
    pub certificate: Option<chronus_verify::Certificate>,
}

/// Runs the independent certifier over the winning schedule per the
/// config, surfacing a rejection as
/// [`ScheduleError::CertificationFailed`].
fn certify_outcome(
    instance: &UpdateInstance,
    schedule: &Schedule,
    cfg: &chronus_verify::VerifyConfig,
) -> Result<Option<chronus_verify::Certificate>, ScheduleError> {
    if !cfg.enabled {
        return Ok(None);
    }
    match chronus_verify::certify_with(instance, schedule, cfg) {
        Ok(cert) => Ok(Some(cert)),
        Err(violation) => Err(ScheduleError::CertificationFailed {
            violation: Box::new(violation),
        }),
    }
}

/// Solves MUTP exactly with the default 600 s budget.
///
/// # Errors
/// [`ScheduleError::Infeasible`] when no consistent schedule exists,
/// [`ScheduleError::TimedOut`] when the budget runs out first.
pub fn optimal_schedule(instance: &UpdateInstance) -> Result<OptOutcome, ScheduleError> {
    optimal_schedule_with(instance, OptConfig::default())
}

/// Solves MUTP exactly with an explicit configuration.
///
/// # Errors
/// See [`optimal_schedule`].
pub fn optimal_schedule_with(
    instance: &UpdateInstance,
    cfg: OptConfig,
) -> Result<OptOutcome, ScheduleError> {
    let _span = chronus_trace::span!("opt.search", flows = instance.flows.len()).entered();
    let problem = MutpProblem::new(instance)?;
    // chronus-lint: allow(det-wallclock) — search budget deadline; affects only whether an answer is produced, never which
    let deadline = Instant::now() + cfg.budget;

    // Upper bound from the greedy (OPT ≤ greedy); fall back to the
    // sound search horizon when the greedy cannot find a witness.
    let greedy = greedy_schedule(instance).ok();
    let ub = cfg.max_makespan.unwrap_or_else(|| {
        greedy
            .as_ref()
            .map(|g| g.makespan)
            .unwrap_or_else(|| problem.search_horizon())
    });

    let mut base = Schedule::new();
    let mut items: Vec<(usize, SwitchId)> = Vec::new();
    for (fi, flow) in instance.flows.iter().enumerate() {
        // Fresh switches update at step 0 without loss of optimality:
        // no flow reaches them before some diverger updates, and
        // step 0 can only lower the makespan.
        let fresh = problem.fresh_switches(fi);
        for &v in &fresh {
            base.set(flow.id, v, 0);
        }
        for &v in problem.pending(fi) {
            if !fresh.contains(&v) {
                items.push((fi, v));
            }
        }
    }
    if items.len() > 63 {
        return Err(ScheduleError::Infeasible {
            blocked: None,
            reason: format!(
                "exact search supports at most 63 coupled updates, got {}",
                items.len()
            ),
        });
    }

    let sim_cfg = SimulatorConfig {
        record_loads: false,
        ..SimulatorConfig::default()
    };
    let sim = FluidSimulator::with_config(instance, sim_cfg);
    let drain = problem.drain_bound();
    let mut stats = Stats::default();

    if items.is_empty() {
        // Only fresh activations (or nothing at all).
        stats.sims += 1;
        if sim.run(&base).verdict() == Verdict::Consistent {
            let makespan = base.makespan().unwrap_or(0);
            let certificate = certify_outcome(instance, &base, &cfg.verify)?;
            return Ok(OptOutcome {
                schedule: base,
                makespan,
                simulator_calls: stats.sims,
                states: stats.states,
                certificate,
            });
        }
        return Err(ScheduleError::Infeasible {
            blocked: None,
            reason: "fresh-switch activation alone is inconsistent".into(),
        });
    }

    // One incremental simulator for the whole deepening loop: every
    // exhausted search tree unwinds its deltas completely, so the
    // state is back at `base` when the next bound starts.
    let mut inc_state = if cfg.incremental_gate {
        let mut inc = IncrementalSimulator::new(instance);
        for (flow, v, t) in base.iter() {
            let _ = inc.apply(flow, v, t); // base is permanent: deltas dropped
        }
        Some(inc)
    } else {
        None
    };

    for m in 0..=ub {
        // chronus-lint: allow(det-wallclock) — budget deadline check, see `deadline`
        if Instant::now() > deadline {
            return Err(ScheduleError::TimedOut {
                budget_ms: cfg.budget.as_millis() as u64,
            });
        }
        let mut searcher = Searcher {
            instance,
            sim: &sim,
            inc: inc_state.as_mut(),
            items: &items,
            makespan: m,
            drain,
            deadline,
            // chronus-lint: allow(det-hash) — insert/contains-only visited-state memo; never iterated
            memo: HashSet::new(),
            stats: &mut stats,
            assigned: vec![None; items.len()],
            deltas: Vec::new(),
        };
        let full = (1u64 << items.len()) - 1;
        let mut schedule = base.clone();
        match searcher.step(0, full, &mut schedule) {
            Outcome::Found => {
                let makespan = schedule.makespan().unwrap_or(0);
                let certificate = certify_outcome(instance, &schedule, &cfg.verify)?;
                return Ok(OptOutcome {
                    schedule,
                    makespan,
                    simulator_calls: stats.sims,
                    states: stats.states,
                    certificate,
                });
            }
            Outcome::Exhausted => continue,
            Outcome::TimedOut => {
                return Err(ScheduleError::TimedOut {
                    budget_ms: cfg.budget.as_millis() as u64,
                })
            }
        }
    }

    match greedy {
        // The greedy found a schedule but the deepening loop was capped
        // below its makespan by config: report the greedy's as optimal
        // within the explored bound is *wrong*, so surface infeasible
        // within the bound instead.
        Some(_) if cfg.max_makespan.is_some() => Err(ScheduleError::Infeasible {
            blocked: None,
            reason: format!("no schedule with makespan <= {ub}"),
        }),
        _ => Err(ScheduleError::Infeasible {
            blocked: None,
            reason: "exhausted the full schedule space".into(),
        }),
    }
}

#[derive(Default)]
struct Stats {
    sims: usize,
    states: usize,
}

enum Outcome {
    Found,
    Exhausted,
    TimedOut,
}

/// Memo key: (next step, remaining-switch bitset, time-shifted recent
/// assignments) — see [`Searcher::memo_key`].
type MemoKey = (TimeStep, u64, Vec<(usize, TimeStep)>);

struct Searcher<'a> {
    instance: &'a UpdateInstance,
    sim: &'a FluidSimulator<'a>,
    /// When set, answers consistency/frozen-prefix queries in O(Δ).
    inc: Option<&'a mut IncrementalSimulator>,
    items: &'a [(usize, SwitchId)],
    makespan: TimeStep,
    drain: TimeStep,
    deadline: Instant,
    // chronus-lint: allow(det-hash) — insert/contains-only visited-state memo; never iterated
    memo: HashSet<MemoKey>,
    stats: &'a mut Stats,
    /// Current assignment per item index — the search's own mirror of
    /// the schedule, kept so `memo_key` reads it in one pre-sorted
    /// pass instead of per-item `BTreeMap` lookups.
    assigned: Vec<Option<TimeStep>>,
    /// LIFO stack of incremental deltas, one per live assignment.
    deltas: Vec<Delta>,
}

impl<'a> Searcher<'a> {
    /// Records `items[i] @ t` in the schedule, the assignment mirror
    /// and (when enabled) the incremental simulator.
    fn assign(&mut self, i: usize, t: TimeStep, schedule: &mut Schedule) {
        let (fi, v) = self.items[i];
        let flow_id = self.instance.flows[fi].id;
        schedule.set(flow_id, v, t);
        self.assigned[i] = Some(t);
        if let Some(inc) = self.inc.as_deref_mut() {
            self.deltas.push(inc.apply(flow_id, v, t));
        }
    }

    /// Reverts the most recent [`Searcher::assign`] of `items[i]`.
    fn retract(&mut self, i: usize, schedule: &mut Schedule) {
        let (fi, v) = self.items[i];
        let flow_id = self.instance.flows[fi].id;
        schedule.unset(flow_id, v);
        self.assigned[i] = None;
        if let Some(inc) = self.inc.as_deref_mut() {
            inc.undo(self.deltas.pop().expect("assign/retract imbalance"));
        }
    }

    /// Memo key for the state reached after closing step `t − 1`:
    /// besides `(t, remaining)`, only the assignments within the last
    /// drain period still influence the future — all events up to the
    /// current step are already certified clean, older updates have
    /// fully drained, and which rules are new is captured by
    /// `remaining`. Two states agreeing on this key have identical
    /// futures, so memoizing their exhaustion is sound.
    fn memo_key(&self, t: TimeStep, remaining: u64) -> MemoKey {
        let window_start = t - self.drain;
        // `assigned` is indexed by item, so the pairs come out already
        // sorted by `i` (each `i` appears at most once).
        let recent: Vec<(usize, TimeStep)> = self
            .assigned
            .iter()
            .enumerate()
            .filter_map(|(i, tv)| {
                tv.filter(|&tv| tv > window_start).map(|tv| (i, tv - t)) // time-shift-invariant offset
            })
            .collect();
        // Absolute `t` stays in the key: the remaining makespan budget
        // `M − t` is part of the state even when the data plane looks
        // identical.
        (t, remaining, recent)
    }

    /// Full-schedule consistency of the current node.
    fn node_consistent(&mut self, schedule: &Schedule) -> bool {
        self.stats.sims += 1;
        match self.inc.as_deref() {
            Some(inc) => inc.verdict() == Verdict::Consistent,
            None => self.sim.run(schedule).verdict() == Verdict::Consistent,
        }
    }

    /// Frozen-prefix violation test at the close of step `t`.
    fn node_frozen_violation(&mut self, t: TimeStep, schedule: &Schedule) -> bool {
        self.stats.sims += 1;
        match self.inc.as_deref() {
            Some(inc) => inc.has_violation_at_or_before(t),
            None => has_frozen_violation(&self.sim.run(schedule), t),
        }
    }

    /// Decides the update set of step `t` and recurses to `t + 1`.
    fn step(&mut self, t: TimeStep, remaining: u64, schedule: &mut Schedule) -> Outcome {
        if remaining == 0 {
            return if self.node_consistent(schedule) {
                Outcome::Found
            } else {
                Outcome::Exhausted
            };
        }
        if t > self.makespan {
            return Outcome::Exhausted;
        }
        let key = self.memo_key(t, remaining);
        if !self.memo.insert(key) {
            return Outcome::Exhausted;
        }
        // chronus-lint: allow(det-wallclock) — budget deadline check, see `deadline`
        if Instant::now() > self.deadline {
            return Outcome::TimedOut;
        }
        self.stats.states += 1;
        self.choose(t, remaining, 0, remaining, schedule)
    }

    /// Enumerates subsets of `remaining` to update at step `t`, one
    /// switch decision at a time (bits below `cursor_mask`'s lowest
    /// set bit are already decided).
    fn choose(
        &mut self,
        t: TimeStep,
        remaining: u64,
        chosen: u64,
        undecided: u64,
        schedule: &mut Schedule,
    ) -> Outcome {
        if undecided == 0 {
            // Step t closed: events at times ≤ t are frozen; prune on
            // any frozen violation.
            if self.node_frozen_violation(t, schedule) {
                return Outcome::Exhausted;
            }
            return self.step(t + 1, remaining & !chosen, schedule);
        }
        let i = undecided.trailing_zeros() as usize;
        let bit = 1u64 << i;
        let rest = undecided & !bit;

        // Branch 1: update item i at step t.
        self.assign(i, t, schedule);
        match self.choose(t, remaining, chosen | bit, rest, schedule) {
            Outcome::Exhausted => {}
            other => return other,
        }
        self.retract(i, schedule);

        // Branch 2: defer item i past step t — only possible if steps
        // remain.
        if t < self.makespan {
            match self.choose(t, remaining, chosen, rest, schedule) {
                Outcome::Exhausted => Outcome::Exhausted,
                other => other,
            }
        } else {
            Outcome::Exhausted
        }
    }
}

/// A violation whose event time is `≤ t` cannot be repaired by updates
/// at steps `> t` (updates only change departures at or after their
/// own step).
fn has_frozen_violation(report: &SimulationReport, t: TimeStep) -> bool {
    report.congestion.iter().any(|c| c.time <= t)
        || report.loops.iter().any(|l| l.time <= t)
        || report.blackholes.iter().any(|b| b.time <= t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{motivating_example, Flow, FlowId, NetworkBuilder, Path};

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    #[test]
    fn optimal_on_motivating_example() {
        let inst = motivating_example();
        let opt = optimal_schedule(&inst).expect("feasible");
        let report = FluidSimulator::check(&inst, &opt.schedule);
        assert_eq!(report.verdict(), Verdict::Consistent, "{report}");
        // Hand-verified: v2@0, v3@1, v1@2, v4@2 is consistent, so the
        // optimum is at most 2; and no all-at-zero or makespan-1
        // schedule is consistent, which the solver confirms.
        assert_eq!(opt.makespan, 2);
        // Never worse than the greedy.
        let greedy = greedy_schedule(&inst).unwrap();
        assert!(opt.makespan <= greedy.makespan);
    }

    #[test]
    fn optimal_single_switch_cases() {
        // Slow shortcut: a single update at step 0 works — OPT = 0.
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 3).unwrap();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(b.build(), flow).unwrap();
        let opt = optimal_schedule(&inst).unwrap();
        assert_eq!(opt.makespan, 0);
    }

    #[test]
    fn infeasible_instances_are_detected() {
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 1).unwrap();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(b.build(), flow).unwrap();
        let err = optimal_schedule(&inst).unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }), "{err}");
    }

    #[test]
    fn budget_exhaustion_times_out() {
        let inst = motivating_example();
        let cfg = OptConfig {
            budget: Duration::from_nanos(1),
            ..Default::default()
        };
        let err = optimal_schedule_with(&inst, cfg).unwrap_err();
        assert!(matches!(err, ScheduleError::TimedOut { .. }));
    }

    #[test]
    fn makespan_cap_below_optimum_is_infeasible() {
        let inst = motivating_example();
        let cfg = OptConfig {
            budget: Duration::from_secs(60),
            max_makespan: Some(1), // optimum is 2
            ..Default::default()
        };
        let err = optimal_schedule_with(&inst, cfg).unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }), "{err}");
    }

    #[test]
    fn noop_instance_optimal_immediately() {
        let mut b = NetworkBuilder::with_switches(3);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        let p = Path::new(vec![sid(0), sid(1), sid(2)]);
        let flow = Flow::new(FlowId(0), 1, p.clone(), p).unwrap();
        let inst = UpdateInstance::single(b.build(), flow).unwrap();
        let opt = optimal_schedule(&inst).unwrap();
        assert_eq!(opt.makespan, 0);
        assert!(opt.schedule.is_empty());
    }

    #[test]
    fn opt_never_exceeds_greedy_on_random_instances() {
        use chronus_net::{InstanceGenerator, InstanceGeneratorConfig};
        let mut gen = InstanceGenerator::new(InstanceGeneratorConfig::paper(10, 99));
        let mut solved = 0;
        for _ in 0..8 {
            let Some(inst) = gen.generate() else { continue };
            let greedy = greedy_schedule(&inst);
            let opt = optimal_schedule_with(
                &inst,
                OptConfig {
                    budget: Duration::from_secs(10),
                    ..Default::default()
                },
            );
            match (greedy, opt) {
                (Ok(g), Ok(o)) => {
                    solved += 1;
                    assert!(o.makespan <= g.makespan, "OPT above greedy");
                    let report = FluidSimulator::check(&inst, &o.schedule);
                    assert_eq!(report.verdict(), Verdict::Consistent);
                }
                (Err(_), Ok(o)) => {
                    // OPT may succeed where the myopic greedy fails.
                    let report = FluidSimulator::check(&inst, &o.schedule);
                    assert_eq!(report.verdict(), Verdict::Consistent);
                }
                (Ok(g), Err(ScheduleError::TimedOut { .. })) => {
                    // Accept: the greedy witness still certifies feasibility.
                    let _ = g;
                }
                (Ok(_), Err(e)) => panic!("OPT infeasible but greedy succeeded: {e}"),
                (Err(_), Err(_)) => {}
            }
        }
        assert!(solved > 0, "at least one instance must be solved exactly");
    }
}
