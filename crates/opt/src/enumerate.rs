//! Brute-force enumeration of schedules — the oracle the exact
//! solvers and the property tests are validated against, and the
//! source of the path set `P(f)` for the ILP of program (3).
// Enumeration indexes per-item assignment vectors it sized itself.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use chronus_core::MutpProblem;
use chronus_net::{SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::{FluidSimulator, Schedule, SimulatorConfig, Verdict};

/// Result of an enumeration run.
#[derive(Clone, Debug)]
pub struct Enumeration {
    /// All discovered consistent schedules (up to the cap), sorted by
    /// makespan.
    pub schedules: Vec<Schedule>,
    /// Total assignments examined.
    pub examined: usize,
    /// `true` if the space was fully explored (no cap hit): only then
    /// is "no schedule found" a proof of infeasibility and the first
    /// schedule a true optimum.
    pub exhaustive: bool,
}

impl Enumeration {
    /// The minimum makespan among discovered schedules.
    pub fn optimal_makespan(&self) -> Option<TimeStep> {
        self.schedules
            .iter()
            .map(|s| s.makespan().unwrap_or(0))
            .min()
    }
}

/// Enumerates every assignment of update times in `[0, max_makespan]`
/// to the pending switches (fresh switches pinned to step 0) and keeps
/// the consistent ones, up to `max_examined` assignments.
///
/// Exponential — intended for instances with at most a dozen pending
/// switches, as an oracle.
pub fn enumerate_consistent_schedules(
    instance: &UpdateInstance,
    max_makespan: TimeStep,
    max_examined: usize,
) -> Enumeration {
    let Ok(problem) = MutpProblem::new(instance) else {
        return Enumeration {
            schedules: Vec::new(),
            examined: 0,
            exhaustive: true,
        };
    };
    let mut base = Schedule::new();
    let mut items: Vec<(usize, SwitchId)> = Vec::new();
    for (fi, flow) in instance.flows.iter().enumerate() {
        let fresh = problem.fresh_switches(fi);
        for &v in &fresh {
            base.set(flow.id, v, 0);
        }
        for &v in problem.pending(fi) {
            if !fresh.contains(&v) {
                items.push((fi, v));
            }
        }
    }

    let sim = FluidSimulator::with_config(
        instance,
        SimulatorConfig {
            record_loads: false,
            ..SimulatorConfig::default()
        },
    );

    let k = items.len();
    let radix = (max_makespan + 1) as usize;
    let total = radix.checked_pow(k as u32);
    let mut schedules = Vec::new();
    let mut examined = 0usize;
    let mut exhaustive = true;

    // Odometer over assignments.
    let mut digits = vec![0usize; k];
    loop {
        if examined >= max_examined {
            exhaustive = false;
            break;
        }
        examined += 1;
        let mut s = base.clone();
        for (i, &(fi, v)) in items.iter().enumerate() {
            s.set(instance.flows[fi].id, v, digits[i] as TimeStep);
        }
        if sim.run(&s).verdict() == Verdict::Consistent {
            schedules.push(s);
        }
        // Increment odometer.
        let mut pos = 0;
        loop {
            if pos == k {
                break;
            }
            digits[pos] += 1;
            if digits[pos] < radix {
                break;
            }
            digits[pos] = 0;
            pos += 1;
        }
        if pos == k {
            break;
        }
        if let Some(total) = total {
            if examined >= total {
                break;
            }
        }
    }

    schedules.sort_by_key(|s| s.makespan().unwrap_or(0));
    Enumeration {
        schedules,
        examined,
        exhaustive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{motivating_example, Flow, FlowId, NetworkBuilder, Path};

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    #[test]
    fn motivating_example_brute_force_confirms_optimum() {
        let inst = motivating_example();
        let e = enumerate_consistent_schedules(&inst, 3, 1_000_000);
        assert!(e.exhaustive);
        assert!(!e.schedules.is_empty());
        // Cross-check with the exact solver.
        assert_eq!(e.optimal_makespan(), Some(2));
        for s in &e.schedules {
            assert_eq!(
                FluidSimulator::check(&inst, s).verdict(),
                Verdict::Consistent
            );
        }
    }

    #[test]
    fn fast_shortcut_has_no_schedule_at_all() {
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 1).unwrap();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(b.build(), flow).unwrap();
        let e = enumerate_consistent_schedules(&inst, 6, 1_000_000);
        assert!(e.exhaustive);
        assert!(e.schedules.is_empty());
    }

    #[test]
    fn cap_marks_non_exhaustive() {
        let inst = motivating_example();
        let e = enumerate_consistent_schedules(&inst, 3, 5);
        assert!(!e.exhaustive);
        assert_eq!(e.examined, 5);
    }
}
