//! Program (3) as an explicit integer linear program.
//!
//! The paper formulates MUTP over the time-extended network: for every
//! flow `f`, a pre-computed set `P(f)` of loop-free paths (each path
//! corresponds to one choice of update times, i.e. one cohort-routing
//! through `G_T`); binary variables `x_{f,p}` select exactly one path
//! per flow (3b, 3c); and for every time-extended link the selected
//! paths' combined load must respect its capacity (3a). The objective
//! minimizes `|T|`, the number of time steps used.
//!
//! This module materializes that program ([`build_mutp_ilp`]), renders
//! it in LP-file syntax ([`IlpModel::to_lp_string`]), and solves it
//! with a small exact branch-and-bound over the binary variables
//! ([`solve_binary`]) — the same method the paper reports using.
//! [`ilp_optimal`] wraps everything into an OPT solver that agrees
//! with [`crate::search::optimal_schedule`] (asserted in tests).
// The LP tableau is dense and indexed by row/column ids the builder
// minted; `expect` unwraps basis invariants the pivot maintains.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use crate::enumerate::enumerate_consistent_schedules;
use chronus_core::ScheduleError;
use chronus_net::{TimeStep, UpdateInstance};
use chronus_timenet::{FluidSimulator, Schedule, SimulatorConfig};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Constraint comparison operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cmp {
    /// `Σ coeff·x ≤ rhs`
    Le,
    /// `Σ coeff·x = rhs`
    Eq,
}

/// One linear constraint over binary variables.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; coefficients are
    /// non-negative in every constraint this crate generates.
    pub terms: Vec<(usize, i64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: i64,
    /// Human-readable tag (e.g. the time-extended link it guards).
    pub label: String,
}

/// A 0/1 integer linear program.
#[derive(Clone, Debug, Default)]
pub struct IlpModel {
    /// Variable names, e.g. `x_f0_p3`.
    pub variables: Vec<String>,
    /// Objective coefficients, parallel to `variables` (minimized).
    pub objective: Vec<i64>,
    /// The constraints.
    pub constraints: Vec<Constraint>,
}

impl IlpModel {
    /// Renders the program in LP-file syntax (CPLEX LP format), the
    /// lingua franca of the solvers the paper's toolchain used.
    pub fn to_lp_string(&self) -> String {
        let mut s = String::new();
        s.push_str("Minimize\n obj:");
        for (i, c) in self.objective.iter().enumerate() {
            if *c != 0 {
                let _ = write!(s, " + {} {}", c, self.variables[i]);
            }
        }
        s.push_str("\nSubject To\n");
        for (ci, c) in self.constraints.iter().enumerate() {
            let _ = write!(s, " c{ci}:");
            for (vi, coeff) in &c.terms {
                let _ = write!(s, " + {} {}", coeff, self.variables[*vi]);
            }
            let op = match c.cmp {
                Cmp::Le => "<=",
                Cmp::Eq => "=",
            };
            let _ = writeln!(s, " {op} {} \\ {}", c.rhs, c.label);
        }
        s.push_str("Binary\n");
        for v in &self.variables {
            let _ = writeln!(s, " {v}");
        }
        s.push_str("End\n");
        s
    }

    /// Evaluates whether an assignment satisfies every constraint.
    pub fn is_feasible(&self, assignment: &[bool]) -> bool {
        self.constraints.iter().all(|c| {
            let lhs: i64 = c
                .terms
                .iter()
                .map(|&(vi, co)| if assignment[vi] { co } else { 0 })
                .sum();
            match c.cmp {
                Cmp::Le => lhs <= c.rhs,
                Cmp::Eq => lhs == c.rhs,
            }
        })
    }

    /// Objective value of an assignment.
    pub fn objective_value(&self, assignment: &[bool]) -> i64 {
        self.objective
            .iter()
            .enumerate()
            .map(|(i, &c)| if assignment[i] { c } else { 0 })
            .sum()
    }
}

/// Exact branch-and-bound minimization over the binary variables.
///
/// Branches variables in order, propagating two prunes: a `≤`
/// constraint whose committed left-hand side already exceeds its
/// right-hand side, and an `=` constraint that can no longer reach its
/// right-hand side with the undecided variables. Returns the optimal
/// assignment, or `None` if the program is infeasible or the budget
/// expired (`budget_exceeded` distinguishes the two).
pub fn solve_binary(model: &IlpModel, budget: Duration) -> SolveResult {
    let n = model.variables.len();
    // chronus-lint: allow(det-wallclock) — solver budget deadline; affects only whether an answer is produced, never which
    let deadline = Instant::now() + budget;
    let mut best: Option<(i64, Vec<bool>)> = None;
    let mut assignment = vec![false; n];
    let mut timed_out = false;

    // Max remaining contribution per Eq constraint is recomputed
    // cheaply from suffix sums of positive coefficients.
    fn dfs(
        model: &IlpModel,
        i: usize,
        assignment: &mut Vec<bool>,
        best: &mut Option<(i64, Vec<bool>)>,
        deadline: Instant,
        timed_out: &mut bool,
    ) {
        // chronus-lint: allow(det-wallclock) — budget deadline check, see `deadline`
        if *timed_out || Instant::now() > deadline {
            *timed_out = true;
            return;
        }
        // Prune against constraints.
        for c in &model.constraints {
            let mut committed = 0i64;
            let mut potential = 0i64;
            for &(vi, co) in &c.terms {
                if vi < i {
                    if assignment[vi] {
                        committed += co;
                    }
                } else {
                    potential += co.max(0);
                }
            }
            match c.cmp {
                Cmp::Le => {
                    if committed > c.rhs {
                        return;
                    }
                }
                Cmp::Eq => {
                    if committed > c.rhs || committed + potential < c.rhs {
                        return;
                    }
                }
            }
        }
        // Bound against the incumbent (objective coefficients are
        // non-negative in our models).
        let committed_obj: i64 = (0..i)
            .map(|vi| {
                if assignment[vi] {
                    model.objective[vi]
                } else {
                    0
                }
            })
            .sum();
        if let Some((incumbent, _)) = best {
            if committed_obj >= *incumbent {
                return;
            }
        }
        if i == model.variables.len() {
            if model.is_feasible(assignment) {
                let val = model.objective_value(assignment);
                let better = best.as_ref().is_none_or(|(b, _)| val < *b);
                if better {
                    *best = Some((val, assignment.clone()));
                }
            }
            return;
        }
        for value in [true, false] {
            assignment[i] = value;
            dfs(model, i + 1, assignment, best, deadline, timed_out);
        }
        assignment[i] = false;
    }

    dfs(
        model,
        0,
        &mut assignment,
        &mut best,
        deadline,
        &mut timed_out,
    );
    SolveResult {
        best: best.map(|(value, assignment)| Solution { value, assignment }),
        budget_exceeded: timed_out,
    }
}

/// An optimal assignment.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Objective value.
    pub value: i64,
    /// Variable assignment, parallel to [`IlpModel::variables`].
    pub assignment: Vec<bool>,
}

/// Outcome of [`solve_binary`].
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// The best solution found (proved optimal iff the budget held).
    pub best: Option<Solution>,
    /// `true` if the search was cut short.
    pub budget_exceeded: bool,
}

/// Materializes program (3) for `instance`: enumerates the path set
/// `P(f)` (consistent single-flow schedules with makespan
/// `≤ max_makespan`, each inducing one loop-free path through `G_T`),
/// then emits variables `x_{f,p}`, the pick-one constraints (3b) and
/// the time-extended capacity constraints (3a).
///
/// Returns the model plus, for each variable, the schedule it encodes.
/// `max_paths_per_flow` caps the enumeration; the boolean says whether
/// the enumeration was exhaustive (only then is the ILP's answer a
/// certificate).
pub fn build_mutp_ilp(
    instance: &UpdateInstance,
    max_makespan: TimeStep,
    max_paths_per_flow: usize,
) -> (IlpModel, Vec<Schedule>, bool) {
    let mut model = IlpModel::default();
    let mut var_schedules: Vec<Schedule> = Vec::new();
    let mut exhaustive = true;
    let mut flow_var_ranges: Vec<(usize, usize)> = Vec::new();

    // P(f): enumerate per single-flow sub-instance so that (3a) below
    // can combine loads across flows.
    for flow in &instance.flows {
        let single = UpdateInstance::single(instance.network.clone(), flow.clone())
            .expect("flows were validated by the caller");
        let e = enumerate_consistent_schedules(
            &single,
            max_makespan,
            max_paths_per_flow.saturating_mul(64),
        );
        exhaustive &= e.exhaustive;
        let start = model.variables.len();
        for (pi, s) in e.schedules.into_iter().take(max_paths_per_flow).enumerate() {
            let name = format!("x_{}_p{}", flow.id, pi);
            model.variables.push(name);
            // Objective: |T| of this path = makespan + 1.
            model.objective.push(s.makespan().unwrap_or(0) + 1);
            var_schedules.push(s);
        }
        let end = model.variables.len();
        if start == end {
            // No admissible path for this flow: emit an unsatisfiable
            // (3b) so the model is manifestly infeasible.
            model.constraints.push(Constraint {
                terms: Vec::new(),
                cmp: Cmp::Eq,
                rhs: 1,
                label: format!("(3b) pick one path for {} — P(f) empty", flow.id),
            });
        }
        flow_var_ranges.push((start, end));
    }

    // (3b): exactly one path per flow.
    for (flow, &(start, end)) in instance.flows.iter().zip(&flow_var_ranges) {
        if start == end {
            continue;
        }
        model.constraints.push(Constraint {
            terms: (start..end).map(|vi| (vi, 1)).collect(),
            cmp: Cmp::Eq,
            rhs: 1,
            label: format!("(3b) pick one path for {}", flow.id),
        });
    }

    // (3a): capacity of every time-extended link. Each variable's load
    // profile comes from simulating its schedule on its own flow.
    // A BTreeMap so the constraint-emission loop below walks keys in
    // sorted order directly — no collect-and-sort pass, and no chance
    // of hash-order nondeterminism reaching the model (det-hash).
    use std::collections::BTreeMap;
    let mut link_terms: BTreeMap<(u32, u32, TimeStep), Vec<(usize, i64)>> = BTreeMap::new();
    for (vi, s) in var_schedules.iter().enumerate() {
        // Which flow does this variable belong to?
        let fi = flow_var_ranges
            .iter()
            .position(|&(a, b)| vi >= a && vi < b)
            .expect("variable belongs to a flow range");
        let single = UpdateInstance::single(instance.network.clone(), instance.flows[fi].clone())
            .expect("validated");
        let report = FluidSimulator::with_config(&single, SimulatorConfig::default()).run(s);
        for (&(u, v), series) in &report.link_loads {
            for (&t, &load) in series {
                if t >= 0 && load > 0 {
                    link_terms
                        .entry((u.0, v.0, t))
                        .or_default()
                        .push((vi, load as i64));
                }
            }
        }
    }
    for ((u, v, t), terms) in link_terms {
        // Single-variable terms within one flow are mutually exclusive
        // anyway; the constraint only bites across flows or when one
        // path self-overlaps (already excluded by P(f) consistency),
        // so emit only constraints that could conceivably bind.
        let cap = instance
            .network
            .capacity(chronus_net::SwitchId(u), chronus_net::SwitchId(v))
            .expect("loads only on real links") as i64;
        if terms.len() > 1 || terms.iter().any(|&(_, l)| l > cap) {
            model.constraints.push(Constraint {
                terms,
                cmp: Cmp::Le,
                rhs: cap,
                label: format!("(3a) capacity of <s{u}(t{t}), s{v}>"),
            });
        }
    }

    (model, var_schedules, exhaustive)
}

/// Solves MUTP through the ILP route: build program (3) with growing
/// makespan bound, solve by branch and bound, return the schedule the
/// optimal assignment selects (merged across flows) together with the
/// independent certifier's proof of its consistency.
///
/// # Errors
/// [`ScheduleError::Infeasible`] / [`ScheduleError::TimedOut`], or
/// [`ScheduleError::CertificationFailed`] if the certifier rejects the
/// ILP's winner (a bug in one of the two).
pub fn ilp_optimal(
    instance: &UpdateInstance,
    max_makespan: TimeStep,
    budget: Duration,
) -> Result<(Schedule, TimeStep, chronus_verify::Certificate), ScheduleError> {
    // chronus-lint: allow(det-wallclock) — solver budget deadline; affects only whether an answer is produced, never which
    let deadline = Instant::now() + budget;
    for m in 0..=max_makespan {
        // chronus-lint: allow(det-wallclock) — budget deadline check, see `deadline`
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(ScheduleError::TimedOut {
                budget_ms: budget.as_millis() as u64,
            });
        }
        let (model, var_schedules, exhaustive) = build_mutp_ilp(instance, m, 4096);
        if !exhaustive {
            return Err(ScheduleError::Infeasible {
                blocked: None,
                reason: "path enumeration truncated; ILP not a certificate".into(),
            });
        }
        let result = solve_binary(&model, remaining);
        if result.budget_exceeded {
            return Err(ScheduleError::TimedOut {
                budget_ms: budget.as_millis() as u64,
            });
        }
        if let Some(sol) = result.best {
            // Merge the selected per-flow schedules.
            let mut merged = Schedule::new();
            for (vi, selected) in sol.assignment.iter().enumerate() {
                if *selected {
                    for (f, v, t) in var_schedules[vi].iter() {
                        merged.set(f, v, t);
                    }
                }
            }
            let makespan = merged.makespan().unwrap_or(0);
            let certificate = match chronus_verify::certify(instance, &merged) {
                Ok(cert) => cert,
                Err(violation) => {
                    return Err(ScheduleError::CertificationFailed {
                        violation: Box::new(violation),
                    })
                }
            };
            return Ok((merged, makespan, certificate));
        }
    }
    Err(ScheduleError::Infeasible {
        blocked: None,
        reason: format!("no schedule with makespan <= {max_makespan}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::optimal_schedule;
    use chronus_net::motivating_example;
    use chronus_timenet::Verdict;

    #[test]
    fn lp_rendering_contains_paper_constraints() {
        let inst = motivating_example();
        let (model, vars, exhaustive) = build_mutp_ilp(&inst, 2, 4096);
        assert!(exhaustive);
        assert!(!vars.is_empty());
        let lp = model.to_lp_string();
        assert!(lp.starts_with("Minimize"));
        assert!(lp.contains("(3b) pick one path"));
        assert!(lp.contains("Binary"));
        assert!(lp.contains("x_f0_p0"));
    }

    #[test]
    fn ilp_agrees_with_search_on_motivating_example() {
        let inst = motivating_example();
        let search = optimal_schedule(&inst).unwrap();
        let (schedule, makespan, certificate) =
            ilp_optimal(&inst, 4, Duration::from_secs(60)).unwrap();
        assert_eq!(makespan, search.makespan);
        let report = FluidSimulator::check(&inst, &schedule);
        assert_eq!(report.verdict(), Verdict::Consistent, "{report}");
        assert_eq!(certificate.check(&inst), Ok(()));
    }

    #[test]
    fn infeasible_instance_yields_infeasible_ilp() {
        use chronus_net::{Flow, FlowId, NetworkBuilder, Path, SwitchId};
        let sid = SwitchId;
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 1).unwrap();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(b.build(), flow).unwrap();
        let err = ilp_optimal(&inst, 4, Duration::from_secs(30)).unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }), "{err}");
    }

    #[test]
    fn solver_handles_simple_programs() {
        // min x0 + 2 x1  s.t.  x0 + x1 = 1  →  pick x0.
        let model = IlpModel {
            variables: vec!["x0".into(), "x1".into()],
            objective: vec![1, 2],
            constraints: vec![Constraint {
                terms: vec![(0, 1), (1, 1)],
                cmp: Cmp::Eq,
                rhs: 1,
                label: "pick one".into(),
            }],
        };
        let r = solve_binary(&model, Duration::from_secs(5));
        let sol = r.best.unwrap();
        assert_eq!(sol.value, 1);
        assert_eq!(sol.assignment, vec![true, false]);
        assert!(!r.budget_exceeded);
    }

    #[test]
    fn solver_detects_infeasible_programs() {
        // x0 ≤ 0 with x0 + ... = 1 and only x0 available.
        let model = IlpModel {
            variables: vec!["x0".into()],
            objective: vec![1],
            constraints: vec![
                Constraint {
                    terms: vec![(0, 1)],
                    cmp: Cmp::Eq,
                    rhs: 1,
                    label: "must pick".into(),
                },
                Constraint {
                    terms: vec![(0, 1)],
                    cmp: Cmp::Le,
                    rhs: 0,
                    label: "cannot pick".into(),
                },
            ],
        };
        let r = solve_binary(&model, Duration::from_secs(5));
        assert!(r.best.is_none());
        assert!(!r.budget_exceeded);
    }
}
