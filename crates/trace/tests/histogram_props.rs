//! Bucketing audit for `trace::metrics::Histogram`.
//!
//! The daemon's SLO quantiles are read off these log₂ buckets, so an
//! off-by-one at a bucket edge silently skews every burn-rate number.
//! These tests pin the edge behaviour exactly — powers of two, zero,
//! `u64::MAX` — and the coherence invariants (cumulative bucket
//! monotonicity, `+Inf == count`, `sum`/`count` exactness, `absorb`
//! correctness against snapshots taken mid-recording).

use chronus_trace::{MetricValue, MetricsRegistry, MetricsSnapshot};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which bucket a single observation of `v` lands in, observed from
/// the outside via a fresh registry snapshot.
fn bucket_of(v: u64) -> usize {
    let reg = MetricsRegistry::new();
    reg.histogram("chronus_test_probe_ns").record(v);
    match reg.snapshot().metrics.get("chronus_test_probe_ns") {
        Some(MetricValue::Histogram { buckets, .. }) => {
            let hits: Vec<usize> = buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(hits.len(), 1, "one observation must hit exactly one bucket");
            hits[0]
        }
        other => panic!("expected histogram, got {other:?}"),
    }
}

/// The inclusive upper bound Prometheus advertises for bucket `i`
/// (`le` label) — mirrors the exporter's layout: bucket 0 is exactly
/// zero, bucket `i` spans `[2^(i-1), 2^i)`.
fn upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[test]
fn edges_zero_powers_of_two_and_max() {
    // Zero has bit length 0: its own bucket.
    assert_eq!(bucket_of(0), 0);
    // 1 = 2^0 opens bucket 1.
    assert_eq!(bucket_of(1), 1);
    // Every exact power of two opens a new bucket; the value one
    // below it closes the previous one.
    for i in 1..63 {
        let p = 1u64 << i;
        assert_eq!(bucket_of(p), i + 1, "2^{i} must open bucket {}", i + 1);
        assert_eq!(bucket_of(p - 1), i, "2^{i}-1 must stay in bucket {i}");
        // The advertised bounds agree with the placement: the value
        // is above its predecessor bucket's bound and at most its own.
        assert!(p > upper_bound(i));
        assert!(p <= upper_bound(i + 1));
    }
    // The top bucket is clamped: bit length 64 (and the saturated
    // index for 2^63) both land in bucket 63, whose bound is MAX.
    assert_eq!(bucket_of(1u64 << 63), 63);
    assert_eq!(bucket_of(u64::MAX), 63);
    assert_eq!(upper_bound(63), u64::MAX);
    assert_eq!(upper_bound(64), u64::MAX);
}

/// Parses the `_bucket{le="…"} n` series for `name` out of a
/// Prometheus exposition, in document order.
fn cumulative_series(prom: &str, name: &str) -> Vec<(String, u64)> {
    let prefix = format!("{name}_bucket{{le=\"");
    prom.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix(&prefix)?;
            let (le, count) = rest.split_once("\"} ")?;
            Some((le.to_owned(), count.parse().ok()?))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single observation is bounded by its bucket's advertised
    /// upper bound and above the previous bucket's.
    fn observation_lands_inside_its_advertised_bounds(shift in 0u32..64, lo in 0u64..1024) {
        let v = if shift == 0 { lo } else { (1u64 << (shift - 1)).saturating_add(lo) };
        let b = bucket_of(v);
        prop_assert!(v <= upper_bound(b));
        if b > 0 {
            prop_assert!(v > upper_bound(b - 1));
        }
    }

    /// count/sum exactness and cumulative monotonicity over random
    /// batches, including edge values.
    fn count_sum_and_monotonicity_are_exact(
        values in prop::collection::vec(0u64..=u64::MAX, 1..200),
    ) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("chronus_test_batch_ns");
        let mut expected_sum = 0u64;
        for &v in &values {
            h.record(v);
            expected_sum = expected_sum.wrapping_add(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        // sum wraps modulo 2^64 by construction (AtomicU64 add).
        prop_assert_eq!(h.sum(), expected_sum);
        let snap = reg.snapshot();
        match snap.metrics.get("chronus_test_batch_ns") {
            Some(MetricValue::Histogram { buckets, count, .. }) => {
                prop_assert_eq!(buckets.iter().sum::<u64>(), *count);
            }
            other => prop_assert!(false, "expected histogram, got {other:?}"),
        }
        let prom = snap.to_prometheus();
        let series = cumulative_series(&prom, "chronus_test_batch_ns");
        prop_assert!(!series.is_empty());
        let mut prev = 0u64;
        for (le, cumulative) in &series {
            prop_assert!(*cumulative >= prev, "cumulative dipped at le={le}");
            prev = *cumulative;
        }
        // The +Inf bucket equals the count, and no finite bucket
        // exceeds it.
        let inf = format!("chronus_test_batch_ns_bucket{{le=\"+Inf\"}} {}", values.len());
        prop_assert!(prom.contains(&inf));
        prop_assert!(prev <= values.len() as u64);
    }

    /// `absorb` faithfully reproduces a snapshot taken while the
    /// source registry is still being hammered: whatever coherent
    /// point-in-time state the snapshot captured, the root receives
    /// exactly that.
    fn absorb_reproduces_mid_recording_snapshots(seed in 0u64..10_000) {
        let scoped = Arc::new(MetricsRegistry::new());
        // Register up front so the mid-flight snapshot always carries
        // the instrument (possibly with zero observations).
        scoped.histogram("chronus_test_hammer_ns");
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|t| {
                let scoped = Arc::clone(&scoped);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let h = scoped.histogram("chronus_test_hammer_ns");
                    let mut v = seed.wrapping_mul(t + 1);
                    while !stop.load(Ordering::Relaxed) {
                        v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        h.record(v >> (v % 64));
                    }
                })
            })
            .collect();
        // Snapshot while the writers are live, then absorb it twice
        // into independent roots: both must match the snapshot bit
        // for bit.
        let snap = scoped.snapshot();
        let root_a = MetricsRegistry::new();
        let root_b = MetricsRegistry::new();
        root_a.absorb(&snap);
        root_b.absorb(&snap);
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().ok();
        }
        let a = root_a.snapshot();
        prop_assert_eq!(&a, &root_b.snapshot());
        match (snap.metrics.get("chronus_test_hammer_ns"), a.metrics.get("chronus_test_hammer_ns")) {
            (
                Some(MetricValue::Histogram { buckets: sb, sum: ss, count: sc, .. }),
                Some(MetricValue::Histogram { buckets: ab, sum: as_, count: ac, .. }),
            ) => {
                prop_assert_eq!(sb, ab);
                prop_assert_eq!(ss, as_);
                prop_assert_eq!(sc, ac);
            }
            other => prop_assert!(false, "expected histograms, got {other:?}"),
        }
    }
}

#[test]
fn exemplars_surface_in_json_but_not_prometheus() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("chronus_test_slo_ns");
    h.record_with_exemplar(900, 4242);
    h.record(5); // plain record leaves no exemplar
    let snap = reg.snapshot();
    match snap.metrics.get("chronus_test_slo_ns") {
        Some(MetricValue::Histogram {
            buckets, exemplars, ..
        }) => {
            assert_eq!(exemplars.len(), buckets.len());
            // 900 has bit length 10 → bucket 10 carries the span id.
            assert_eq!(exemplars.get(10), Some(&4242));
            assert_eq!(exemplars.get(3), Some(&0));
        }
        other => panic!("expected histogram, got {other:?}"),
    }
    let json = snap.to_json();
    assert!(json.contains("\"exemplars\":["));
    assert!(json.contains("4242"));
    // The Prometheus text format stays exemplar-free so the golden
    // line-format checker keeps passing.
    let prom = snap.to_prometheus();
    assert!(!prom.contains("exemplar"));
    assert!(!prom.contains("4242"));

    // Absorb carries non-zero exemplars along.
    let root = MetricsRegistry::new();
    root.absorb(&snap);
    match root.snapshot().metrics.get("chronus_test_slo_ns") {
        Some(MetricValue::Histogram { exemplars, .. }) => {
            assert_eq!(exemplars.get(10), Some(&4242));
        }
        other => panic!("expected histogram, got {other:?}"),
    }
    let _ = MetricsSnapshot::default();
}
