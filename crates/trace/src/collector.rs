//! The global span collector.
//!
//! Spans record themselves here when (and only when) a collector is
//! installed. The uninstalled fast path — the steady state of every
//! production run and benchmark — is a single relaxed atomic load per
//! span site. Installation is process-global and scoped by a guard;
//! the engine's worker threads, the solvers and the emulator all feed
//! the same sink, with per-thread parent linkage.

use crate::fields::FieldValue;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// What a [`SpanRecord`] describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// A duration span with distinct start and stop times.
    Complete,
    /// A zero-duration point event.
    Instant,
}

/// One finished span (or instant event) as the collector stores it.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Enclosing span's id at open time, if any (thread-local stack).
    pub parent: Option<u64>,
    /// Static span name, `"<crate>.<site>"` by convention.
    pub name: &'static str,
    /// `key = value` fields, in recording order.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Monotonic start nanos (see [`crate::now_ns`]).
    pub start_ns: u64,
    /// Monotonic stop nanos (equals `start_ns` for instants).
    pub end_ns: u64,
    /// Dense id of the recording thread (see [`thread_id`]).
    pub thread: u64,
    /// Complete span or instant event.
    pub kind: SpanKind,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// A small dense id for the calling thread, stable for the thread's
/// lifetime — the `tid` of every record it produces.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// Handle to the process-global span sink.
pub struct Collector;

impl Collector {
    /// Installs the collector, clearing any stale records. Recording
    /// stays on until the returned guard is dropped.
    ///
    /// Installation is idempotent but not reference-counted: the first
    /// guard dropped turns recording off, so scope one collector per
    /// process (tests that need one serialize on their own lock).
    #[must_use = "recording stops when the guard is dropped"]
    pub fn install() -> CollectorGuard {
        SINK.lock().unwrap_or_else(PoisonError::into_inner).clear();
        ENABLED.store(true, Ordering::SeqCst);
        CollectorGuard { _priv: () }
    }

    /// `true` while a collector is installed (the span fast-path
    /// probe).
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Takes every record collected so far, leaving the sink empty
    /// (recording continues if a guard is still live).
    pub fn drain() -> Vec<SpanRecord> {
        std::mem::take(&mut SINK.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Number of records currently in the sink.
    pub fn len() -> usize {
        SINK.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Mints a fresh process-unique span id.
    pub(crate) fn next_id() -> u64 {
        NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends a finished record to the sink.
    pub(crate) fn push(record: SpanRecord) {
        if Self::is_enabled() {
            SINK.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(record);
        }
    }

    /// Records a zero-duration instant event parented to the current
    /// span stack top (used by the `instant!` macro). Feeds both the
    /// collector sink (when installed) and the flight-recorder ring
    /// (when on); the ring copy keeps the first two numeric fields.
    pub fn record_instant(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        let sink = Self::is_enabled();
        let ring = crate::ring::ring_on();
        if !sink && !ring {
            return;
        }
        let now = crate::now_ns();
        let id = Self::next_id();
        let parent = crate::span::current_span_id();
        if ring {
            let mut args: Vec<(&'static str, u64)> = Vec::with_capacity(2);
            for (key, value) in &fields {
                if args.len() == 2 {
                    break;
                }
                if let Some(word) = value.as_ring_word() {
                    args.push((key, word));
                }
            }
            crate::ring::record_instant_event(name, id, parent, now, &args);
        }
        if sink {
            Self::push(SpanRecord {
                id,
                parent,
                name,
                fields,
                start_ns: now,
                end_ns: now,
                thread: thread_id(),
                kind: SpanKind::Instant,
            });
        }
    }
}

/// Scope guard returned by [`Collector::install`]; dropping it stops
/// recording (collected records stay drainable).
pub struct CollectorGuard {
    _priv: (),
}

impl Drop for CollectorGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

// The collector is process-global; tests that install it serialize on
// this lock (shared with span.rs's tests).
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_guard_scopes_recording() {
        let _l = super::TEST_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        assert!(!Collector::is_enabled());
        {
            let _g = Collector::install();
            assert!(Collector::is_enabled());
            Collector::record_instant("t.instant", vec![("k", FieldValue::U64(1))]);
            assert_eq!(Collector::len(), 1);
        }
        assert!(!Collector::is_enabled());
        let drained = Collector::drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].name, "t.instant");
        assert_eq!(drained[0].kind, SpanKind::Instant);
        assert_eq!(drained[0].start_ns, drained[0].end_ns);
        assert_eq!(Collector::len(), 0);
    }

    #[test]
    fn thread_ids_are_dense_and_stable() {
        let a = thread_id();
        let b = thread_id();
        assert_eq!(a, b);
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, other);
    }
}
