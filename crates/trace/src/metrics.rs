//! Named metric instruments: lock-free counters, gauges and
//! log-bucketed histograms behind a [`MetricsRegistry`].
//!
//! Registration (name lookup) takes a mutex once; the returned handle
//! is an `Arc` over atomics, so the hot path — `inc`, `add`,
//! `record` — never locks. Names follow `chronus_<crate>_<name>`
//! (Prometheus-safe: `[a-zA-Z_][a-zA-Z0-9_]*`).
//!
//! Registries are values, not ambient state: the engine owns one per
//! instance and the exact gate one per run, so tests that assert
//! exact counts stay deterministic under parallel execution. A
//! process-global registry ([`MetricsRegistry::global`]) exists for
//! whole-process dumps; scoped registries can [`MetricsRegistry::absorb`]
//! into it.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of log2 buckets in every [`Histogram`]: bucket `i` holds
/// values whose bit length is `i` (so bucket 0 is exactly zero and
/// bucket `i` spans `[2^(i-1), 2^i)`), which covers the full `u64`
/// range in 64 buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;

fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound (inclusive) of histogram bucket `i`, used for the
/// Prometheus `le` label.
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Per-bucket span-id exemplars (0 = none): the id of the last
    /// span whose observation landed in the bucket, so a quantile
    /// spike links back to a concrete span in a flight-record dump.
    exemplars: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramInner {
    fn new() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Monotone counter handle (lock-free; clone-cheap).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Gauge handle: a signed level that can move both ways, with a
/// `fetch_max` helper for peak tracking.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `d` (may be negative) and returns the new
    /// value.
    #[inline]
    pub fn add(&self, d: i64) -> i64 {
        self.0.fetch_add(d, Ordering::Relaxed) + d
    }

    /// Raises the level to at least `v` (peak tracking).
    #[inline]
    pub fn max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log2-bucketed histogram handle, sized for nanosecond latencies.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &self.0;
        if let Some(bucket) = inner.buckets.get(bucket_index(v)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation tagged with a span id: the bucket the
    /// value lands in remembers the span as its exemplar
    /// (last-writer-wins), surfaced in JSON snapshots and flight-record
    /// dumps — not in the Prometheus text format.
    #[inline]
    pub fn record_with_exemplar(&self, v: u64, span_id: u64) {
        self.record(v);
        if span_id != 0 {
            if let Some(slot) = self.0.exemplars.get(bucket_index(v)) {
                slot.store(span_id, Ordering::Relaxed);
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (0.0–1.0): the inclusive upper bound
    /// of the first bucket whose cumulative count reaches `q * count`.
    /// Resolution is one log₂ bucket (at most 2× the true value),
    /// which is what `chronusctl top` renders as p50/p90/p99. Returns
    /// 0 with no observations.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }
}

enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramInner>),
}

/// Point-in-time value of one instrument, as captured by
/// [`MetricsRegistry::snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram state: per-bucket counts (truncated after the last
    /// non-empty bucket), sum and count.
    Histogram {
        /// Count per log2 bucket, trailing zero buckets dropped.
        buckets: Vec<u64>,
        /// Span-id exemplar per bucket (0 = none), same length as
        /// `buckets`.
        exemplars: Vec<u64>,
        /// Sum of all observations.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// A consistent-enough copy of a registry's instruments (each value
/// is read atomically; the set is read under the registry lock).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Instrument name → value, sorted by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Counter value by name (`None` when absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram `(sum, count)` by name.
    pub fn histogram(&self, name: &str) -> Option<(u64, u64)> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram { sum, count, .. }) => Some((*sum, *count)),
            _ => None,
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# TYPE` comments, `_bucket{le="…"}`/`_sum`/`_count` series
    /// for histograms).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Histogram {
                    buckets,
                    sum,
                    count,
                    ..
                } => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (i, c) in buckets.iter().enumerate() {
                        cumulative += c;
                        let le = bucket_upper_bound(i);
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                    let _ = writeln!(out, "{name}_sum {sum}");
                    let _ = writeln!(out, "{name}_count {count}");
                }
            }
        }
        out
    }

    /// Encodes the snapshot as a JSON object:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{"buckets":[…],"sum":…,"count":…}}}`.
    pub fn to_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, value) in &self.metrics {
            let key = crate::json::string(name);
            match value {
                MetricValue::Counter(v) => counters.push(format!("{key}:{v}")),
                MetricValue::Gauge(v) => gauges.push(format!("{key}:{v}")),
                MetricValue::Histogram {
                    buckets,
                    exemplars,
                    sum,
                    count,
                } => {
                    let bucket_list = buckets
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                    let exemplar_list = if exemplars.iter().any(|&e| e != 0) {
                        format!(
                            ",\"exemplars\":[{}]",
                            exemplars
                                .iter()
                                .map(u64::to_string)
                                .collect::<Vec<_>>()
                                .join(",")
                        )
                    } else {
                        String::new()
                    };
                    histograms.push(format!(
                        "{key}:{{\"buckets\":[{bucket_list}]{exemplar_list},\"sum\":{sum},\"count\":{count}}}"
                    ));
                }
            }
        }
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }
}

/// A registry of named instruments. See the module docs for the
/// locking story and the scoped-vs-global usage pattern.
pub struct MetricsRegistry {
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry (`const`, so statics work).
    pub const fn new() -> Self {
        MetricsRegistry {
            instruments: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-global registry, for whole-process dumps and
    /// long-lived instruments.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: MetricsRegistry = MetricsRegistry::new();
        &GLOBAL
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Instrument>> {
        self.instruments
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns (registering on first use) the counter named `name`.
    /// If `name` is already a different instrument type, the returned
    /// handle is live but detached from the registry.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.lock();
        let entry = map
            .entry(name.to_owned())
            .or_insert_with(|| Instrument::Counter(Arc::new(AtomicU64::new(0))));
        match entry {
            Instrument::Counter(c) => Counter(Arc::clone(c)),
            _ => Counter(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.lock();
        let entry = map
            .entry(name.to_owned())
            .or_insert_with(|| Instrument::Gauge(Arc::new(AtomicI64::new(0))));
        match entry {
            Instrument::Gauge(g) => Gauge(Arc::clone(g)),
            _ => Gauge(Arc::new(AtomicI64::new(0))),
        }
    }

    /// Returns (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.lock();
        let entry = map
            .entry(name.to_owned())
            .or_insert_with(|| Instrument::Histogram(Arc::new(HistogramInner::new())));
        match entry {
            Instrument::Histogram(h) => Histogram(Arc::clone(h)),
            _ => Histogram(Arc::new(HistogramInner::new())),
        }
    }

    /// Current value of the counter `name`, `None` if absent.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.lock().get(name) {
            Some(Instrument::Counter(c)) => Some(c.load(Ordering::Relaxed)),
            _ => None,
        }
    }

    /// Current value of the gauge `name`, `None` if absent.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        match self.lock().get(name) {
            Some(Instrument::Gauge(g)) => Some(g.load(Ordering::Relaxed)),
            _ => None,
        }
    }

    /// Captures every instrument's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.lock();
        let mut metrics = BTreeMap::new();
        for (name, instrument) in map.iter() {
            let value = match instrument {
                Instrument::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                Instrument::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                Instrument::Histogram(h) => {
                    let mut buckets: Vec<u64> = h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect();
                    while buckets.last() == Some(&0) {
                        buckets.pop();
                    }
                    let exemplars: Vec<u64> = h
                        .exemplars
                        .iter()
                        .take(buckets.len())
                        .map(|e| e.load(Ordering::Relaxed))
                        .collect();
                    MetricValue::Histogram {
                        buckets,
                        exemplars,
                        sum: h.sum.load(Ordering::Relaxed),
                        count: h.count.load(Ordering::Relaxed),
                    }
                }
            };
            metrics.insert(name.clone(), value);
        }
        MetricsSnapshot { metrics }
    }

    /// Folds a scoped registry's snapshot into this one: counters and
    /// histogram contents add, gauges take the maximum (peak
    /// semantics). Used to roll per-engine/per-gate registries up
    /// into the global one.
    pub fn absorb(&self, snapshot: &MetricsSnapshot) {
        for (name, value) in &snapshot.metrics {
            match value {
                MetricValue::Counter(v) => self.counter(name).add(*v),
                MetricValue::Gauge(v) => self.gauge(name).max(*v),
                MetricValue::Histogram {
                    buckets,
                    exemplars,
                    sum,
                    count,
                } => {
                    let h = self.histogram(name);
                    for (i, c) in buckets.iter().enumerate() {
                        if let Some(bucket) = h.0.buckets.get(i) {
                            bucket.fetch_add(*c, Ordering::Relaxed);
                        }
                    }
                    for (i, e) in exemplars.iter().enumerate() {
                        if *e != 0 {
                            if let Some(slot) = h.0.exemplars.get(i) {
                                slot.store(*e, Ordering::Relaxed);
                            }
                        }
                    }
                    h.0.sum.fetch_add(*sum, Ordering::Relaxed);
                    h.0.count.fetch_add(*count, Ordering::Relaxed);
                }
            }
        }
    }

    /// [`MetricsSnapshot::to_prometheus`] over a fresh snapshot.
    pub fn to_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }

    /// [`MetricsSnapshot::to_json`] over a fresh snapshot.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every bucket's values fall at or below its upper bound.
        for i in 1..HISTOGRAM_BUCKETS {
            let lo = 1u64 << (i - 1);
            assert_eq!(bucket_index(lo), i);
            assert!(lo <= bucket_upper_bound(i));
        }
    }

    #[test]
    fn instruments_register_and_read_back() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("chronus_test_ops_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(reg.counter_value("chronus_test_ops_total"), Some(5));
        // Same name → same underlying counter.
        reg.counter("chronus_test_ops_total").inc();
        assert_eq!(c.get(), 6);

        let g = reg.gauge("chronus_test_depth");
        g.set(3);
        assert_eq!(g.add(-1), 2);
        g.max(10);
        g.max(7);
        assert_eq!(reg.gauge_value("chronus_test_depth"), Some(10));

        let h = reg.histogram("chronus_test_latency_ns");
        for v in [0, 1, 3, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1_001_004);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("chronus_test_ops_total"), Some(6));
        assert_eq!(snap.gauge("chronus_test_depth"), Some(10));
        assert_eq!(
            snap.histogram("chronus_test_latency_ns"),
            Some((1_001_004, 5))
        );
        // Wrong-type lookups answer None rather than lying.
        assert_eq!(snap.counter("chronus_test_depth"), None);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("chronus_test_total").add(2);
        reg.gauge("chronus_test_level").set(-4);
        let h = reg.histogram("chronus_test_ns");
        h.record(0);
        h.record(5);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE chronus_test_total counter\nchronus_test_total 2\n"));
        assert!(text.contains("# TYPE chronus_test_level gauge\nchronus_test_level -4\n"));
        assert!(text.contains("# TYPE chronus_test_ns histogram\n"));
        // Cumulative buckets: v=0 lands in bucket 0 (le="0"), v=5 in
        // bucket 3 (le="7"); the +Inf bucket equals the count.
        assert!(text.contains("chronus_test_ns_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("chronus_test_ns_bucket{le=\"7\"} 2\n"));
        assert!(text.contains("chronus_test_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("chronus_test_ns_sum 5\n"));
        assert!(text.contains("chronus_test_ns_count 2\n"));
    }

    #[test]
    fn absorb_adds_counters_and_merges_histograms() {
        let scoped = MetricsRegistry::new();
        scoped.counter("chronus_test_total").add(3);
        scoped.gauge("chronus_test_peak").set(9);
        scoped.histogram("chronus_test_ns").record(100);

        let root = MetricsRegistry::new();
        root.counter("chronus_test_total").add(10);
        root.gauge("chronus_test_peak").set(4);
        root.histogram("chronus_test_ns").record(50);

        root.absorb(&scoped.snapshot());
        let snap = root.snapshot();
        assert_eq!(snap.counter("chronus_test_total"), Some(13));
        assert_eq!(snap.gauge("chronus_test_peak"), Some(9));
        assert_eq!(snap.histogram("chronus_test_ns"), Some((150, 2)));
    }

    // Satellite: the concurrency torture test — N threads × M
    // increments each, across a shared counter, gauge and histogram;
    // the final snapshot must equal the arithmetic totals exactly.
    #[test]
    fn torture_n_threads_m_increments_snapshot_is_exact() {
        const THREADS: u64 = 8;
        const INCREMENTS: u64 = 10_000;
        let reg = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("chronus_torture_total");
                let g = reg.gauge("chronus_torture_peak");
                let h = reg.histogram("chronus_torture_ns");
                for i in 0..INCREMENTS {
                    c.inc();
                    g.max((t * INCREMENTS + i + 1) as i64);
                    h.record(i);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("chronus_torture_total"),
            Some(THREADS * INCREMENTS)
        );
        assert_eq!(
            snap.gauge("chronus_torture_peak"),
            Some((THREADS * INCREMENTS) as i64)
        );
        let per_thread_sum = INCREMENTS * (INCREMENTS - 1) / 2;
        assert_eq!(
            snap.histogram("chronus_torture_ns"),
            Some((THREADS * per_thread_sum, THREADS * INCREMENTS))
        );
        // Bucket counts must also sum to the observation count.
        match snap.metrics.get("chronus_torture_ns") {
            Some(MetricValue::Histogram { buckets, count, .. }) => {
                assert_eq!(buckets.iter().sum::<u64>(), *count);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
