//! Minimal JSON encoding helpers shared by the metrics snapshot and
//! the timeline exporter. Encoding only — the golden tests parse with
//! the `serde_json` shim, which is deliberately a separate
//! implementation so round-trip tests are meaningful.

/// Encodes `s` as a JSON string literal (quotes included).
pub(crate) fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Encodes a float as a JSON number (non-finite values become `null`,
/// which JSON cannot represent as a number).
pub(crate) fn number(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(2.5), "2.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
