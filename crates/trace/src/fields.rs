//! Span and event field values.

use std::fmt;

/// A structured field value attached to a span, instant event or
/// timeline event. Conversions exist for the primitive types the
/// instrumentation sites actually record, so `span!(…, key = value)`
/// takes the value verbatim.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string (use sparingly on hot paths).
    Str(String),
}

impl FieldValue {
    /// The value as a ring-slot word, when it fits one: integers and
    /// bools ride along in flight-recorder slots, floats and strings
    /// don't (the ring never allocates).
    pub(crate) fn as_ring_word(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) => Some(*v as u64),
            FieldValue::Bool(v) => Some(u64::from(*v)),
            FieldValue::F64(_) | FieldValue::Str(_) => None,
        }
    }

    /// Encodes the value as a JSON literal (strings escaped).
    pub fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) => crate::json::number(*v),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(s) => crate::json::string(s),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v.into())
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(v.into())
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_json() {
        assert_eq!(FieldValue::from(3u32), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3i32), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(true).to_json(), "true");
        assert_eq!(FieldValue::from("a\"b").to_json(), "\"a\\\"b\"");
        assert_eq!(FieldValue::from(1.5f64).to_json(), "1.5");
        assert_eq!(FieldValue::from(7usize).to_string(), "7");
    }
}
