//! The flight recorder: an always-on, fixed-memory event ring.
//!
//! The [`Collector`](crate::Collector) answers "show me everything
//! that happened in this short run"; the flight recorder answers "what
//! were the last N things that happened before the process got into
//! trouble" — continuously, in production, with bounded memory and no
//! locks on the record path.
//!
//! ## Ring layout
//!
//! Each recording thread owns one [`ThreadRing`]: a power-of-two array
//! of 8-word slots, each word an `AtomicU64`:
//!
//! ```text
//! [ stamp | meta | id | parent | start_ns | end_ns | arg0 | arg1 ]
//! ```
//!
//! `stamp` doubles as a per-slot seqlock and a global ordering key: a
//! process-wide sequencer hands out unique, monotonically increasing
//! stamps, the writer parks the slot at `stamp = 0` while overwriting
//! the payload, and a reader accepts a slot only when the stamp it saw
//! before reading the payload equals the stamp it sees after. Stamps
//! are never reused, so a stable nonzero stamp proves the payload is
//! the coherent event that stamp names — no ABA window. The writer is
//! always the ring's owning thread (SPSC), readers are snapshotters.
//!
//! `meta` packs the event kind, the interned name and field keys, the
//! dense thread id and the live-arg count; see [`pack_meta`]. Up to
//! two numeric fields ride along in `arg0`/`arg1` — enough for the
//! `request = id` style fields the hot spans carry — and everything
//! else is dropped rather than allocated for.
//!
//! Overwrite-oldest semantics fall out of the layout: the ring head is
//! a monotone event count, the slot index is `head & mask`, and the
//! drop count is exactly `emitted - recorded` (events whose slots have
//! been reused). [`FlightRecorder::snapshot`] reassembles every ring
//! into one time-ordered event list with per-ring drop accounting.
//!
//! ## Dumps and triggers
//!
//! [`FlightRecorder::trigger`] writes a forensic dump — the
//! reassembled timeline as Chrome trace-event JSON plus a metrics
//! snapshot under a `chronusMeta` key — atomically (tmp + rename, the
//! journal's discipline) and rate-limited so a trigger storm produces
//! one dump, not hundreds. [`FlightRecorder::force_dump`] bypasses the
//! rate limit for operator-initiated dumps (SIGUSR1, `chronusctl
//! dump`). DESIGN.md §16 catalogues the trigger taxonomy.

use crate::collector::thread_id;
use crate::fields::FieldValue;
use crate::json;
use crate::timeline::TimelineExporter;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Event kinds a ring slot can hold.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlightEventKind {
    /// A completed duration span.
    Span,
    /// A zero-duration point event.
    Instant,
    /// A sampled counter value (value in `args[0]`).
    Counter,
}

/// One event reassembled from a ring by [`FlightRecorder::snapshot`].
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Global sequence stamp (process-unique, monotone).
    pub seq: u64,
    /// Span, instant or counter.
    pub kind: FlightEventKind,
    /// Interned event name.
    pub name: &'static str,
    /// Span id (0 for counters).
    pub id: u64,
    /// Parent span id, if the event had an enclosing span.
    pub parent: Option<u64>,
    /// Monotonic start nanos ([`crate::now_ns`] clock).
    pub start_ns: u64,
    /// Monotonic end nanos (== `start_ns` for instants/counters).
    pub end_ns: u64,
    /// Dense id of the recording thread.
    pub tid: u64,
    /// Up to two numeric fields that rode along in the slot.
    pub args: Vec<(&'static str, u64)>,
}

/// Per-ring accounting attached to a snapshot.
#[derive(Clone, Copy, Debug)]
pub struct RingStats {
    /// Dense thread id of the ring's owner.
    pub tid: u64,
    /// Events ever written to this ring.
    pub emitted: u64,
    /// Events still resident and coherently readable.
    pub recorded: u64,
    /// Events lost to overwriting: exactly `emitted - recorded` once
    /// the ring has quiesced.
    pub dropped: u64,
}

/// A point-in-time reassembly of every thread ring.
#[derive(Clone, Debug, Default)]
pub struct FlightSnapshot {
    /// All coherently-read events, time-ordered (`start_ns`, then
    /// stamp order for ties).
    pub events: Vec<FlightEvent>,
    /// Per-ring emitted/recorded/dropped accounting.
    pub rings: Vec<RingStats>,
}

// ---------------------------------------------------------------------------
// Meta-word packing.
// ---------------------------------------------------------------------------

const KIND_SHIFT: u32 = 62;
const ARGC_SHIFT: u32 = 60;
const NAME_SHIFT: u32 = 48;
const KEY0_SHIFT: u32 = 36;
const KEY1_SHIFT: u32 = 24;
const FIELD_MASK: u64 = 0xfff; // 12-bit interned-name space
const TID_MASK: u64 = 0xff_ffff; // 24-bit thread ids

/// Packs kind/argc/name/keys/tid into the slot's meta word:
/// `kind:2 | argc:2 | name:12 | key0:12 | key1:12 | tid:24`.
fn pack_meta(kind: FlightEventKind, argc: u64, name: u64, key0: u64, key1: u64, tid: u64) -> u64 {
    let k = match kind {
        FlightEventKind::Span => 0u64,
        FlightEventKind::Instant => 1,
        FlightEventKind::Counter => 2,
    };
    (k << KIND_SHIFT)
        | ((argc & 0x3) << ARGC_SHIFT)
        | ((name & FIELD_MASK) << NAME_SHIFT)
        | ((key0 & FIELD_MASK) << KEY0_SHIFT)
        | ((key1 & FIELD_MASK) << KEY1_SHIFT)
        | (tid & TID_MASK)
}

fn unpack_kind(meta: u64) -> FlightEventKind {
    match meta >> KIND_SHIFT {
        0 => FlightEventKind::Span,
        1 => FlightEventKind::Instant,
        _ => FlightEventKind::Counter,
    }
}

// ---------------------------------------------------------------------------
// Name interning: &'static str → small id, id → &'static str.
// ---------------------------------------------------------------------------

/// Global intern table. Index `i` holds the name with id `i + 1`; id 0
/// is reserved for "unknown" (table overflow past the 12-bit space).
static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

thread_local! {
    /// Per-thread intern cache keyed by the string's address — static
    /// names have stable addresses, so the global lock is touched at
    /// most once per distinct name per thread.
    static NAME_CACHE: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Interns a static name, returning its small id (0 when the table is
/// full — the reader then renders the name as `"?"`).
fn intern(name: &'static str) -> u64 {
    let key = name.as_ptr() as usize;
    NAME_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(&(_, id)) = cache.iter().find(|&&(k, _)| k == key) {
            return id;
        }
        let mut table = NAMES.lock().unwrap_or_else(PoisonError::into_inner);
        let id = match table.iter().position(|&n| n == name) {
            Some(i) => i as u64 + 1,
            None if (table.len() as u64) < FIELD_MASK => {
                table.push(name);
                table.len() as u64
            }
            None => 0,
        };
        drop(table);
        cache.push((key, id));
        id
    })
}

/// Resolves an interned id back to its name.
fn resolve(id: u64) -> &'static str {
    if id == 0 {
        return "?";
    }
    NAMES
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(id as usize - 1)
        .copied()
        .unwrap_or("?")
}

// ---------------------------------------------------------------------------
// The per-thread ring.
// ---------------------------------------------------------------------------

/// One 8-word event slot. The words are named rather than indexed so
/// the record path is plain field access — no bounds checks, no
/// indexing.
#[derive(Default)]
struct Slot {
    stamp: AtomicU64,
    meta: AtomicU64,
    id: AtomicU64,
    parent: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
    arg0: AtomicU64,
    arg1: AtomicU64,
}

/// A single thread's event ring (SPSC: the owning thread writes,
/// snapshotters read).
struct ThreadRing {
    tid: u64,
    mask: u64,
    /// Total events ever written (the drop ledger's "emitted").
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadRing {
    fn new(tid: u64, slots: usize) -> Self {
        let n = slots.next_power_of_two().max(8);
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, Slot::default);
        ThreadRing {
            tid,
            mask: n as u64 - 1,
            head: AtomicU64::new(0),
            slots: v.into_boxed_slice(),
        }
    }

    /// Writes one event. Owning thread only — the slot seqlock assumes
    /// a single writer.
    #[allow(clippy::too_many_arguments)]
    fn write(
        &self,
        kind: FlightEventKind,
        name_id: u64,
        keys: [u64; 2],
        argc: u64,
        id: u64,
        parent: u64,
        start: u64,
        end: u64,
        args: [u64; 2],
    ) {
        let seq = GLOBAL_SEQ.fetch_add(1, Ordering::Relaxed);
        let n = self.head.load(Ordering::Relaxed);
        if let Some(slot) = self.slots.get((n & self.mask) as usize) {
            // Seqlock write: park the slot at stamp 0, publish the
            // payload, then publish the new stamp. The release fence
            // keeps the park visible before any payload store; the
            // release store keeps the payload visible before the new
            // stamp.
            slot.stamp.store(0, Ordering::Relaxed);
            fence(Ordering::Release);
            slot.meta.store(
                pack_meta(kind, argc, name_id, keys[0], keys[1], self.tid),
                Ordering::Relaxed,
            );
            slot.id.store(id, Ordering::Relaxed);
            slot.parent.store(parent, Ordering::Relaxed);
            slot.start.store(start, Ordering::Relaxed);
            slot.end.store(end, Ordering::Relaxed);
            slot.arg0.store(args[0], Ordering::Relaxed);
            slot.arg1.store(args[1], Ordering::Relaxed);
            slot.stamp.store(seq, Ordering::Release);
            self.head.store(n + 1, Ordering::Release);
        }
    }

    /// Seqlock read of one slot; `None` when empty or mid-overwrite.
    fn read_slot(&self, slot: &Slot) -> Option<FlightEvent> {
        let s1 = slot.stamp.load(Ordering::Acquire);
        if s1 == 0 {
            return None;
        }
        let meta = slot.meta.load(Ordering::Relaxed);
        let id = slot.id.load(Ordering::Relaxed);
        let parent = slot.parent.load(Ordering::Relaxed);
        let start = slot.start.load(Ordering::Relaxed);
        let end = slot.end.load(Ordering::Relaxed);
        let a0 = slot.arg0.load(Ordering::Relaxed);
        let a1 = slot.arg1.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        let s2 = slot.stamp.load(Ordering::Relaxed);
        if s1 != s2 {
            return None;
        }
        let argc = ((meta >> ARGC_SHIFT) & 0x3) as usize;
        let mut args = Vec::with_capacity(argc);
        if argc >= 1 {
            args.push((resolve((meta >> KEY0_SHIFT) & FIELD_MASK), a0));
        }
        if argc >= 2 {
            args.push((resolve((meta >> KEY1_SHIFT) & FIELD_MASK), a1));
        }
        Some(FlightEvent {
            seq: s1,
            kind: unpack_kind(meta),
            name: resolve((meta >> NAME_SHIFT) & FIELD_MASK),
            id,
            parent: if parent == 0 { None } else { Some(parent) },
            start_ns: start,
            end_ns: end,
            tid: meta & TID_MASK,
            args,
        })
    }
}

// ---------------------------------------------------------------------------
// Global recorder state.
// ---------------------------------------------------------------------------

/// Global event sequencer: unique nonzero stamps across all rings.
static GLOBAL_SEQ: AtomicU64 = AtomicU64::new(1);

/// Master on/off switch — the record-path probe.
static RING_ON: AtomicBool = AtomicBool::new(false);

/// Slots per ring (set by [`FlightRecorder::enable`]).
static RING_SLOTS: AtomicU64 = AtomicU64::new(4096);

/// Every ring ever created (rings outlive their threads so late
/// snapshots still see their events).
static REGISTRY: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());

/// Dump directory, metrics source and dump bookkeeping.
static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
#[allow(clippy::type_complexity)]
static METRICS_SOURCE: Mutex<Option<Box<dyn Fn() -> String + Send + Sync>>> = Mutex::new(None);
static LAST_DUMP_NS: AtomicU64 = AtomicU64::new(0);
static MIN_DUMP_INTERVAL_NS: AtomicU64 = AtomicU64::new(2_000_000_000);
static DUMPS_WRITTEN: AtomicU64 = AtomicU64::new(0);
static DUMPS_SUPPRESSED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_RING: RefCell<Option<Arc<ThreadRing>>> = const { RefCell::new(None) };
}

/// `true` while the ring is recording (one relaxed load — the span
/// fast-path probe alongside [`crate::Collector::is_enabled`]).
#[inline]
pub(crate) fn ring_on() -> bool {
    RING_ON.load(Ordering::Relaxed)
}

/// Runs `f` against the calling thread's ring, creating and
/// registering it on first use.
fn with_ring<R>(f: impl FnOnce(&ThreadRing) -> R) -> Option<R> {
    THREAD_RING.with(|cell| {
        let mut opt = cell.borrow_mut();
        if opt.is_none() {
            let ring = Arc::new(ThreadRing::new(
                thread_id(),
                RING_SLOTS.load(Ordering::Relaxed) as usize,
            ));
            REGISTRY
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&ring));
            *opt = Some(ring);
        }
        opt.as_deref().map(f)
    })
}

/// Intern up to two numeric args into slot form.
fn pack_args(args: &[(&'static str, u64)]) -> ([u64; 2], [u64; 2], u64) {
    let mut keys = [0u64; 2];
    let mut vals = [0u64; 2];
    let argc = args.len().min(2) as u64;
    for (i, (k, v)) in args.iter().take(2).enumerate() {
        if let (Some(ks), Some(vs)) = (keys.get_mut(i), vals.get_mut(i)) {
            *ks = intern(k);
            *vs = *v;
        }
    }
    (keys, vals, argc)
}

/// Records a completed span into the calling thread's ring. No-op
/// while the recorder is off.
pub(crate) fn record_span_event(
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start_ns: u64,
    end_ns: u64,
    args: &[(&'static str, u64)],
) {
    if !ring_on() {
        return;
    }
    let name_id = intern(name);
    let (keys, vals, argc) = pack_args(args);
    with_ring(|ring| {
        ring.write(
            FlightEventKind::Span,
            name_id,
            keys,
            argc,
            id,
            parent.unwrap_or(0),
            start_ns,
            end_ns,
            vals,
        )
    });
}

/// Records an instant event into the calling thread's ring.
pub(crate) fn record_instant_event(
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    ts_ns: u64,
    args: &[(&'static str, u64)],
) {
    if !ring_on() {
        return;
    }
    let name_id = intern(name);
    let (keys, vals, argc) = pack_args(args);
    with_ring(|ring| {
        ring.write(
            FlightEventKind::Instant,
            name_id,
            keys,
            argc,
            id,
            parent.unwrap_or(0),
            ts_ns,
            ts_ns,
            vals,
        )
    });
}

/// The always-on flight recorder: process-global facade over the
/// per-thread rings, dump triggers and forensic dump writer.
pub struct FlightRecorder;

impl FlightRecorder {
    /// Turns the recorder on with `slots_per_ring` slots per thread
    /// ring (rounded up to a power of two, min 8). Each slot is 64
    /// bytes, so the default 4096 slots cost 256 KiB per recording
    /// thread. Idempotent; rings already created keep their size.
    pub fn enable(slots_per_ring: usize) {
        RING_SLOTS.store(
            slots_per_ring.next_power_of_two().max(8) as u64,
            Ordering::Relaxed,
        );
        RING_ON.store(true, Ordering::SeqCst);
    }

    /// Stops recording (rings and their contents stay snapshotable).
    pub fn disable() {
        RING_ON.store(false, Ordering::SeqCst);
    }

    /// `true` while the recorder is on.
    #[inline]
    pub fn is_on() -> bool {
        ring_on()
    }

    /// Sets the directory forensic dumps are written into (created on
    /// first dump).
    pub fn set_dump_dir(dir: impl Into<PathBuf>) {
        *DUMP_DIR.lock().unwrap_or_else(PoisonError::into_inner) = Some(dir.into());
    }

    /// Minimum spacing between triggered dumps (default 2 s); a
    /// trigger storm inside the window is counted, not dumped.
    pub fn set_min_dump_interval_ms(ms: u64) {
        MIN_DUMP_INTERVAL_NS.store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
    }

    /// Registers the closure that renders the process's metrics as a
    /// JSON object for embedding in dumps (the daemon points this at
    /// its [`crate::MetricsRegistry`] snapshot).
    pub fn set_metrics_source(f: Box<dyn Fn() -> String + Send + Sync>) {
        *METRICS_SOURCE
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(f);
    }

    /// Installs a panic hook that writes a forensic dump (trigger
    /// `"panic"`) before delegating to the previous hook.
    pub fn install_panic_hook() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = FlightRecorder::force_dump("panic");
            prev(info);
        }));
    }

    /// Number of dumps written so far.
    pub fn dumps_written() -> u64 {
        DUMPS_WRITTEN.load(Ordering::Relaxed)
    }

    /// Number of triggers suppressed by the rate limit.
    pub fn dumps_suppressed() -> u64 {
        DUMPS_SUPPRESSED.load(Ordering::Relaxed)
    }

    /// Reassembles every thread ring into one time-ordered snapshot
    /// with per-ring drop accounting. Safe to call concurrently with
    /// recording; slots mid-overwrite are skipped (they are counted as
    /// dropped, matching the overwrite that is busy claiming them).
    pub fn snapshot() -> FlightSnapshot {
        let rings: Vec<Arc<ThreadRing>> = REGISTRY
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut events = Vec::new();
        let mut stats = Vec::with_capacity(rings.len());
        for ring in &rings {
            let mut recorded = 0u64;
            for slot in ring.slots.iter() {
                if let Some(event) = ring.read_slot(slot) {
                    events.push(event);
                    recorded += 1;
                }
            }
            let emitted = ring.head.load(Ordering::Acquire);
            stats.push(RingStats {
                tid: ring.tid,
                emitted,
                recorded,
                dropped: emitted.saturating_sub(recorded),
            });
        }
        events.sort_by_key(|e| (e.start_ns, e.seq));
        FlightSnapshot {
            events,
            rings: stats,
        }
    }

    /// Every recorded event with stamp greater than `cursor`, in stamp
    /// order, plus the greatest stamp seen (pass it back as the next
    /// cursor). The live-tail primitive behind `chronusctl tail`.
    pub fn events_since(cursor: u64) -> (Vec<FlightEvent>, u64) {
        let mut events: Vec<FlightEvent> = Self::snapshot()
            .events
            .into_iter()
            .filter(|e| e.seq > cursor)
            .collect();
        events.sort_by_key(|e| e.seq);
        let max = events.last().map(|e| e.seq).unwrap_or(cursor);
        (events, max)
    }

    /// Renders the current snapshot as a Perfetto-loadable forensic
    /// dump: Chrome trace events (spans `"X"`, instants `"i"`,
    /// counters `"C"`), the trigger as a marked `flightrec.trigger`
    /// instant, and a `chronusMeta` object carrying the trigger,
    /// per-ring drop ledger and the registered metrics snapshot.
    pub fn snapshot_json(trigger: &str) -> String {
        let snap = Self::snapshot();
        let mut tl = TimelineExporter::new();
        tl.process_name("chronus flight record");
        let mut tids: Vec<u64> = snap.rings.iter().map(|r| r.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            tl.thread_name(tid, &format!("ring-{tid}"));
        }
        for e in &snap.events {
            let mut fields: Vec<(&str, FieldValue)> = vec![("seq", FieldValue::U64(e.seq))];
            for (k, v) in &e.args {
                fields.push((k, FieldValue::U64(*v)));
            }
            match e.kind {
                FlightEventKind::Span => tl.ring_span(e, &fields),
                FlightEventKind::Instant => tl.ring_instant(e, &fields),
                FlightEventKind::Counter => tl.counter(
                    e.name,
                    e.start_ns,
                    e.args.first().map(|a| a.1).unwrap_or(0) as f64,
                ),
            }
        }
        tl.instant(
            "flightrec.trigger",
            crate::now_ns(),
            0,
            &[("reason", FieldValue::from(trigger))],
        );
        let rings_json: Vec<String> = snap
            .rings
            .iter()
            .map(|r| {
                format!(
                    "{{\"tid\":{},\"emitted\":{},\"recorded\":{},\"dropped\":{}}}",
                    r.tid, r.emitted, r.recorded, r.dropped
                )
            })
            .collect();
        let metrics = METRICS_SOURCE
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|f| f())
            .unwrap_or_else(|| "null".to_owned());
        let meta = format!(
            "{{\"trigger\":{},\"events\":{},\"rings\":[{}],\"metrics\":{}}}",
            json::string(trigger),
            snap.events.len(),
            rings_json.join(","),
            metrics
        );
        tl.to_json_with_meta(&meta)
    }

    /// Fires a trigger: writes a forensic dump unless one was written
    /// less than the configured interval ago (then the trigger is
    /// counted as suppressed). Returns the dump path when one was
    /// written. No-op (None) while the recorder is off or no dump
    /// directory is configured.
    pub fn trigger(reason: &str) -> Option<PathBuf> {
        if !ring_on() {
            return None;
        }
        let now = crate::now_ns();
        let last = LAST_DUMP_NS.load(Ordering::Relaxed);
        let min = MIN_DUMP_INTERVAL_NS.load(Ordering::Relaxed);
        if last != 0 && now.saturating_sub(last) < min {
            DUMPS_SUPPRESSED.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if LAST_DUMP_NS
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            // Another trigger won the race inside this window.
            DUMPS_SUPPRESSED.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Self::force_dump(reason).ok()
    }

    /// Writes a forensic dump unconditionally (operator-initiated:
    /// SIGUSR1, `chronusctl dump`, the panic hook). The dump is
    /// written to a temp file in the dump directory and renamed into
    /// place so readers never observe a partial file.
    pub fn force_dump(reason: &str) -> std::io::Result<PathBuf> {
        let dir = DUMP_DIR
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "flight dump dir not configured",
                )
            })?;
        std::fs::create_dir_all(&dir)?;
        let n = DUMPS_WRITTEN.fetch_add(1, Ordering::Relaxed);
        let slug: String = reason
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .take(40)
            .collect();
        let name = format!("flight-{n:04}-{slug}.json");
        let doc = Self::snapshot_json(reason);
        let tmp = dir.join(format!(".{name}.tmp"));
        std::fs::write(&tmp, doc.as_bytes())?;
        let path = dir.join(&name);
        std::fs::rename(&tmp, &path)?;
        LAST_DUMP_NS.store(crate::now_ns(), Ordering::Relaxed);
        Ok(path)
    }

    /// Writes the current snapshot to an explicit path (golden tests;
    /// prefer [`FlightRecorder::force_dump`] in the daemon).
    pub fn write_snapshot(reason: &str, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, Self::snapshot_json(reason).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::PoisonError;

    /// The recorder is process-global, so tests that flip it on or off
    /// serialize on the collector's test lock (shared with span.rs's
    /// tests) and use a per-test event-name prefix.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        crate::collector::TEST_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
    fn my_events(snap: &FlightSnapshot, prefix: &str) -> Vec<FlightEvent> {
        snap.events
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .cloned()
            .collect()
    }

    #[test]
    fn records_and_reassembles_in_order() {
        let _l = lock();
        FlightRecorder::enable(64);
        record_span_event("ringorder.outer", 9001, None, 100, 500, &[("req", 7)]);
        record_instant_event(
            "ringorder.tick",
            9002,
            Some(9001),
            200,
            &[("at", 42), ("n", 3)],
        );
        record_span_event("ringorder.inner", 9003, Some(9001), 250, 400, &[]);
        let snap = FlightRecorder::snapshot();
        let mine = my_events(&snap, "ringorder.");
        assert_eq!(mine.len(), 3);
        // Time-ordered by start_ns.
        assert_eq!(mine[0].name, "ringorder.outer");
        assert_eq!(mine[1].name, "ringorder.tick");
        assert_eq!(mine[2].name, "ringorder.inner");
        assert_eq!(mine[0].args, vec![("req", 7)]);
        assert_eq!(mine[1].args, vec![("at", 42), ("n", 3)]);
        assert_eq!(mine[1].kind, FlightEventKind::Instant);
        assert_eq!(mine[1].parent, Some(9001));
        assert_eq!(mine[2].end_ns, 400);
        // Stamps are unique and reflect write order within a thread.
        assert!(mine[0].seq < mine[1].seq && mine[1].seq < mine[2].seq);
        FlightRecorder::disable();
    }

    #[test]
    fn overwrite_oldest_drops_are_exact() {
        let _l = lock();
        FlightRecorder::enable(64);
        // A dedicated thread gets a fresh ring with a known capacity.
        let stats = std::thread::spawn(|| {
            let cap = 64u64; // enable() rounded to a power of two ≥ 8
            for i in 0..cap + 17 {
                record_span_event("ringflood.flood", 10_000 + i, None, i, i + 1, &[]);
            }
            let my_tid = thread_id();
            FlightRecorder::snapshot()
                .rings
                .into_iter()
                .find(|r| r.tid == my_tid)
                .map(|r| (r.emitted, r.recorded, r.dropped))
        })
        .join()
        .ok()
        .flatten();
        let (emitted, recorded, dropped) = stats.unwrap();
        assert_eq!(emitted, 64 + 17);
        assert_eq!(recorded, 64);
        assert_eq!(dropped, 17);
        assert_eq!(dropped, emitted - recorded);
        FlightRecorder::disable();
    }

    #[test]
    fn snapshot_json_is_loadable_and_carries_meta() {
        let _l = lock();
        FlightRecorder::enable(64);
        record_span_event("ringdoc.doc", 11_000, None, 10, 20, &[("k", 5)]);
        let doc = FlightRecorder::snapshot_json("unit-test");
        let parsed: serde_json::Value = serde_json::from_str(&doc).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events.len() >= 2);
        assert_eq!(parsed.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
        let meta = parsed.get("chronusMeta").unwrap();
        assert_eq!(meta.get("trigger").unwrap().as_str(), Some("unit-test"));
        assert!(meta.get("rings").unwrap().as_array().is_some());
        // The trigger is present as a marked instant event.
        let has_trigger = events.iter().any(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("flightrec.trigger")
                && e.get("ph").and_then(|p| p.as_str()) == Some("i")
        });
        assert!(has_trigger);
        FlightRecorder::disable();
    }

    #[test]
    fn trigger_rate_limit_and_force_dump() {
        let _l = lock();
        FlightRecorder::enable(64);
        let dir = std::env::temp_dir().join(format!("chronus-ring-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        FlightRecorder::set_dump_dir(&dir);
        FlightRecorder::set_min_dump_interval_ms(10_000);
        record_span_event("ringdump.dumped", 12_000, None, 1, 2, &[]);
        let first = FlightRecorder::trigger("storm");
        let first = match first {
            Some(p) => p,
            // Another test may have raced the rate-limit window; force.
            None => FlightRecorder::force_dump("storm").unwrap(),
        };
        assert!(first.exists());
        let suppressed_before = FlightRecorder::dumps_suppressed();
        assert!(FlightRecorder::trigger("storm-again").is_none());
        assert_eq!(FlightRecorder::dumps_suppressed(), suppressed_before + 1);
        // force_dump bypasses the limit.
        let forced = FlightRecorder::force_dump("operator").unwrap();
        assert!(forced.exists());
        assert!(forced
            .file_name()
            .unwrap()
            .to_string_lossy()
            .contains("operator"));
        // No temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
        FlightRecorder::disable();
    }

    #[test]
    fn interner_round_trips_and_caps() {
        let a = intern("ringname.name-a");
        let b = intern("ringname.name-b");
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_eq!(intern("ringname.name-a"), a);
        assert_eq!(resolve(a), "ringname.name-a");
        assert_eq!(resolve(0), "?");
        assert_eq!(resolve(FIELD_MASK + 7), "?");
    }

    #[test]
    fn concurrent_snapshot_never_tears() {
        let _l = lock();
        FlightRecorder::enable(64);
        let stop = Arc::new(AtomicBool::new(false));
        let writer_stop = Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            let mut i = 0u64;
            while !writer_stop.load(Ordering::Relaxed) {
                // start == id and end == id + 1: a torn read shows up
                // as a violated invariant.
                record_span_event(
                    "ringtorn.torn",
                    20_000 + i,
                    None,
                    20_000 + i,
                    20_001 + i,
                    &[],
                );
                i += 1;
            }
        });
        for _ in 0..200 {
            let snap = FlightRecorder::snapshot();
            for e in my_events(&snap, "ringtorn.torn") {
                assert_eq!(e.start_ns, e.id, "torn slot leaked into a snapshot");
                assert_eq!(e.end_ns, e.id + 1, "torn slot leaked into a snapshot");
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().ok();
        FlightRecorder::disable();
    }
}
