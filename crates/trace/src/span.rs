//! The span API: open with [`crate::span!`], enter to parent nested
//! work, drop the guard to record.

use crate::collector::{thread_id, Collector, SpanKind, SpanRecord};
use crate::fields::FieldValue;

#[cfg(feature = "trace")]
use std::cell::RefCell;

#[cfg(feature = "trace")]
thread_local! {
    /// The per-thread stack of entered span ids: the top is the
    /// parent of whatever opens next on this thread.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The id of the innermost entered span on this thread, if any.
#[cfg(feature = "trace")]
pub(crate) fn current_span_id() -> Option<u64> {
    STACK.with(|s| s.borrow().last().copied())
}

/// Inert stand-in when the `trace` feature is off.
#[cfg(not(feature = "trace"))]
pub(crate) fn current_span_id() -> Option<u64> {
    None
}

/// A span in its open (not yet entered) state. Created by the
/// [`crate::span!`] macro; a span created while no [`Collector`] is
/// installed is inert and costs nothing beyond one atomic load.
#[cfg(feature = "trace")]
pub struct Span(Option<ActiveSpan>);

#[cfg(feature = "trace")]
struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    start_ns: u64,
    /// Collector was installed at open time: keep full fields and push
    /// a [`SpanRecord`] on drop. With only the flight-recorder ring on
    /// this is false and the span never allocates for fields.
    to_sink: bool,
    /// Up to two numeric fields stashed for the ring slot.
    ring_args: [(&'static str, u64); 2],
    ring_argc: u8,
}

#[cfg(feature = "trace")]
impl Span {
    /// Opens a span named `name`, parented to the thread's innermost
    /// entered span. Recording state is decided here, once: the span
    /// is live when a [`Collector`] is installed, when the
    /// flight-recorder ring is on, or both.
    pub fn new(name: &'static str) -> Self {
        let to_sink = Collector::is_enabled();
        if to_sink || crate::FlightRecorder::is_on() {
            Span(Some(ActiveSpan {
                id: Collector::next_id(),
                parent: current_span_id(),
                name,
                fields: Vec::new(),
                start_ns: crate::now_ns(),
                to_sink,
                ring_args: [("", 0); 2],
                ring_argc: 0,
            }))
        } else {
            Span(None)
        }
    }

    /// The span's process-unique id, when it is recording.
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|a| a.id)
    }

    /// An inert span that records nothing.
    pub fn disabled() -> Self {
        Span(None)
    }

    /// `true` when this span will be recorded on drop.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Appends a `key = value` field (macro plumbing; prefer the
    /// `span!(…, key = value)` form).
    pub fn push_field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(a) = &mut self.0 {
            let value = value.into();
            if let (Some(word), true) = (value.as_ring_word(), a.ring_argc < 2) {
                let i = a.ring_argc as usize;
                if let Some(slot) = a.ring_args.get_mut(i) {
                    *slot = (key, word);
                    a.ring_argc += 1;
                }
            }
            if a.to_sink {
                a.fields.push((key, value));
            }
        }
    }

    /// Records a field after creation (`tracing`-compatible name).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        self.push_field(key, value);
    }

    /// Pushes the span onto the thread's span stack and returns the
    /// guard whose drop records the stop time.
    pub fn entered(self) -> EnteredSpan {
        if let Some(a) = &self.0 {
            STACK.with(|s| s.borrow_mut().push(a.id));
        }
        EnteredSpan { span: self }
    }
}

/// Inert [`Span`] when the `trace` feature is off: every method is a
/// no-op so instrumentation sites compile unchanged.
#[cfg(not(feature = "trace"))]
pub struct Span;

#[cfg(not(feature = "trace"))]
impl Span {
    /// Inert span (the only kind in a `trace`-less build).
    pub fn new(_name: &'static str) -> Self {
        Span
    }

    /// Inert span.
    pub fn disabled() -> Self {
        Span
    }

    /// Always `false`.
    #[inline]
    pub fn is_recording(&self) -> bool {
        false
    }

    /// Always `None` in a `trace`-less build.
    pub fn id(&self) -> Option<u64> {
        None
    }

    /// No-op.
    pub fn push_field(&mut self, _key: &'static str, _value: impl Into<FieldValue>) {}

    /// No-op.
    pub fn record(&mut self, _key: &'static str, _value: impl Into<FieldValue>) {}

    /// Inert guard.
    pub fn entered(self) -> EnteredSpan {
        EnteredSpan { span: self }
    }
}

/// Guard for an entered span; dropping it pops the thread's span
/// stack and records the span (when a collector is installed).
pub struct EnteredSpan {
    span: Span,
}

impl EnteredSpan {
    /// Records a field on the still-open span (e.g. an outcome known
    /// only at the end of the instrumented block).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        self.span.record(key, value);
    }

    /// `true` when this span will be recorded on drop.
    pub fn is_recording(&self) -> bool {
        self.span.is_recording()
    }

    /// The span's process-unique id, when it is recording. Callers
    /// that hand results across process boundaries (the daemon's
    /// journal, SLO exemplars) persist this to link back to the span
    /// in a flight-record dump.
    pub fn id(&self) -> Option<u64> {
        self.span.id()
    }
}

#[cfg(feature = "trace")]
impl Drop for EnteredSpan {
    fn drop(&mut self) {
        if let Some(a) = self.span.0.take() {
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Guards are dropped LIFO in correct usage; tolerate
                // out-of-order drops rather than corrupting linkage.
                if stack.last() == Some(&a.id) {
                    stack.pop();
                } else {
                    stack.retain(|&id| id != a.id);
                }
            });
            let end_ns = crate::now_ns();
            crate::ring::record_span_event(
                a.name,
                a.id,
                a.parent,
                a.start_ns,
                end_ns,
                a.ring_args.get(..a.ring_argc as usize).unwrap_or(&[]),
            );
            if a.to_sink {
                Collector::push(SpanRecord {
                    id: a.id,
                    parent: a.parent,
                    name: a.name,
                    fields: a.fields,
                    start_ns: a.start_ns,
                    end_ns,
                    thread: thread_id(),
                    kind: SpanKind::Complete,
                });
            }
        }
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use std::sync::PoisonError;

    #[test]
    fn nesting_links_parents_and_survives_threads() {
        let _l = crate::collector::TEST_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let guard = Collector::install();
        {
            let mut outer = crate::span!("t.outer", depth = 0u64).entered();
            outer.record("extra", true);
            {
                let _inner = crate::span!("t.inner", depth = 1u64).entered();
                crate::instant!("t.tick", at = 42u64);
            }
            let worker = std::thread::spawn(|| {
                let _w = crate::span!("t.worker").entered();
            });
            worker.join().unwrap();
        }
        drop(guard);
        let mut records = Collector::drain();
        records.sort_by_key(|r| r.start_ns);
        let outer = records.iter().find(|r| r.name == "t.outer").unwrap();
        let inner = records.iter().find(|r| r.name == "t.inner").unwrap();
        let tick = records.iter().find(|r| r.name == "t.tick").unwrap();
        let worker = records.iter().find(|r| r.name == "t.worker").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(tick.parent, Some(inner.id));
        assert_eq!(tick.kind, SpanKind::Instant);
        // Sibling thread: its stack is its own, so no parent.
        assert_eq!(worker.parent, None);
        assert_ne!(worker.thread, outer.thread);
        // Fields recorded in order, including the late one.
        assert_eq!(outer.fields[0], ("depth", FieldValue::U64(0)));
        assert_eq!(outer.fields[1], ("extra", FieldValue::Bool(true)));
        // Timing is sane: start ≤ end, child within parent.
        assert!(outer.start_ns <= outer.end_ns);
        assert!(inner.start_ns >= outer.start_ns && inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn uninstalled_spans_are_inert() {
        let _l = crate::collector::TEST_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        crate::FlightRecorder::disable();
        assert!(!Collector::is_enabled());
        let span = crate::span!("t.quiet", wasted = "never evaluated");
        assert!(!span.is_recording());
        drop(span.entered());
        assert_eq!(Collector::len(), 0);
    }
}
