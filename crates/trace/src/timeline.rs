//! Chrome trace-event export.
//!
//! [`TimelineExporter`] turns collected [`SpanRecord`]s, discrete
//! emulator events and sampled counter tracks into the Chrome
//! trace-event JSON format — load the written file in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing` to see solver,
//! engine and emulator activity on one timeline.
//!
//! Encoding notes: the format wants timestamps and durations in
//! **microseconds**; span nanos are converted with fractional
//! precision preserved (`ts = ns / 1000.0`). Complete spans are `"X"`
//! events, instants are `"i"`, counter samples are `"C"` and
//! process/thread names are `"M"` metadata records.

use crate::collector::{SpanKind, SpanRecord};
use crate::fields::FieldValue;
use crate::json;
use std::io::Write as _;
use std::path::Path;

/// Builds a Chrome trace-event JSON document. Events accumulate in
/// insertion order; viewers sort by timestamp themselves.
#[derive(Default)]
pub struct TimelineExporter {
    events: Vec<String>,
}

fn us(ns: u64) -> String {
    json::number(ns as f64 / 1000.0)
}

impl TimelineExporter {
    /// An empty exporter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events staged so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are staged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names the (single, synthetic) process in the viewer.
    pub fn process_name(&mut self, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"name\":{}}}}}",
            json::string(name)
        ));
    }

    /// Names a thread track (use the `thread` field of the records
    /// produced on it).
    pub fn thread_name(&mut self, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
            json::string(name)
        ));
    }

    /// Stages every record: complete spans become `"X"` duration
    /// events carrying `span_id`/`parent_id` plus their fields as
    /// args; instants become thread-scoped `"i"` events.
    pub fn add_spans(&mut self, records: &[SpanRecord]) {
        for record in records {
            self.add_span(record);
        }
    }

    /// Stages one record (see [`TimelineExporter::add_spans`]).
    pub fn add_span(&mut self, record: &SpanRecord) {
        let mut args = format!("\"span_id\":{}", record.id);
        if let Some(parent) = record.parent {
            args.push_str(&format!(",\"parent_id\":{parent}"));
        }
        for (key, value) in &record.fields {
            args.push_str(&format!(",{}:{}", json::string(key), value.to_json()));
        }
        let name = json::string(record.name);
        let ts = us(record.start_ns);
        let tid = record.thread;
        match record.kind {
            SpanKind::Complete => {
                let dur = us(record.end_ns.saturating_sub(record.start_ns));
                self.events.push(format!(
                    "{{\"name\":{name},\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":1,\"tid\":{tid},\"args\":{{{args}}}}}"
                ));
            }
            SpanKind::Instant => {
                self.events.push(format!(
                    "{{\"name\":{name},\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{{args}}}}}"
                ));
            }
        }
    }

    /// Stages a ring-recorded span as an `"X"` duration event (same
    /// shape as [`TimelineExporter::add_span`], sourced from a
    /// [`crate::FlightEvent`]).
    pub fn ring_span(&mut self, event: &crate::FlightEvent, fields: &[(&str, FieldValue)]) {
        let mut args = format!("\"span_id\":{}", event.id);
        if let Some(parent) = event.parent {
            args.push_str(&format!(",\"parent_id\":{parent}"));
        }
        for (key, value) in fields {
            args.push_str(&format!(",{}:{}", json::string(key), value.to_json()));
        }
        let dur = us(event.end_ns.saturating_sub(event.start_ns));
        self.events.push(format!(
            "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{dur},\"pid\":1,\"tid\":{},\"args\":{{{args}}}}}",
            json::string(event.name),
            us(event.start_ns),
            event.tid
        ));
    }

    /// Stages a ring-recorded instant as a thread-scoped `"i"` event.
    pub fn ring_instant(&mut self, event: &crate::FlightEvent, fields: &[(&str, FieldValue)]) {
        let mut args = format!("\"span_id\":{}", event.id);
        if let Some(parent) = event.parent {
            args.push_str(&format!(",\"parent_id\":{parent}"));
        }
        for (key, value) in fields {
            args.push_str(&format!(",{}:{}", json::string(key), value.to_json()));
        }
        self.events.push(format!(
            "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{{args}}}}}",
            json::string(event.name),
            us(event.start_ns),
            event.tid
        ));
    }

    /// Stages a free-standing instant event (e.g. one discrete
    /// emulator event) on thread track `tid`.
    pub fn instant(&mut self, name: &str, ts_ns: u64, tid: u64, fields: &[(&str, FieldValue)]) {
        let mut args = String::new();
        for (key, value) in fields {
            if !args.is_empty() {
                args.push(',');
            }
            args.push_str(&format!("{}:{}", json::string(key), value.to_json()));
        }
        self.events.push(format!(
            "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{tid},\"args\":{{{args}}}}}",
            json::string(name),
            us(ts_ns)
        ));
    }

    /// Stages one sample of the counter track `track` — e.g. a
    /// per-link utilization series sampled from the load ledger. The
    /// viewer draws consecutive samples of the same track as a
    /// stacked area chart.
    pub fn counter(&mut self, track: &str, ts_ns: u64, value: f64) {
        self.events.push(format!(
            "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"value\":{}}}}}",
            json::string(track),
            us(ts_ns),
            json::number(value)
        ));
    }

    /// Serializes the staged events as a Chrome trace-event JSON
    /// document: `{"traceEvents":[…],"displayTimeUnit":"ms"}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&self.events.join(","));
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Like [`TimelineExporter::to_json`] but with one extra top-level
    /// key, `"chronusMeta"`, holding `meta_json` verbatim (an encoded
    /// JSON value). Perfetto and `chrome://tracing` ignore unknown
    /// top-level keys, so the document stays loadable; the flight
    /// recorder uses this for its trigger/drop-ledger/metrics block.
    pub fn to_json_with_meta(&self, meta_json: &str) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&self.events.join(","));
        out.push_str("],\"displayTimeUnit\":\"ms\",\"chronusMeta\":");
        out.push_str(meta_json);
        out.push('}');
        out
    }

    /// Writes [`TimelineExporter::to_json`] to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, parent: Option<u64>, kind: SpanKind) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: "t.span",
            fields: vec![
                ("links", FieldValue::U64(4)),
                ("stage", FieldValue::from("greedy")),
            ],
            start_ns: 1_500,
            end_ns: 4_500,
            thread: 2,
            kind,
        }
    }

    #[test]
    fn exports_spans_counters_and_metadata() {
        let mut exporter = TimelineExporter::new();
        assert!(exporter.is_empty());
        exporter.process_name("chronus");
        exporter.thread_name(2, "worker-0");
        exporter.add_spans(&[record(7, Some(3), SpanKind::Complete)]);
        exporter.add_span(&record(8, None, SpanKind::Instant));
        exporter.counter("link 0->1 load", 2_000, 3.0);
        exporter.instant("emu.drop", 9_000, 5, &[("ttl", FieldValue::U64(0))]);
        assert_eq!(exporter.len(), 6);

        let doc = exporter.to_json();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        // Complete span: µs conversion (1500 ns → 1.5 µs, 3000 ns dur
        // → 3 µs), parent linkage and fields in args.
        assert!(doc.contains(
            "{\"name\":\"t.span\",\"ph\":\"X\",\"ts\":1.5,\"dur\":3,\"pid\":1,\"tid\":2,\
             \"args\":{\"span_id\":7,\"parent_id\":3,\"links\":4,\"stage\":\"greedy\"}}"
        ));
        assert!(doc.contains("\"ph\":\"i\",\"s\":\"t\""));
        assert!(doc.contains(
            "{\"name\":\"link 0->1 load\",\"ph\":\"C\",\"ts\":2,\"pid\":1,\"args\":{\"value\":3}}"
        ));
        assert!(doc.contains("\"name\":\"process_name\""));
        assert!(doc.contains("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,\"args\":{\"name\":\"worker-0\"}}"));
    }

    #[test]
    fn write_to_round_trips_bytes() {
        let mut exporter = TimelineExporter::new();
        exporter.counter("c", 0, 1.0);
        let dir = std::env::temp_dir().join("chronus-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timeline.json");
        exporter.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), exporter.to_json());
        let _ = std::fs::remove_file(&path);
    }
}
