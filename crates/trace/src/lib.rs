//! # chronus-trace — structured observability for the Chronus workspace
//!
//! Three cooperating layers, all offline and dependency-free:
//!
//! 1. **Spans** ([`span!`], [`Span`], [`Collector`]) — a thread-safe
//!    structured-tracing facade shaped after the `tracing` crate's
//!    span subset (`span!`/`info_span!` + an `entered()` guard), so
//!    the real crate can later be swapped in shim-style (see
//!    `shims/README.md` for the pattern). Spans carry a name, `key =
//!    value` fields and monotonic start/stop nanos; parent linkage
//!    comes from a per-thread span stack. Recording only happens while
//!    a [`Collector`] is installed — the uninstalled fast path is one
//!    relaxed atomic load — and with the crate's `trace` feature off
//!    the macros compile to nothing at all.
//! 2. **Metrics** ([`MetricsRegistry`], [`Counter`], [`Gauge`],
//!    [`Histogram`]) — a registry of named lock-free instruments
//!    following the `chronus_<crate>_<name>` naming scheme, with
//!    Prometheus text exposition ([`MetricsRegistry::to_prometheus`])
//!    and a JSON snapshot encoder ([`MetricsRegistry::to_json`]).
//!    Registries can be process-global ([`MetricsRegistry::global`])
//!    or scoped (one per engine, one per exact gate) so per-run
//!    snapshots stay isolated under concurrency.
//! 3. **Timeline export** ([`TimelineExporter`]) — serializes
//!    collected spans, discrete events and counter tracks into Chrome
//!    trace-event JSON loadable in `chrome://tracing` or Perfetto.
//!
//! `examples/trace_update.rs` at the workspace root wires all three
//! through a full plan → verify → emulate round trip; DESIGN.md §11
//! documents the span taxonomy and metric naming scheme.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

mod collector;
mod fields;
mod json;
mod metrics;
mod ring;
mod span;
mod timeline;

pub use collector::{Collector, CollectorGuard, SpanKind, SpanRecord};
pub use fields::FieldValue;
pub use metrics::{
    Counter, Gauge, Histogram, MetricValue, MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use ring::{FlightEvent, FlightEventKind, FlightRecorder, FlightSnapshot, RingStats};
pub use span::{EnteredSpan, Span};

/// Monotonic nanoseconds since the first observability call in this
/// process — the shared clock of every span, instant and counter
/// sample.
pub fn now_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Opens a span: `span!("engine.plan", id = 7, stage = "greedy")`.
///
/// Returns a [`Span`]; call [`Span::entered`] to push it on the
/// thread's span stack so nested spans link to it as children, and
/// drop the guard to record the stop time. Field values are only
/// evaluated while a [`Collector`] is installed. With the `trace`
/// feature off this expands to an inert no-op.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __chronus_span = $crate::Span::new($name);
        if __chronus_span.is_recording() {
            $(__chronus_span.push_field(stringify!($key), $val);)*
        }
        __chronus_span
    }};
}

/// Inert `span!` (the `trace` feature is off): no clock read, no
/// collector probe, no field evaluation.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        $crate::Span::disabled()
    }};
}

/// Records a zero-duration instant event on the current span stack:
/// `instant!("emu.flowmod", switch = 3)`.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! instant {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        if $crate::Collector::is_enabled() || $crate::FlightRecorder::is_on() {
            let __chronus_fields: Vec<(&'static str, $crate::FieldValue)> =
                vec![$((stringify!($key), $crate::FieldValue::from($val))),*];
            $crate::Collector::record_instant($name, __chronus_fields);
        }
    }};
}

/// Inert `instant!` (the `trace` feature is off).
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! instant {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {{}};
}

/// `tracing`-compatible alias for [`span!`] (INFO level collapses to
/// the single level this facade records).
#[macro_export]
macro_rules! info_span {
    ($($tt:tt)*) => { $crate::span!($($tt)*) };
}

/// `tracing`-compatible alias for [`span!`].
#[macro_export]
macro_rules! debug_span {
    ($($tt:tt)*) => { $crate::span!($($tt)*) };
}

/// `tracing`-compatible alias for [`span!`].
#[macro_export]
macro_rules! trace_span {
    ($($tt:tt)*) => { $crate::span!($($tt)*) };
}

pub use timeline::TimelineExporter;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
