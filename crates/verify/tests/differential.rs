//! Differential property tests: the static certifier against the
//! fluid simulator.
//!
//! The two implementations share only passive data types (`Schedule`,
//! the network model): the simulator enumerates cohorts step by step,
//! the certifier reasons symbolically over emission intervals.
//! Agreement across randomized instances and schedules is therefore
//! meaningful evidence of correctness — and any disagreement is a
//! found bug in one of them, which is the point of this suite.
//!
//! Coverage: 1050 generator draws (3 × 350 cases), each checked under
//! up to three schedules (simultaneous, randomly staggered, randomly
//! sparse), comparing not just verdicts but the exact loop /
//! blackhole / undelivered event sets, per-step congestion events,
//! and the full per-link load surface.

use chronus_net::{InstanceGenerator, InstanceGeneratorConfig, UpdateInstance};
use chronus_timenet::{FluidSimulator, Schedule, Verdict};
use chronus_verify::{analyze, certify, congestion_surface};
use proptest::prelude::*;
use proptest::proptest;

/// Compares certifier and simulator on one `(instance, schedule)`
/// pair, down to the exact event sets, and returns an error message on
/// the first disagreement.
fn compare(instance: &UpdateInstance, schedule: &Schedule) -> Result<(), String> {
    let report = FluidSimulator::check(instance, schedule);
    let analysis = analyze(instance, schedule);

    // Event sets, exactly.
    let mut sim_loops: Vec<_> = report
        .loops
        .iter()
        .map(|l| (l.flow, l.emitted_at, l.switch, l.time))
        .collect();
    sim_loops.sort_unstable();
    let mut got_loops = analysis.loop_events();
    got_loops.sort_unstable();
    if got_loops != sim_loops {
        return Err(format!(
            "loop sets differ: certifier {got_loops:?} vs simulator {sim_loops:?}"
        ));
    }
    let mut sim_bh: Vec<_> = report
        .blackholes
        .iter()
        .map(|b| (b.flow, b.emitted_at, b.switch, b.time))
        .collect();
    sim_bh.sort_unstable();
    let mut got_bh = analysis.blackhole_events();
    got_bh.sort_unstable();
    if got_bh != sim_bh {
        return Err(format!(
            "blackhole sets differ: certifier {got_bh:?} vs simulator {sim_bh:?}"
        ));
    }
    let mut sim_und = report.undelivered.clone();
    sim_und.sort_unstable();
    let mut got_und = analysis.undelivered_events();
    got_und.sort_unstable();
    if got_und != sim_und {
        return Err(format!(
            "undelivered sets differ: certifier {got_und:?} vs simulator {sim_und:?}"
        ));
    }

    // Load surface, cell for cell.
    if analysis.load_series() != report.link_loads {
        return Err("per-link load series differ".into());
    }

    // Congestion events.
    let mut sim_cong: Vec<_> = report
        .congestion
        .iter()
        .map(|c| (c.src, c.dst, c.time, c.load, c.capacity))
        .collect();
    sim_cong.sort_unstable();
    let mut got_cong = congestion_surface(instance, &analysis);
    got_cong.sort_unstable();
    if got_cong != sim_cong {
        return Err(format!(
            "congestion sets differ: certifier {got_cong:?} vs simulator {sim_cong:?}"
        ));
    }

    // And the headline verdict.
    let certified = certify(instance, schedule).is_ok();
    let consistent = report.verdict() == Verdict::Consistent;
    if certified != consistent {
        return Err(format!(
            "verdicts differ: certifier {certified} vs simulator {consistent}"
        ));
    }
    Ok(())
}

fn draw_instance(n: usize, seed: u64) -> Option<UpdateInstance> {
    InstanceGenerator::new(InstanceGeneratorConfig::paper(n, seed)).generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(350))]

    fn agrees_on_simultaneous_schedules(n in 5usize..12, seed in 0u64..1_000_000) {
        if let Some(inst) = draw_instance(n, seed) {
            let schedule = Schedule::all_at_zero(&inst);
            if let Err(msg) = compare(&inst, &schedule) {
                prop_assert!(false, "n={n} seed={seed}: {msg}");
            }
        }
    }

    fn agrees_on_staggered_schedules(
        n in 5usize..12,
        seed in 0u64..1_000_000,
        times in proptest::collection::vec(0i64..10, 16),
    ) {
        if let Some(inst) = draw_instance(n, seed) {
            let mut schedule = Schedule::new();
            for flow in &inst.flows {
                for (i, v) in flow.switches_to_update().into_iter().enumerate() {
                    let t = times.get(i % times.len()).copied().unwrap_or(0);
                    schedule.set(flow.id, v, t);
                }
            }
            if let Err(msg) = compare(&inst, &schedule) {
                prop_assert!(false, "n={n} seed={seed}: {msg}");
            }
        }
    }

    fn agrees_on_sparse_and_shifted_schedules(
        n in 5usize..12,
        seed in 0u64..1_000_000,
        times in proptest::collection::vec(0i64..30, 16),
        keep_mask in 0u32..u32::MAX,
    ) {
        // Sparse schedules (entries dropped) exercise blackhole and
        // undelivered paths; large times exercise horizon extension.
        if let Some(inst) = draw_instance(n, seed) {
            let mut schedule = Schedule::new();
            for flow in &inst.flows {
                for (i, v) in flow.switches_to_update().into_iter().enumerate() {
                    if keep_mask & (1 << (i % 32)) != 0 {
                        let t = times.get(i % times.len()).copied().unwrap_or(0);
                        schedule.set(flow.id, v, t);
                    }
                }
            }
            if let Err(msg) = compare(&inst, &schedule) {
                prop_assert!(false, "n={n} seed={seed}: {msg}");
            }
        }
    }
}

#[test]
fn certificate_round_trips_through_check() {
    // Every certified schedule's certificate must re-validate.
    let mut checked = 0;
    for seed in 0..200u64 {
        let Some(inst) = draw_instance(8, seed) else {
            continue;
        };
        let schedule = Schedule::all_at_zero(&inst);
        if let Ok(cert) = certify(&inst, &schedule) {
            assert_eq!(cert.check(&inst), Ok(()), "seed {seed}");
            checked += 1;
        }
    }
    assert!(checked > 0, "no certified instance in 200 draws");
}
