//! Schedule edge cases the certifier must define semantics for,
//! pinned to the simulator's verdicts (satellite of the verification
//! issue): same-instant updates, updates at time 0, and update times
//! beyond the drain horizon.

use chronus_net::UpdateInstance;
use chronus_net::{motivating_example, Flow, FlowId, NetworkBuilder, Path, SwitchId};
use chronus_timenet::{FluidSimulator, Schedule, Verdict};
use chronus_verify::{certify, Violation};

fn sid(i: u32) -> SwitchId {
    SwitchId(i)
}

/// Old path 0→1→2→3 (unit delays), new path 0→2→3 where the shortcut
/// 0→2 has delay `shortcut_delay`; shared tail ⟨2,3⟩ has capacity 1.
fn shared_tail_instance(shortcut_delay: u64) -> UpdateInstance {
    let mut b = NetworkBuilder::with_switches(4);
    b.add_link(sid(0), sid(1), 1, 1).unwrap();
    b.add_link(sid(1), sid(2), 1, 1).unwrap();
    b.add_link(sid(2), sid(3), 1, 1).unwrap();
    b.add_link(sid(0), sid(2), 1, shortcut_delay).unwrap();
    let net = b.build();
    let flow = Flow::new(
        FlowId(0),
        1,
        Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
        Path::new(vec![sid(0), sid(2), sid(3)]),
    )
    .unwrap();
    UpdateInstance::single(net, flow).unwrap()
}

/// Asserts certifier and simulator agree on `schedule`, and that both
/// give `expect`.
fn pin(inst: &UpdateInstance, schedule: &Schedule, expect: Verdict) {
    let sim = FluidSimulator::check(inst, schedule).verdict();
    let cert = certify(inst, schedule);
    let cert_verdict = if cert.is_ok() {
        Verdict::Consistent
    } else {
        Verdict::Inconsistent
    };
    assert_eq!(sim, cert_verdict, "certifier and simulator disagree");
    assert_eq!(sim, expect, "unexpected verdict");
}

#[test]
fn two_switches_at_the_same_instant() {
    let inst = motivating_example();
    // The staged plan updates v1 and v4 at the same instant t=2 and is
    // consistent: same-instant updates apply atomically at that step.
    let staged = Schedule::from_pairs(
        FlowId(0),
        [(sid(1), 0), (sid(2), 1), (sid(0), 2), (sid(3), 2)],
    );
    pin(&inst, &staged, Verdict::Consistent);
    // Collapsing *everything* onto one instant is the naive plan and
    // loops — same-instant semantics must not hide the transient.
    pin(&inst, &Schedule::all_at_zero(&inst), Verdict::Inconsistent);
}

#[test]
fn updates_at_time_zero() {
    // Time 0 is the first instant updates may take effect; cohorts
    // already in flight (emitted at negative steps) still follow old
    // rules upstream. A slow shortcut drains cleanly...
    pin(
        &shared_tail_instance(3),
        &Schedule::from_pairs(FlowId(0), [(sid(0), 0)]),
        Verdict::Consistent,
    );
    // ...a fast one overlaps the old stream on the shared tail.
    let inst = shared_tail_instance(1);
    let s = Schedule::from_pairs(FlowId(0), [(sid(0), 0)]);
    pin(&inst, &s, Verdict::Inconsistent);
    match certify(&inst, &s) {
        Err(Violation::Congestion {
            src, dst, start, ..
        }) => {
            assert_eq!((src, dst), (sid(2), sid(3)));
            assert!(start >= 0);
        }
        other => panic!("expected congestion on the shared tail, got {other:?}"),
    }
}

#[test]
fn update_time_beyond_the_drain_horizon() {
    // t=50 is far past every path delay (φ ≤ 3): by then the old
    // stream is a pure steady state, so the verdict must match the
    // same update at a small time — and the certifier must extend its
    // emission window to cover the late makespan, exactly like the
    // simulator.
    pin(
        &shared_tail_instance(3),
        &Schedule::from_pairs(FlowId(0), [(sid(0), 50)]),
        Verdict::Consistent,
    );
    let inst = shared_tail_instance(1);
    let s = Schedule::from_pairs(FlowId(0), [(sid(0), 50)]);
    pin(&inst, &s, Verdict::Inconsistent);
    // The certified window really covered the late transient: the
    // violation sits near t=50, not near 0.
    match certify(&inst, &s) {
        Err(Violation::Congestion { start, .. }) => assert!(start >= 50),
        other => panic!("expected late congestion, got {other:?}"),
    }
}
