//! Property tests pinning `decode(encode(x)) == x` for the
//! certificate, violation and slack-certificate codecs over
//! synthesized structures — validity is not required for the
//! round-trip invariant, so the generators explore the full field
//! space including integers beyond the `f64`-exact range.

use chronus_net::{FlowId, SwitchId};
use chronus_timenet::Schedule;
use chronus_verify::{
    certificate_from_value, certificate_to_value, slack_from_value, slack_to_value,
    violation_from_value, violation_to_value, BoundaryOrder, BoundaryWitness, Certificate,
    IntervalLoad, LinkBound, SlackCertificate, Violation,
};
use proptest::prelude::*;

fn switches(raw: &[u32]) -> Vec<SwitchId> {
    raw.iter().copied().map(SwitchId).collect()
}

/// Synthesized link bound: (src, dst, capacity, peak, segments).
type RawBound = (u32, u32, u64, u64, Vec<(i64, i64, u64)>);

fn build_certificate(
    makespan: i64,
    bounds: &[RawBound],
    boundaries: &[(i64, bool, Vec<u32>)],
    traced: usize,
    cohorts: u64,
) -> Certificate {
    Certificate {
        makespan,
        link_bounds: bounds
            .iter()
            .map(|(src, dst, capacity, peak, segs)| LinkBound {
                src: SwitchId(*src),
                dst: SwitchId(*dst),
                capacity: *capacity,
                peak: *peak,
                segments: segs
                    .iter()
                    .map(|(start, end, load)| IntervalLoad {
                        start: *start,
                        end: *end,
                        load: *load,
                    })
                    .collect(),
            })
            .collect(),
        boundaries: boundaries
            .iter()
            .map(|(time, acyclic, ids)| BoundaryWitness {
                time: *time,
                order: if *acyclic {
                    BoundaryOrder::Acyclic(switches(ids))
                } else {
                    BoundaryOrder::Cyclic(switches(ids))
                },
            })
            .collect(),
        segments_traced: traced,
        cohorts_covered: cohorts,
    }
}

fn build_violation(
    selector: u8,
    a: u32,
    b: u32,
    x: i64,
    y: i64,
    load: u64,
    flows: &[u32],
) -> Violation {
    match selector % 4 {
        0 => Violation::Congestion {
            src: SwitchId(a),
            dst: SwitchId(b),
            start: x,
            end: y,
            peak: load,
            capacity: load / 2,
            flows: flows.iter().copied().map(FlowId).collect(),
        },
        1 => Violation::ForwardingLoop {
            flow: FlowId(a),
            switch: SwitchId(b),
            emitted: (x, y),
            time: x.saturating_add(1),
        },
        2 => Violation::Blackhole {
            flow: FlowId(a),
            switch: SwitchId(b),
            emitted: (x, y),
            time: y,
        },
        _ => Violation::Undelivered {
            flow: FlowId(a),
            emitted: (x, y),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    fn certificate_round_trips(
        makespan in i64::MIN..i64::MAX,
        bounds in prop::collection::vec(
            (
                0u32..64,
                0u32..64,
                0u64..u64::MAX,
                0u64..u64::MAX,
                prop::collection::vec(
                    (i64::MIN..0, 0i64..i64::MAX, 0u64..u64::MAX),
                    0..6,
                ),
            ),
            0..6,
        ),
        boundaries in prop::collection::vec(
            (
                i64::MIN..i64::MAX,
                proptest::strategy::any::<bool>(),
                prop::collection::vec(0u32..64, 0..8),
            ),
            0..5,
        ),
        traced in 0usize..1_000_000,
        cohorts in 0u64..u64::MAX,
    ) {
        let cert = build_certificate(makespan, &bounds, &boundaries, traced, cohorts);
        let v = certificate_to_value(&cert);
        prop_assert_eq!(certificate_from_value(&v).unwrap(), cert.clone());
        // And through the strict text parser.
        let text = serde_json::to_string(&v).unwrap();
        let back = certificate_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        prop_assert_eq!(back, cert);
    }

    fn violation_round_trips(
        selector in 0u8..8,
        a in 0u32..1024,
        b in 0u32..1024,
        x in i64::MIN..i64::MAX,
        y in i64::MIN..i64::MAX,
        load in 0u64..u64::MAX,
        flows in prop::collection::vec(0u32..256, 0..6),
    ) {
        let violation = build_violation(selector, a, b, x, y, load, &flows);
        let text = serde_json::to_string(&violation_to_value(&violation)).unwrap();
        let back = violation_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        prop_assert_eq!(back, violation);
    }

    fn slack_certificate_round_trips(
        slack_steps in 0i64..1_000,
        checked in 0usize..1_000_000,
        exhausted in proptest::strategy::any::<bool>(),
        per_switch in prop::collection::vec((0u32..64, i64::MIN..i64::MAX), 0..8),
        with_counterexample in proptest::strategy::any::<bool>(),
        entries in prop::collection::vec((0u32..8, 0u32..16, i64::MIN..i64::MAX), 0..8),
        selector in 0u8..8,
    ) {
        let counterexample = if with_counterexample {
            let mut schedule = Schedule::new();
            for &(f, s, t) in &entries {
                schedule.set(FlowId(f), SwitchId(s), t);
            }
            Some((schedule, build_violation(selector, 1, 2, -5, 9, 100, &[0, 3])))
        } else {
            None
        };
        let slack = SlackCertificate {
            slack_steps,
            schedules_checked: checked,
            budget_exhausted: exhausted,
            per_switch: per_switch
                .iter()
                .map(|&(s, k)| (SwitchId(s), k))
                .collect(),
            counterexample,
        };
        let text = serde_json::to_string(&slack_to_value(&slack)).unwrap();
        let back = slack_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        prop_assert_eq!(back, slack);
    }
}
