//! Slack certificates: how much per-switch timing error a certified
//! schedule tolerates.
//!
//! A timed schedule assigns each `(flow, switch)` update a step
//! `t`; in deployment the switch fires at true time
//! `update_at + t·step ± δ`, where δ collects the post-sync residual
//! clock error, control-channel jitter and install latency. A
//! [`SlackCertificate`] proves a *uniform tolerance*: as long as every
//! trigger fires within `±Δ` of its nominal instant, the schedule
//! remains loop- and congestion-free.
//!
//! ## Why a finite check suffices
//!
//! The certifier's fluid model observes the data plane at integer
//! steps. A rule change displaced by a real offset δ is
//! indistinguishable, at that granularity, from an integer
//! re-scheduling of the same switch:
//!
//! - firing **early** by δ ∈ (0, step) changes nothing — no arrival
//!   between the perturbed and nominal instants — and early by
//!   δ ∈ [j·step, (j+1)·step) behaves exactly like step `t − j`;
//! - firing **late** by δ ∈ ((j−1)·step, j·step] behaves exactly like
//!   step `t + j`.
//!
//! Hence every real perturbation vector with `|δ_i| < k·step` maps to
//! an integer schedule with each entry displaced within
//! `{−(k−1), …, +k}`. Certifying that finite hypercube (entries below
//! step 0 are clamped out — the model starts at "now") certifies the
//! whole continuous box, soundly. The certificate reports
//! `slack_steps = k` for the largest fully-certified hypercube, i.e.
//! a guaranteed tolerance of `Δ = k·step − 1 ns` for any step length.
//!
//! The check is exhaustive and exponential in the number of schedule
//! entries, so a `budget` caps the certifications spent; a budget
//! exhaustion stops *growth* but never weakens what was already
//! certified.

use crate::VerifyConfig;
use crate::{certify_with, Certificate, Violation};
use chronus_net::{FlowId, SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::Schedule;
use std::collections::BTreeMap;

/// Knobs for the slack search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlackConfig {
    /// Largest tolerance (in steps) to attempt to certify.
    pub max_steps: TimeStep,
    /// Cap on perturbed-schedule certifications across the search.
    pub budget: usize,
}

impl Default for SlackConfig {
    fn default() -> Self {
        SlackConfig {
            max_steps: 4,
            budget: 4_096,
        }
    }
}

/// Proof that a schedule tolerates uniform per-switch timing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlackCertificate {
    /// Largest `k` such that every perturbation of every entry within
    /// `{−(k−1), …, +k}` steps certifies. `0` means only exact firing
    /// is certified (some single-step lateness already violates).
    pub slack_steps: TimeStep,
    /// Perturbed schedules certified during the search.
    pub schedules_checked: usize,
    /// The search stopped growing `k` because the certification
    /// budget ran out (the reported `slack_steps` is still sound).
    pub budget_exhausted: bool,
    /// Per-switch diagnostic tolerances: the largest single-switch
    /// displacement each switch individually survives (min over its
    /// schedule entries), independent of the others. Always ≥ the
    /// uniform `slack_steps`.
    pub per_switch: Vec<(SwitchId, TimeStep)>,
    /// The perturbed schedule and violation that blocked
    /// `slack_steps + 1`, when the search got that far.
    pub counterexample: Option<(Schedule, Violation)>,
}

impl SlackCertificate {
    /// The certified tolerance in nanoseconds for an emulation with
    /// the given step length: any firing within ±Δ of nominal is
    /// covered. Zero when only exact firing is certified.
    pub fn delta_ns(&self, step_ns: i128) -> i128 {
        if self.slack_steps <= 0 {
            0
        } else {
            (self.slack_steps as i128) * step_ns - 1
        }
    }

    /// Does the certificate cover a measured deviation — e.g. the
    /// post-sync residual clock error from `two_way_sync` — under the
    /// given step length?
    pub fn covers_residual(&self, residual_ns: i128, step_ns: i128) -> bool {
        residual_ns.abs() <= self.delta_ns(step_ns)
    }
}

impl std::fmt::Display for SlackCertificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "slack certificate: ±{} step(s) ({} schedules checked{})",
            self.slack_steps,
            self.schedules_checked,
            if self.budget_exhausted {
                ", budget exhausted"
            } else {
                ""
            }
        )
    }
}

/// Certifies the largest uniform timing tolerance for `schedule`.
///
/// Returns `Err` only when the *nominal* schedule itself fails
/// certification; otherwise the certificate reports the largest
/// fully-certified hypercube (possibly `slack_steps = 0`).
pub fn slack_certificate(
    instance: &UpdateInstance,
    schedule: &Schedule,
    config: &SlackConfig,
) -> Result<SlackCertificate, Violation> {
    let mut span = chronus_trace::span!(
        "verify.slack",
        entries = schedule.len() as u64,
        max_steps = config.max_steps
    )
    .entered();
    // Load bounds and witnesses are irrelevant here; only the verdict
    // matters, for every perturbed variant.
    let quick = VerifyConfig {
        enabled: true,
        witnesses: false,
    };
    certify_with(instance, schedule, &quick)?;

    let entries: Vec<(FlowId, SwitchId, TimeStep)> = schedule.iter().collect();
    let mut checked = 0usize;
    let mut slack: TimeStep = 0;
    let mut budget_exhausted = false;
    let mut counterexample = None;

    'grow: for k in 1..=config.max_steps.max(0) {
        // Displacement menu per entry for tolerance k: −(k−1)…+k,
        // clamped so no entry moves below step 0.
        let menus: Vec<Vec<TimeStep>> = entries
            .iter()
            .map(|&(_, _, t)| ((-(k - 1)).max(-t)..=k).collect())
            .collect();
        let cube: usize = menus.iter().map(Vec::len).product();
        if checked + cube > config.budget {
            budget_exhausted = true;
            break;
        }
        // Odometer over the hypercube.
        let mut digits = vec![0usize; menus.len()];
        loop {
            let mut perturbed = schedule.clone();
            for (idx, &(flow, switch, t)) in entries.iter().enumerate() {
                let menu = match menus.get(idx) {
                    Some(m) => m,
                    None => continue,
                };
                let offset = digits
                    .get(idx)
                    .and_then(|&d| menu.get(d))
                    .copied()
                    .unwrap_or(0);
                perturbed.set(flow, switch, t + offset);
            }
            checked += 1;
            if let Err(violation) = certify_with(instance, &perturbed, &quick) {
                counterexample = Some((perturbed, violation));
                break 'grow;
            }
            // Advance the odometer.
            let mut pos = 0usize;
            while let (Some(d), Some(menu)) = (digits.get_mut(pos), menus.get(pos)) {
                *d += 1;
                if *d < menu.len() {
                    break;
                }
                *d = 0;
                pos += 1;
            }
            if pos >= menus.len() {
                break;
            }
        }
        slack = k;
    }

    let per_switch = per_switch_tolerances(instance, schedule, &entries, config, &quick);

    if span.is_recording() {
        span.record("slack_steps", slack);
        span.record("schedules_checked", checked as u64);
    }
    Ok(SlackCertificate {
        slack_steps: slack,
        schedules_checked: checked,
        budget_exhausted,
        per_switch,
        counterexample,
    })
}

/// For each switch: the largest single-switch displacement tolerance
/// (min over that switch's entries), holding every other entry at its
/// nominal step.
fn per_switch_tolerances(
    instance: &UpdateInstance,
    schedule: &Schedule,
    entries: &[(FlowId, SwitchId, TimeStep)],
    config: &SlackConfig,
    quick: &VerifyConfig,
) -> Vec<(SwitchId, TimeStep)> {
    let mut by_switch: BTreeMap<SwitchId, TimeStep> = BTreeMap::new();
    for &(flow, switch, t) in entries {
        let mut tol: TimeStep = 0;
        'single: for j in 1..=config.max_steps.max(0) {
            for offset in (-(j - 1)).max(-t)..=j {
                if offset == 0 {
                    continue;
                }
                let mut perturbed = schedule.clone();
                perturbed.set(flow, switch, t + offset);
                if certify_with(instance, &perturbed, quick).is_err() {
                    break 'single;
                }
            }
            tol = j;
        }
        by_switch
            .entry(switch)
            .and_modify(|cur| *cur = (*cur).min(tol))
            .or_insert(tol);
    }
    by_switch.into_iter().collect()
}

/// Re-validates a slack certificate the cheap way: spot-checks that
/// the certified hypercube's corner schedules still certify. Full
/// re-validation is re-running [`slack_certificate`].
pub fn check_slack(
    instance: &UpdateInstance,
    schedule: &Schedule,
    cert: &SlackCertificate,
) -> Result<(), Violation> {
    if cert.slack_steps <= 0 {
        return Ok(());
    }
    let quick = VerifyConfig {
        enabled: true,
        witnesses: false,
    };
    let k = cert.slack_steps;
    for corner in [-(k - 1), k] {
        let mut perturbed = schedule.clone();
        for (flow, switch, t) in schedule.iter() {
            perturbed.set(flow, switch, (t + corner).max(0));
        }
        certify_with(instance, &perturbed, &quick)?;
    }
    Ok(())
}

/// Convenience: the certificate for the nominal schedule, if the
/// caller also wants the load bounds alongside the slack result.
pub fn certify_with_slack(
    instance: &UpdateInstance,
    schedule: &Schedule,
    config: &SlackConfig,
) -> Result<(Certificate, SlackCertificate), Violation> {
    let cert = certify_with(instance, schedule, &VerifyConfig::default())?;
    let slack = slack_certificate(instance, schedule, config)?;
    Ok((cert, slack))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::motivating_example;

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    fn staged() -> Schedule {
        Schedule::from_pairs(
            FlowId(0),
            [(sid(1), 0), (sid(2), 1), (sid(0), 2), (sid(3), 2)],
        )
    }

    #[test]
    fn nominal_violation_propagates() {
        let inst = motivating_example();
        let naive = Schedule::all_at_zero(&inst);
        assert!(slack_certificate(&inst, &naive, &SlackConfig::default()).is_err());
    }

    #[test]
    fn staged_plan_has_positive_slack_or_a_counterexample() {
        let inst = motivating_example();
        let cert = slack_certificate(&inst, &staged(), &SlackConfig::default())
            .expect("staged plan certifies");
        assert!(cert.schedules_checked > 0);
        // Either some tolerance was certified, or the blocking
        // perturbation is reported.
        if cert.slack_steps == 0 {
            let (bad, violation) = cert
                .counterexample
                .clone()
                .expect("k=1 failure names a witness");
            assert!(certify_with(
                &inst,
                &bad,
                &VerifyConfig {
                    enabled: true,
                    witnesses: false
                }
            )
            .is_err());
            let _ = violation.to_string();
        } else {
            assert!(check_slack(&inst, &staged(), &cert).is_ok());
        }
        // Diagnostics cover every scheduled switch.
        assert_eq!(cert.per_switch.len(), 4);
        for &(_, tol) in &cert.per_switch {
            assert!(tol >= cert.slack_steps, "per-switch ≥ uniform");
        }
        println!("{cert}");
    }

    #[test]
    fn dilating_a_tight_plan_buys_slack() {
        // The greedy staged plan is *tight*: each dependency is
        // separated by exactly one step, so displacing e.g. switch 1
        // onto switch 2's step re-creates the transient loop and the
        // uniform slack is 0. Stretching every gap (t → 2t) trades
        // makespan for tolerance: the dilated plan certifies ±1 step.
        let inst = motivating_example();
        let tight = slack_certificate(&inst, &staged(), &SlackConfig::default())
            .expect("staged plan certifies");
        assert_eq!(tight.slack_steps, 0, "{tight}");

        let dilated = Schedule::from_pairs(
            FlowId(0),
            [(sid(1), 0), (sid(2), 2), (sid(0), 4), (sid(3), 4)],
        );
        let cert = slack_certificate(&inst, &dilated, &SlackConfig::default())
            .expect("dilated plan certifies");
        assert!(cert.slack_steps >= 1, "{cert}");
        assert!(cert.delta_ns(100_000_000) >= 99_999_999);
        assert!(check_slack(&inst, &dilated, &cert).is_ok());
    }

    #[test]
    fn delta_ns_converts_steps_to_time() {
        let cert = SlackCertificate {
            slack_steps: 2,
            schedules_checked: 1,
            budget_exhausted: false,
            per_switch: Vec::new(),
            counterexample: None,
        };
        let step = 100_000_000i128; // 100 ms
        assert_eq!(cert.delta_ns(step), 199_999_999);
        assert!(cert.covers_residual(1_000, step));
        assert!(cert.covers_residual(-199_999_999, step));
        assert!(!cert.covers_residual(200_000_000, step));

        let zero = SlackCertificate {
            slack_steps: 0,
            ..cert
        };
        assert_eq!(zero.delta_ns(step), 0);
        assert!(zero.covers_residual(0, step));
        assert!(!zero.covers_residual(1, step));
    }

    #[test]
    fn budget_exhaustion_is_reported_not_fatal() {
        let inst = motivating_example();
        let cfg = SlackConfig {
            max_steps: 4,
            budget: 3, // can't even finish k = 1
        };
        let cert = slack_certificate(&inst, &staged(), &cfg).expect("nominal certifies");
        assert_eq!(cert.slack_steps, 0);
        assert!(cert.budget_exhausted);
    }

    #[test]
    fn single_entry_schedule_slack() {
        // Old 0→1→2→3 shortcut to 0→2→3: only the source flips its
        // next hop, every downstream switch keeps its old rule, and
        // capacities are ample — moving the single update around can
        // neither loop, blackhole, nor congest, so the slack reaches
        // max_steps.
        let mut b = chronus_net::NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 10, 1).unwrap();
        b.add_link(sid(1), sid(2), 10, 1).unwrap();
        b.add_link(sid(2), sid(3), 10, 1).unwrap();
        b.add_link(sid(0), sid(2), 10, 1).unwrap();
        let net = b.build();
        let flow = chronus_net::Flow::new(
            FlowId(0),
            1,
            chronus_net::Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            chronus_net::Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(net, flow).unwrap();
        let s = Schedule::from_pairs(FlowId(0), [(sid(0), 1)]);
        let cfg = SlackConfig {
            max_steps: 3,
            budget: 1_000,
        };
        let cert = slack_certificate(&inst, &s, &cfg).expect("certifies");
        assert_eq!(cert.slack_steps, 3, "{cert}");
        assert!(!cert.budget_exhausted);
        assert!(check_slack(&inst, &s, &cert).is_ok());
    }
}
