//! Composition of per-shard certificates into a joint one.
//!
//! The sharded planner (`chronus-core::shard`) plans each shard
//! against a network whose *shared* links are clamped to the shard's
//! capacity reservation, so every per-shard [`Certificate`] proves
//! congestion-freedom only against its own grant. Composition turns
//! those partial proofs into a joint proof for the original instance:
//!
//! * links bounded by a **single** shard are adopted verbatim with
//!   their capacity rewritten to the true network capacity (the
//!   recorded one may be the smaller reservation; the recorded peak is
//!   unchanged, so the bound only gets looser);
//! * links bounded by **two or more** shards — exactly the shared
//!   links reservations coordinate — are re-checked from scratch: the
//!   shard profiles are summed with a boundary sweep and the combined
//!   peak is compared against the true capacity. An overloaded run
//!   here is precisely a reservation conflict, reported as
//!   [`Violation::Congestion`] so the planner can tighten grants and
//!   replan.
//!
//! The composed certificate passes [`Certificate::check`] against the
//! original instance, which is what makes the sharded fast path
//! exactly as trustworthy as the joint one.

use crate::certificate::{BoundaryWitness, Certificate, IntervalLoad, LinkBound, Violation};
use chronus_net::{Capacity, SwitchId, TimeStep, UpdateInstance};
use std::collections::BTreeMap;

/// Composes per-shard certificates into a joint certificate for
/// `instance`, re-checking every link that appears in more than one
/// part (the cross-shard reservation surface).
///
/// Returns the first conflict as a [`Violation::Congestion`] naming
/// the overloaded link and run; the flow list is empty because shard
/// certificates do not attribute load to flows (callers resolve
/// attribution against the instance when they need it).
pub fn compose_certificates(
    instance: &UpdateInstance,
    parts: &[Certificate],
) -> Result<Certificate, Violation> {
    // Group bounds by link across all parts, deterministically.
    let mut by_link: BTreeMap<(SwitchId, SwitchId), Vec<&LinkBound>> = BTreeMap::new();
    for part in parts {
        for bound in &part.link_bounds {
            by_link.entry((bound.src, bound.dst)).or_default().push(bound);
        }
    }

    let mut link_bounds = Vec::with_capacity(by_link.len());
    for ((src, dst), bounds) in by_link {
        // The shard network shares the instance's topology; a missing
        // link would fail the joint `check` loudly, so fall back to
        // the recorded capacity rather than silently dropping a bound.
        let capacity = instance
            .network
            .capacity(src, dst)
            .or_else(|| bounds.first().map(|b| b.capacity))
            .unwrap_or(0);
        let merged = if let [only] = bounds.as_slice() {
            adopt(only, capacity)?
        } else {
            merge(src, dst, capacity, &bounds)?
        };
        link_bounds.push(merged);
    }

    let mut boundaries: Vec<BoundaryWitness> =
        parts.iter().flat_map(|p| p.boundaries.iter().cloned()).collect();
    boundaries.sort_by_key(|b| b.time);

    Ok(Certificate {
        makespan: parts.iter().map(|p| p.makespan).max().unwrap_or(0),
        link_bounds,
        boundaries,
        segments_traced: parts.iter().map(|p| p.segments_traced).sum(),
        cohorts_covered: parts.iter().map(|p| p.cohorts_covered).sum(),
    })
}

/// Adopts a single-shard bound under the true capacity. The shard
/// planned against a reservation no larger than `capacity`, so its
/// peak normally still fits; re-check anyway so a corrupt part cannot
/// seal an overload.
fn adopt(bound: &LinkBound, capacity: Capacity) -> Result<LinkBound, Violation> {
    if bound.peak > capacity {
        return Err(first_overload(
            bound.src,
            bound.dst,
            capacity,
            &bound.segments,
        ));
    }
    Ok(LinkBound {
        src: bound.src,
        dst: bound.dst,
        capacity,
        peak: bound.peak,
        segments: bound.segments.clone(),
    })
}

/// Sums two or more shard profiles for one link with a boundary sweep
/// and re-checks the combined peak against the true capacity.
fn merge(
    src: SwitchId,
    dst: SwitchId,
    capacity: Capacity,
    bounds: &[&LinkBound],
) -> Result<LinkBound, Violation> {
    // Signed load deltas at every segment boundary.
    let mut events: Vec<(TimeStep, i128)> = Vec::new();
    for b in bounds {
        for s in &b.segments {
            events.push((s.start, s.load as i128));
            events.push((s.end, -(s.load as i128)));
        }
    }
    events.sort_unstable_by_key(|&(t, _)| t);

    // Accumulate into maximal constant non-zero segments. Every
    // boundary coalesces all deltas at its instant, so consecutive
    // emitted segments always differ in load and zero-load gaps are
    // simply never emitted.
    let mut segments: Vec<IntervalLoad> = Vec::new();
    let mut load: i128 = 0;
    let mut open: Option<TimeStep> = None;
    let mut i = 0;
    while i < events.len() {
        let t = events.get(i).map(|&(t, _)| t).unwrap_or(TimeStep::MAX);
        let mut next = load;
        while let Some(&(tt, d)) = events.get(i) {
            if tt != t {
                break;
            }
            next += d;
            i += 1;
        }
        if next == load {
            continue;
        }
        if let Some(start) = open.take() {
            segments.push(IntervalLoad {
                start,
                end: t,
                load: load as Capacity,
            });
        }
        if next > 0 {
            open = Some(t);
        }
        load = next;
    }
    // Deltas are balanced (every +load has its -load), so the sweep
    // always returns to zero and closes the last segment.
    debug_assert!(open.is_none() && load == 0);

    let peak = segments
        .iter()
        .filter(|s| s.end > 0)
        .map(|s| s.load)
        .max()
        .unwrap_or(0);
    if peak > capacity {
        return Err(first_overload(src, dst, capacity, &segments));
    }
    Ok(LinkBound {
        src,
        dst,
        capacity,
        peak,
        segments,
    })
}

/// The earliest maximal overloaded run in `segments`, as the
/// congestion counterexample composition reports for a reservation
/// conflict.
fn first_overload(
    src: SwitchId,
    dst: SwitchId,
    capacity: Capacity,
    segments: &[IntervalLoad],
) -> Violation {
    let mut run: Option<(TimeStep, TimeStep, Capacity)> = None;
    for s in segments {
        let overloaded = s.end > 0 && s.load > capacity;
        match run {
            None if overloaded => run = Some((s.start.max(0), s.end, s.load)),
            Some((start, end, peak)) if overloaded && s.start == end => {
                run = Some((start, s.end, peak.max(s.load)));
            }
            Some(_) => break, // past the first maximal overloaded run
            None => {}
        }
    }
    let (start, end, peak) = run.unwrap_or((0, 0, 0));
    Violation::Congestion {
        src,
        dst,
        start,
        end,
        peak,
        capacity,
        flows: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{Flow, FlowId, NetworkBuilder, Path};

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    /// Two parallel two-hop corridors joined at a shared middle link.
    fn joint_instance(shared_capacity: Capacity) -> UpdateInstance {
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 10, 1).unwrap();
        b.add_link(sid(1), sid(2), shared_capacity, 1).unwrap();
        b.add_link(sid(2), sid(3), 10, 1).unwrap();
        let net = b.build();
        let f0 = Flow::new(
            FlowId(0),
            3,
            Path::new(vec![sid(0), sid(1), sid(2)]),
            Path::new(vec![sid(0), sid(1), sid(2)]),
        )
        .unwrap();
        let f1 = Flow::new(
            FlowId(1),
            4,
            Path::new(vec![sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(1), sid(2), sid(3)]),
        )
        .unwrap();
        UpdateInstance::new(net, vec![f0, f1]).unwrap()
    }

    fn bound(src: u32, dst: u32, capacity: Capacity, segs: &[(TimeStep, TimeStep, Capacity)]) -> LinkBound {
        LinkBound {
            src: sid(src),
            dst: sid(dst),
            capacity,
            peak: segs
                .iter()
                .filter(|s| s.1 > 0)
                .map(|s| s.2)
                .max()
                .unwrap_or(0),
            segments: segs
                .iter()
                .map(|&(start, end, load)| IntervalLoad { start, end, load })
                .collect(),
        }
    }

    fn part(bounds: Vec<LinkBound>) -> Certificate {
        Certificate {
            makespan: 2,
            link_bounds: bounds,
            boundaries: Vec::new(),
            segments_traced: 1,
            cohorts_covered: 4,
        }
    }

    #[test]
    fn disjoint_links_are_adopted_with_true_capacities() {
        let inst = joint_instance(10);
        // Shard 0 planned against the shared link clamped to 5.
        let a = part(vec![
            bound(0, 1, 10, &[(-2, 4, 3)]),
            bound(1, 2, 5, &[(-2, 4, 3)]),
        ]);
        let b = part(vec![
            bound(1, 2, 5, &[(-2, 4, 4)]),
            bound(2, 3, 10, &[(-2, 4, 4)]),
        ]);
        let joint = compose_certificates(&inst, &[a, b]).unwrap();
        // The composed artifact passes the joint machine check, which
        // requires capacities to equal the true network's.
        assert_eq!(joint.check(&inst), Ok(()));
        assert_eq!(joint.peak_load(sid(0), sid(1)), 3);
        assert_eq!(joint.peak_load(sid(2), sid(3)), 4);
        // Shared link re-checked as the sum of both shard profiles.
        assert_eq!(joint.peak_load(sid(1), sid(2)), 7);
    }

    #[test]
    fn shared_link_sum_respects_time_structure() {
        let inst = joint_instance(5);
        // The shard loads touch the shared link at disjoint times, so
        // 3 + 4 never coexists and 5 of capacity suffices.
        let a = part(vec![bound(1, 2, 5, &[(-2, 1, 3)])]);
        let b = part(vec![bound(1, 2, 5, &[(1, 4, 4)])]);
        let joint = compose_certificates(&inst, &[a, b]).unwrap();
        assert_eq!(joint.peak_load(sid(1), sid(2)), 4);
        assert_eq!(joint.check(&inst), Ok(()));
        let seg_loads: Vec<Capacity> = joint
            .link_bounds
            .iter()
            .find(|b| b.src == sid(1) && b.dst == sid(2))
            .unwrap()
            .segments
            .iter()
            .map(|s| s.load)
            .collect();
        assert_eq!(seg_loads, vec![3, 4]);
    }

    #[test]
    fn oversubscribed_shared_link_is_a_conflict() {
        let inst = joint_instance(5);
        // Both shards were optimistically granted 5 and both used it
        // at the same time: 3 + 4 = 7 > 5 is a reservation conflict.
        let a = part(vec![bound(1, 2, 5, &[(-2, 4, 3)])]);
        let b = part(vec![bound(1, 2, 5, &[(0, 4, 4)])]);
        match compose_certificates(&inst, &[a, b]) {
            Err(Violation::Congestion {
                src,
                dst,
                start,
                end,
                peak,
                capacity,
                ..
            }) => {
                assert_eq!((src, dst), (sid(1), sid(2)));
                assert_eq!((start, end), (0, 4));
                assert_eq!((peak, capacity), (7, 5));
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_single_part_cannot_seal_an_overload() {
        let inst = joint_instance(5);
        // A lone part claiming peak 9 against a true capacity of 10 on
        // 0->1 is fine, but 9 over the 5-capacity shared link is not.
        let a = part(vec![bound(1, 2, 9, &[(0, 2, 9)])]);
        assert!(matches!(
            compose_certificates(&inst, &[a]),
            Err(Violation::Congestion { .. })
        ));
    }

    #[test]
    fn composition_of_real_certificates_checks_out() {
        // Split the joint instance into its two single-flow halves
        // (the degenerate sharding) and compose the real certifier's
        // outputs; the result must check against the joint instance.
        let inst = joint_instance(10);
        let mut certs = Vec::new();
        for flow in &inst.flows {
            let sub = UpdateInstance::single(inst.network.clone(), flow.clone()).unwrap();
            let sched = chronus_timenet::Schedule::new();
            certs.push(crate::certify(&sub, &sched).unwrap());
        }
        let joint = compose_certificates(&inst, &certs).unwrap();
        assert_eq!(joint.check(&inst), Ok(()));
        assert_eq!(joint.peak_load(sid(1), sid(2)), 7);
    }
}
