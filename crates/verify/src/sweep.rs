//! Per-link sweep-line over interval load contributions.
//!
//! Congestion-freedom is decided by pure interval arithmetic: each
//! contribution is a half-open interval `[t_lo, t_hi + 1)` of departure
//! steps carrying a constant demand, so per link the total load is a
//! step function whose breakpoints are contribution endpoints. The
//! sweep accumulates `+demand` / `−demand` deltas at the breakpoints
//! and emits the maximal constant-load segments — the certificate's
//! per-interval load bounds — then compares each segment that
//! intersects `t ≥ 0` against the link's capacity (steps < 0 are the
//! feasible pre-update steady state, exactly the simulator's rule).

use crate::certificate::{IntervalLoad, LinkBound, Violation};
use crate::trace::Contribution;
use chronus_net::{Capacity, SwitchId, UpdateInstance};
use std::collections::BTreeMap;

/// Folds contributions into per-link constant-load segments, sorted by
/// link then by time. Zero-load gaps are omitted.
pub(crate) fn link_profiles(
    contributions: &[Contribution],
) -> BTreeMap<(SwitchId, SwitchId), Vec<IntervalLoad>> {
    let mut deltas: BTreeMap<(SwitchId, SwitchId), BTreeMap<i64, i128>> = BTreeMap::new();
    for c in contributions {
        let link = deltas.entry((c.src, c.dst)).or_default();
        *link.entry(c.t_lo).or_insert(0) += i128::from(c.demand);
        *link.entry(c.t_hi + 1).or_insert(0) -= i128::from(c.demand);
    }
    let mut out = BTreeMap::new();
    for (link, events) in deltas {
        let mut segments: Vec<IntervalLoad> = Vec::new();
        let mut load: i128 = 0;
        let mut prev: Option<i64> = None;
        for (&t, &delta) in &events {
            if let Some(start) = prev {
                if load > 0 && t > start {
                    let level = Capacity::try_from(load).unwrap_or(Capacity::MAX);
                    match segments.last_mut() {
                        Some(last) if last.end == start && last.load == level => last.end = t,
                        _ => segments.push(IntervalLoad {
                            start,
                            end: t,
                            load: level,
                        }),
                    }
                }
            }
            load += delta;
            prev = Some(t);
        }
        out.insert(link, segments);
    }
    out
}

/// Builds the certificate's per-link bounds from the profiles,
/// recording each link's capacity and its peak load over `t ≥ 0`.
pub(crate) fn link_bounds(
    instance: &UpdateInstance,
    profiles: &BTreeMap<(SwitchId, SwitchId), Vec<IntervalLoad>>,
) -> Vec<LinkBound> {
    profiles
        .iter()
        .map(|(&(src, dst), segments)| LinkBound {
            src,
            dst,
            capacity: instance.network.capacity(src, dst).unwrap_or(0),
            peak: segments
                .iter()
                .filter(|s| s.end > 0)
                .map(|s| s.load)
                .max()
                .unwrap_or(0),
            segments: segments.clone(),
        })
        .collect()
}

/// Finds the minimal congestion counterexample, if any: the earliest
/// overloaded instant across all links (ties broken by link id), and
/// the maximal contiguous run of overloaded segments around it. The
/// contributing flows are every flow with demand on the link during
/// that run.
pub(crate) fn first_congestion(
    instance: &UpdateInstance,
    contributions: &[Contribution],
    profiles: &BTreeMap<(SwitchId, SwitchId), Vec<IntervalLoad>>,
) -> Option<Violation> {
    let mut best: Option<(i64, SwitchId, SwitchId, i64, Capacity, Capacity)> = None;
    for (&(src, dst), segments) in profiles {
        let capacity = instance.network.capacity(src, dst).unwrap_or(0);
        let mut run: Option<(i64, i64, Capacity)> = None;
        for s in segments {
            let overloaded = s.load > capacity && s.end > 0;
            if overloaded {
                let start = s.start.max(0);
                run = match run {
                    Some((rs, re, peak)) if re == start => Some((rs, s.end, peak.max(s.load))),
                    Some(done) => {
                        consider(&mut best, src, dst, capacity, done);
                        Some((start, s.end, s.load))
                    }
                    None => Some((start, s.end, s.load)),
                };
            } else if let Some(done) = run.take() {
                consider(&mut best, src, dst, capacity, done);
            }
        }
        if let Some(done) = run {
            consider(&mut best, src, dst, capacity, done);
        }
    }
    let (start, src, dst, end, peak, capacity) = best?;
    let mut flows: Vec<_> = contributions
        .iter()
        .filter(|c| c.src == src && c.dst == dst && c.t_lo < end && c.t_hi + 1 > start)
        .map(|c| c.flow)
        .collect();
    flows.sort_unstable();
    flows.dedup();
    Some(Violation::Congestion {
        src,
        dst,
        start,
        end,
        peak,
        capacity,
        flows,
    })
}

fn consider(
    best: &mut Option<(i64, SwitchId, SwitchId, i64, Capacity, Capacity)>,
    src: SwitchId,
    dst: SwitchId,
    capacity: Capacity,
    (start, end, peak): (i64, i64, Capacity),
) {
    let candidate = (start, src, dst, end, peak, capacity);
    match best {
        Some(b) if (b.0, b.1, b.2) <= (start, src, dst) => {}
        _ => *best = Some(candidate),
    }
}

/// Expands the profiles into per-step congestion events (`t ≥ 0`,
/// `load > capacity`) sorted by `(time, src, dst)` — the simulator's
/// event list, reproduced from intervals for differential testing.
pub(crate) fn congestion_events(
    instance: &UpdateInstance,
    profiles: &BTreeMap<(SwitchId, SwitchId), Vec<IntervalLoad>>,
) -> Vec<(SwitchId, SwitchId, i64, Capacity, Capacity)> {
    let mut out = Vec::new();
    for (&(src, dst), segments) in profiles {
        let capacity = instance.network.capacity(src, dst).unwrap_or(0);
        for s in segments {
            if s.load > capacity {
                for t in s.start.max(0)..s.end {
                    out.push((src, dst, t, s.load, capacity));
                }
            }
        }
    }
    out.sort_by_key(|&(src, dst, t, _, _)| (t, src, dst));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::FlowId;

    fn contrib(t_lo: i64, t_hi: i64, demand: Capacity, flow: u32) -> Contribution {
        Contribution {
            src: SwitchId(0),
            dst: SwitchId(1),
            t_lo,
            t_hi,
            demand,
            flow: FlowId(flow),
        }
    }

    #[test]
    fn merges_overlapping_intervals() {
        let profiles = link_profiles(&[contrib(0, 4, 1, 0), contrib(2, 6, 1, 1)]);
        let segs = &profiles[&(SwitchId(0), SwitchId(1))];
        assert_eq!(
            segs,
            &vec![
                IntervalLoad {
                    start: 0,
                    end: 2,
                    load: 1
                },
                IntervalLoad {
                    start: 2,
                    end: 5,
                    load: 2
                },
                IntervalLoad {
                    start: 5,
                    end: 7,
                    load: 1
                },
            ]
        );
    }

    #[test]
    fn coalesces_equal_adjacent_levels() {
        // Back-to-back intervals at the same level form one segment.
        let profiles = link_profiles(&[contrib(0, 1, 1, 0), contrib(2, 3, 1, 0)]);
        let segs = &profiles[&(SwitchId(0), SwitchId(1))];
        assert_eq!(
            segs,
            &vec![IntervalLoad {
                start: 0,
                end: 4,
                load: 1
            }]
        );
    }

    #[test]
    fn negative_time_overload_is_not_congestion() {
        let mut b = chronus_net::NetworkBuilder::with_switches(2);
        b.add_link(SwitchId(0), SwitchId(1), 1, 1).unwrap();
        let net = b.build();
        let flow = chronus_net::Flow::new(
            FlowId(0),
            1,
            chronus_net::Path::new(vec![SwitchId(0), SwitchId(1)]),
            chronus_net::Path::new(vec![SwitchId(0), SwitchId(1)]),
        )
        .unwrap();
        let inst = chronus_net::UpdateInstance::single(net, flow).unwrap();
        let contributions = [contrib(-5, -1, 2, 0)];
        let profiles = link_profiles(&contributions);
        assert!(first_congestion(&inst, &contributions, &profiles).is_none());
        // The same overload touching step 0 is congestion, clipped at 0.
        let contributions = [contrib(-5, 0, 2, 0)];
        let profiles = link_profiles(&contributions);
        let v = first_congestion(&inst, &contributions, &profiles).unwrap();
        match v {
            Violation::Congestion { start, end, .. } => {
                assert_eq!((start, end), (0, 1));
            }
            other => panic!("expected congestion, got {other:?}"),
        }
    }
}
