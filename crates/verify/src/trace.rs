//! Symbolic cohort tracing over emission intervals.
//!
//! The certifier's engine: instead of walking one cohort per emission
//! step τ (what the simulators do), it walks *intervals* of emission
//! steps at once. All cohorts of a flow emitted in `[lo, hi]` follow
//! the same hop sequence until they reach a switch `v` whose scheduled
//! update time `t_v` splits the interval: a cohort emitted at τ arrives
//! at `v` at `τ + δ` (δ = accumulated delay along the common prefix),
//! so it sees the *new* rule iff `τ + δ ≥ t_v`, i.e. iff
//! `τ ≥ t_v − δ`. The decision is monotone in τ, so the interval
//! splits into at most two sub-intervals at the threshold
//! `τ* = t_v − δ`, each continuing with a uniform rule choice.
//!
//! Every hop of a segment contributes its flow's demand to one link
//! over the *departure-time* interval `[lo + δ, hi + δ]` — the
//! interval-arithmetic facts the congestion sweep in [`crate::sweep`]
//! sums against capacities. Loop, blackhole and hop-budget events are
//! recorded per segment with the affine map `time(τ) = τ + offset`, so
//! exact per-cohort event sets can be reproduced for differential
//! testing without ever running a simulator.
//!
//! This module intentionally re-derives all semantics (emission
//! windows, effective-rule selection, hop budget, event timing) from
//! the paper's model; it shares no code with `chronus-timenet`'s
//! simulators beyond the passive data types (`Schedule`, the network).

use chronus_net::{Capacity, Flow, FlowId, SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::Schedule;
use std::collections::BTreeMap;

/// Horizon slack steps past the analytical horizon, matching the
/// simulator's default safety margin so verdicts line up cell for
/// cell.
pub(crate) const HORIZON_SLACK: TimeStep = 2;

/// One link-load fact: `flow` puts `demand` units on `src → dst` at
/// every departure step in the inclusive interval `[t_lo, t_hi]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Contribution {
    pub src: SwitchId,
    pub dst: SwitchId,
    /// First departure step (inclusive).
    pub t_lo: TimeStep,
    /// Last departure step (inclusive).
    pub t_hi: TimeStep,
    pub demand: Capacity,
    pub flow: FlowId,
}

/// A per-cohort terminal event over an emission interval: every cohort
/// of `flow` emitted at `τ ∈ [tau_lo, tau_hi]` hits the event at
/// `switch` at step `τ + offset`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct EventSpan {
    pub flow: FlowId,
    pub switch: SwitchId,
    pub tau_lo: TimeStep,
    pub tau_hi: TimeStep,
    pub offset: TimeStep,
}

/// The full symbolic account of one `(instance, schedule)` pair:
/// everything the certifier needs to decide consistency and everything
/// a differential test needs to reproduce the simulator's event lists.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    pub(crate) contributions: Vec<Contribution>,
    pub(crate) loops: Vec<EventSpan>,
    pub(crate) blackholes: Vec<EventSpan>,
    /// `(flow, tau_lo, tau_hi)` emission intervals whose cohorts
    /// exhausted the hop budget.
    pub(crate) undelivered: Vec<(FlowId, TimeStep, TimeStep)>,
    /// Schedule makespan clamped to ≥ 0 (the emission-window anchor).
    pub makespan: TimeStep,
    /// Interval segments walked (the certifier's unit of work).
    pub segments_traced: usize,
    /// Individual cohorts the segments jointly cover.
    pub cohorts_covered: u64,
}

impl Analysis {
    /// `true` when no loop, blackhole or hop-budget event exists (the
    /// congestion side is judged separately by the sweep).
    pub fn forwarding_clean(&self) -> bool {
        self.loops.is_empty() && self.blackholes.is_empty() && self.undelivered.is_empty()
    }

    /// Expands loop spans into exact `(flow, emitted_at, switch, time)`
    /// events, one per cohort, in emission order per span.
    pub fn loop_events(&self) -> Vec<(FlowId, TimeStep, SwitchId, TimeStep)> {
        expand(&self.loops)
    }

    /// Expands blackhole spans into `(flow, emitted_at, switch, time)`
    /// events.
    pub fn blackhole_events(&self) -> Vec<(FlowId, TimeStep, SwitchId, TimeStep)> {
        expand(&self.blackholes)
    }

    /// Expands hop-budget spans into `(flow, emitted_at)` pairs.
    pub fn undelivered_events(&self) -> Vec<(FlowId, TimeStep)> {
        let mut out = Vec::new();
        for &(f, lo, hi) in &self.undelivered {
            for tau in lo..=hi {
                out.push((f, tau));
            }
        }
        out
    }

    /// Expands the interval contributions into the dense per-link load
    /// series the simulator reports, for surface-level differential
    /// comparison.
    pub fn load_series(&self) -> BTreeMap<(SwitchId, SwitchId), BTreeMap<TimeStep, Capacity>> {
        let mut out: BTreeMap<(SwitchId, SwitchId), BTreeMap<TimeStep, Capacity>> = BTreeMap::new();
        for c in &self.contributions {
            let series = out.entry((c.src, c.dst)).or_default();
            for t in c.t_lo..=c.t_hi {
                *series.entry(t).or_insert(0) += c.demand;
            }
        }
        out
    }
}

fn expand(spans: &[EventSpan]) -> Vec<(FlowId, TimeStep, SwitchId, TimeStep)> {
    let mut out = Vec::new();
    for s in spans {
        for tau in s.tau_lo..=s.tau_hi {
            out.push((s.flow, tau, s.switch, tau + s.offset));
        }
    }
    out
}

/// One flow's forwarding state, derived independently from the flow's
/// two paths and the schedule (dense per-switch tables like the
/// simulator's, but built from `Path::next_hop`, not shared code).
struct RuleView {
    old_next: Vec<Option<SwitchId>>,
    new_next: Vec<Option<SwitchId>>,
    sched: Vec<Option<TimeStep>>,
}

impl RuleView {
    fn build(flow: &Flow, schedule: &Schedule, switch_count: usize) -> Self {
        let mut old_next = vec![None; switch_count];
        let mut new_next = vec![None; switch_count];
        let mut sched = vec![None; switch_count];
        for w in flow.initial.hops().windows(2) {
            if let (Some(&u), Some(&v)) = (w.first(), w.get(1)) {
                if let Some(slot) = old_next.get_mut(u.index()) {
                    *slot = Some(v);
                }
            }
        }
        for w in flow.fin.hops().windows(2) {
            if let (Some(&u), Some(&v)) = (w.first(), w.get(1)) {
                if let Some(slot) = new_next.get_mut(u.index()) {
                    *slot = Some(v);
                }
            }
        }
        // Entries for switches beyond the network stay off the table:
        // they can never be consulted (but still count toward the
        // schedule's makespan, which the caller reads directly).
        for (f, v, t) in schedule.iter() {
            if f == flow.id {
                if let Some(slot) = sched.get_mut(v.index()) {
                    *slot = Some(t);
                }
            }
        }
        RuleView {
            old_next,
            new_next,
            sched,
        }
    }

    fn old_rule(&self, v: SwitchId) -> Option<SwitchId> {
        self.old_next.get(v.index()).copied().flatten()
    }

    fn new_rule(&self, v: SwitchId) -> Option<SwitchId> {
        self.new_next.get(v.index()).copied().flatten()
    }

    fn sched(&self, v: SwitchId) -> Option<TimeStep> {
        self.sched.get(v.index()).copied().flatten()
    }
}

/// A pending interval segment of the symbolic walk.
struct Segment {
    /// Emission interval (inclusive).
    lo: TimeStep,
    hi: TimeStep,
    /// Current switch.
    at: SwitchId,
    /// Accumulated delay: a cohort emitted at τ sits at `at` at step
    /// `τ + delta`.
    delta: TimeStep,
    /// Hops consumed so far (against the budget).
    hops: usize,
    /// Switches whose rule this walk has already consulted, in order.
    visited: Vec<SwitchId>,
}

/// Runs the symbolic interval trace for every flow of `instance` under
/// `schedule`.
///
/// The emission window per flow is `[−φ(p_init), makespan + φ(p_fin) +
/// slack]` with the makespan clamped to ≥ 0 and two slack steps — the
/// same analytic horizon the simulator enumerates, so the certifier
/// judges exactly the cohorts the simulator would. The hop budget is
/// `|V| + 2`.
pub fn analyze(instance: &UpdateInstance, schedule: &Schedule) -> Analysis {
    let net = &instance.network;
    let makespan = schedule.makespan().unwrap_or(0).max(0);
    let max_hops = net.switch_count() + 2;
    let mut analysis = Analysis {
        makespan,
        ..Analysis::default()
    };

    for flow in &instance.flows {
        let view = RuleView::build(flow, schedule, net.switch_count());
        let phi_init = flow.initial.total_delay(net).unwrap_or(0) as TimeStep;
        let phi_fin = flow.fin.total_delay(net).unwrap_or(0) as TimeStep;
        let first_emit = -phi_init;
        let last_emit = makespan + phi_fin + HORIZON_SLACK;
        analysis.cohorts_covered += (last_emit - first_emit + 1).max(0) as u64;
        let mut worklist = vec![Segment {
            lo: first_emit,
            hi: last_emit,
            at: flow.source(),
            delta: 0,
            hops: 0,
            visited: Vec::new(),
        }];

        while let Some(mut seg) = worklist.pop() {
            analysis.segments_traced += 1;
            loop {
                if seg.hops == max_hops {
                    analysis.undelivered.push((flow.id, seg.lo, seg.hi));
                    break;
                }
                if seg.at == flow.destination() {
                    break;
                }
                seg.visited.push(seg.at);
                // Resolve the effective rule; split the interval when
                // the switch's scheduled flip falls inside it.
                let next = match (view.sched(seg.at), view.new_rule(seg.at)) {
                    (Some(tv), Some(new_next)) => {
                        let threshold = tv - seg.delta;
                        if threshold <= seg.lo {
                            Some(new_next)
                        } else if threshold > seg.hi {
                            view.old_rule(seg.at)
                        } else {
                            // Cohorts emitted at τ ≥ threshold take the
                            // new rule; defer them as a fresh segment.
                            worklist.push(Segment {
                                lo: threshold,
                                hi: seg.hi,
                                at: seg.at,
                                delta: seg.delta,
                                hops: seg.hops,
                                visited: seg.visited.clone(),
                            });
                            seg.hi = threshold - 1;
                            view.old_rule(seg.at)
                        }
                    }
                    _ => view.old_rule(seg.at),
                };
                let Some(next) = next else {
                    analysis.blackholes.push(EventSpan {
                        flow: flow.id,
                        switch: seg.at,
                        tau_lo: seg.lo,
                        tau_hi: seg.hi,
                        offset: seg.delta,
                    });
                    break;
                };
                let Some(delay) = net.delay(seg.at, next) else {
                    // Rule over a non-existent link: guaranteed
                    // blackhole (impossible for validated instances).
                    analysis.blackholes.push(EventSpan {
                        flow: flow.id,
                        switch: seg.at,
                        tau_lo: seg.lo,
                        tau_hi: seg.hi,
                        offset: seg.delta,
                    });
                    break;
                };
                // The hop happens: its load is on the wire even when
                // the cohort then loops (the simulator records the
                // loop-entering hop's load too).
                analysis.contributions.push(Contribution {
                    src: seg.at,
                    dst: next,
                    t_lo: seg.lo + seg.delta,
                    t_hi: seg.hi + seg.delta,
                    demand: flow.demand,
                    flow: flow.id,
                });
                if seg.visited.contains(&next) {
                    analysis.loops.push(EventSpan {
                        flow: flow.id,
                        switch: next,
                        tau_lo: seg.lo,
                        tau_hi: seg.hi,
                        offset: seg.delta + delay as TimeStep,
                    });
                    break;
                }
                seg.delta += delay as TimeStep;
                seg.at = next;
                seg.hops += 1;
            }
        }
    }

    analysis.loops.sort_by_key(|e| (e.flow, e.tau_lo));
    analysis.blackholes.sort_by_key(|e| (e.flow, e.tau_lo));
    analysis.undelivered.sort_unstable();
    analysis
}

/// Symbolic account of a two-phase (tagged) rollout flipping every
/// flow's ingress stamp at `flip_time`: cohorts emitted before the
/// flip traverse the whole old path, cohorts at or after it the whole
/// new path — per-packet consistency by construction, so only the
/// congestion side needs facts. The emission windows around the flip
/// match the two-phase baseline's transient report, making verdicts
/// directly comparable.
pub fn analyze_two_phase(instance: &UpdateInstance, flip_time: TimeStep) -> Analysis {
    let net = &instance.network;
    let mut analysis = Analysis {
        makespan: flip_time.max(0),
        ..Analysis::default()
    };
    for flow in &instance.flows {
        let phi_init = flow.initial.total_delay(net).unwrap_or(0) as TimeStep;
        let phi_fin = flow.fin.total_delay(net).unwrap_or(0) as TimeStep;
        let windows = [
            (
                flip_time - phi_init - HORIZON_SLACK,
                flip_time - 1,
                &flow.initial,
            ),
            (
                flip_time,
                flip_time + phi_fin + phi_init + HORIZON_SLACK,
                &flow.fin,
            ),
        ];
        for (tau_lo, tau_hi, path) in windows {
            if tau_lo > tau_hi {
                continue;
            }
            analysis.segments_traced += 1;
            analysis.cohorts_covered += (tau_hi - tau_lo + 1) as u64;
            let mut delta = 0;
            for (u, v) in path.edges() {
                analysis.contributions.push(Contribution {
                    src: u,
                    dst: v,
                    t_lo: tau_lo + delta,
                    t_hi: tau_hi + delta,
                    demand: flow.demand,
                    flow: flow.id,
                });
                delta += net.delay(u, v).unwrap_or(1) as TimeStep;
            }
        }
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::motivating_example;
    use chronus_timenet::FluidSimulator;

    #[test]
    fn interval_trace_matches_simulator_on_motivating_example() {
        let inst = motivating_example();
        for schedule in [
            Schedule::all_at_zero(&inst),
            Schedule::from_pairs(
                chronus_net::FlowId(0),
                [
                    (SwitchId(1), 0),
                    (SwitchId(2), 1),
                    (SwitchId(0), 2),
                    (SwitchId(3), 2),
                ],
            ),
        ] {
            let analysis = analyze(&inst, &schedule);
            let report = FluidSimulator::check(&inst, &schedule);
            let mut sim_loops: Vec<_> = report
                .loops
                .iter()
                .map(|l| (l.flow, l.emitted_at, l.switch, l.time))
                .collect();
            sim_loops.sort_unstable();
            let mut got = analysis.loop_events();
            got.sort_unstable();
            assert_eq!(got, sim_loops);
            assert_eq!(analysis.load_series(), report.link_loads);
        }
    }

    #[test]
    fn splits_cover_every_cohort_exactly_once() {
        let inst = motivating_example();
        let schedule = Schedule::all_at_zero(&inst);
        let analysis = analyze(&inst, &schedule);
        // Segment τ-intervals per flow partition the emission window:
        // delivered + looped + blackholed + undelivered spans together
        // cover every cohort; loads then account each hop once, which
        // the load_series equality in the test above pins down.
        assert!(analysis.segments_traced >= 1);
        assert!(analysis.cohorts_covered > 0);
    }
}
