//! Certificates and counterexamples.
//!
//! A [`Certificate`] is the machine-checkable artifact the certifier
//! returns for a consistent schedule: per-link interval load bounds
//! (the congestion-freedom proof material) plus per-boundary
//! forwarding-order witnesses (the loop-freedom diagnostic). A
//! [`Violation`] is the minimal counterexample for a rejected one.

use chronus_net::{Capacity, FlowId, SwitchId, TimeStep, UpdateInstance};
use std::fmt;

/// A maximal half-open interval `[start, end)` during which a link
/// carries constant total load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntervalLoad {
    /// First step of the interval (inclusive).
    pub start: TimeStep,
    /// First step past the interval (exclusive).
    pub end: TimeStep,
    /// Total demand departing on the link at every step inside.
    pub load: Capacity,
}

/// One link's complete transient load profile with its capacity bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkBound {
    /// Link source switch.
    pub src: SwitchId,
    /// Link destination switch.
    pub dst: SwitchId,
    /// The link's capacity.
    pub capacity: Capacity,
    /// Peak load over steps ≥ 0 (steps < 0 are pre-update steady
    /// state, feasible by instance validation).
    pub peak: Capacity,
    /// Maximal constant-load intervals, time-sorted, zero-load gaps
    /// omitted.
    pub segments: Vec<IntervalLoad>,
}

/// The forwarding-order witness at one event boundary.
///
/// The union forwarding graph (every flow's effective rule at that
/// instant) either admits a topological order — recorded as the
/// witness — or contains an instantaneous cycle. An instantaneous
/// cycle is *diagnostic, not a verdict*: with non-zero link delays a
/// packet can traverse a momentarily-cyclic rule set without ever
/// revisiting a switch, and conversely transient loops can arise from
/// in-flight cohorts between boundaries. The certifier's loop verdict
/// therefore comes from the symbolic cohort trace; these witnesses
/// localize *where* rule-graph cycles exist for debugging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundaryOrder {
    /// Switches in a topological order of the boundary graph.
    Acyclic(Vec<SwitchId>),
    /// Switches participating in instantaneous rule cycles.
    Cyclic(Vec<SwitchId>),
}

/// One event boundary (a distinct scheduled update time) with its
/// forwarding-order witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundaryWitness {
    /// The boundary instant (an update time from the schedule).
    pub time: TimeStep,
    /// Order witness of the union forwarding graph at `time`.
    pub order: BoundaryOrder,
}

/// Machine-checkable proof object for a consistent `(instance,
/// schedule)` pair. [`Certificate::check`] re-validates the bounds
/// against the instance without re-running any analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// The schedule's makespan clamped to ≥ 0 (emission-window
    /// anchor).
    pub makespan: TimeStep,
    /// Per-link transient load profiles; every peak is ≤ capacity.
    pub link_bounds: Vec<LinkBound>,
    /// Per-boundary forwarding-order witnesses (empty when witnesses
    /// were disabled in [`crate::VerifyConfig`]).
    pub boundaries: Vec<BoundaryWitness>,
    /// Interval segments the symbolic trace walked.
    pub segments_traced: usize,
    /// Individual cohorts those segments jointly cover.
    pub cohorts_covered: u64,
}

impl Certificate {
    /// Re-validates the certificate against `instance`: every bound's
    /// capacity matches the network, its segments are sorted and
    /// disjoint, its recorded peak agrees with its segments, and no
    /// peak exceeds capacity. This is the "machine-checkable" side: a
    /// tampered certificate fails here without any simulation.
    pub fn check(&self, instance: &UpdateInstance) -> Result<(), String> {
        for b in &self.link_bounds {
            let cap = instance
                .network
                .capacity(b.src, b.dst)
                .ok_or_else(|| format!("certificate names missing link {}->{}", b.src, b.dst))?;
            if cap != b.capacity {
                return Err(format!(
                    "capacity mismatch on {}->{}: certificate {} vs network {cap}",
                    b.src, b.dst, b.capacity
                ));
            }
            let mut cursor = TimeStep::MIN;
            let mut peak = 0;
            for s in &b.segments {
                if s.start >= s.end {
                    return Err(format!("empty segment on {}->{}", b.src, b.dst));
                }
                if s.start < cursor {
                    return Err(format!("overlapping segments on {}->{}", b.src, b.dst));
                }
                cursor = s.end;
                if s.end > 0 {
                    peak = peak.max(s.load);
                }
            }
            if peak != b.peak {
                return Err(format!(
                    "peak mismatch on {}->{}: recorded {} vs segments {peak}",
                    b.src, b.dst, b.peak
                ));
            }
            if b.peak > b.capacity {
                return Err(format!(
                    "certified overload on {}->{}: peak {} > capacity {}",
                    b.src, b.dst, b.peak, b.capacity
                ));
            }
        }
        Ok(())
    }

    /// Peak certified load on a link over steps ≥ 0; zero when the
    /// link carries no transient traffic.
    pub fn peak_load(&self, src: SwitchId, dst: SwitchId) -> Capacity {
        self.link_bounds
            .iter()
            .find(|b| b.src == src && b.dst == dst)
            .map(|b| b.peak)
            .unwrap_or(0)
    }

    /// Highest `peak / capacity` ratio across the certified links.
    pub fn peak_utilization(&self) -> f64 {
        self.link_bounds
            .iter()
            .filter(|b| b.capacity > 0)
            .map(|b| b.peak as f64 / b.capacity as f64)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "certificate: makespan {}, {} links bounded (peak util {:.0}%), \
             {} boundaries, {} segments over {} cohorts",
            self.makespan,
            self.link_bounds.len(),
            self.peak_utilization() * 100.0,
            self.boundaries.len(),
            self.segments_traced,
            self.cohorts_covered
        )
    }
}

/// Minimal counterexample for a rejected schedule.
///
/// When several violation kinds coexist the certifier reports them in
/// severity order congestion → loop → blackhole → undelivered, each
/// with the earliest offending instant and the half-open time interval
/// over which the violation persists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A link's total load exceeds its capacity.
    Congestion {
        /// Link source switch.
        src: SwitchId,
        /// Link destination switch.
        dst: SwitchId,
        /// First overloaded step (≥ 0).
        start: TimeStep,
        /// First step past the overloaded run (exclusive).
        end: TimeStep,
        /// Peak load inside the run.
        peak: Capacity,
        /// The link's capacity.
        capacity: Capacity,
        /// Flows contributing load during the run, ascending.
        flows: Vec<FlowId>,
    },
    /// A cohort revisits a switch (transient forwarding loop).
    ForwardingLoop {
        /// The looping flow.
        flow: FlowId,
        /// The revisited switch.
        switch: SwitchId,
        /// Emission interval (inclusive) of the looping cohorts.
        emitted: (TimeStep, TimeStep),
        /// Step at which the earliest such cohort re-enters `switch`.
        time: TimeStep,
    },
    /// A cohort reaches a switch with no applicable rule.
    Blackhole {
        /// The affected flow.
        flow: FlowId,
        /// The ruleless switch.
        switch: SwitchId,
        /// Emission interval (inclusive) of the dropped cohorts.
        emitted: (TimeStep, TimeStep),
        /// Step at which the earliest such cohort arrives there.
        time: TimeStep,
    },
    /// A cohort exhausts the hop budget without delivery.
    Undelivered {
        /// The affected flow.
        flow: FlowId,
        /// Emission interval (inclusive) of the stranded cohorts.
        emitted: (TimeStep, TimeStep),
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Congestion {
                src,
                dst,
                start,
                end,
                peak,
                capacity,
                flows,
            } => write!(
                f,
                "congestion on link {src}->{dst} during [{start}, {end}): \
                 load {peak} > capacity {capacity} (flows {flows:?})"
            ),
            Violation::ForwardingLoop {
                flow,
                switch,
                emitted,
                time,
            } => write!(
                f,
                "forwarding loop: flow {flow:?} cohorts emitted in \
                 [{}, {}] revisit switch {switch} from step {time}",
                emitted.0, emitted.1
            ),
            Violation::Blackhole {
                flow,
                switch,
                emitted,
                time,
            } => write!(
                f,
                "blackhole: flow {flow:?} cohorts emitted in [{}, {}] \
                 reach ruleless switch {switch} from step {time}",
                emitted.0, emitted.1
            ),
            Violation::Undelivered { flow, emitted } => write!(
                f,
                "undelivered: flow {flow:?} cohorts emitted in [{}, {}] \
                 exhaust the hop budget",
                emitted.0, emitted.1
            ),
        }
    }
}

impl std::error::Error for Violation {}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{Flow, NetworkBuilder, Path};

    fn tiny_instance() -> UpdateInstance {
        let mut b = NetworkBuilder::with_switches(2);
        b.add_link(SwitchId(0), SwitchId(1), 3, 1).unwrap();
        let net = b.build();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![SwitchId(0), SwitchId(1)]),
            Path::new(vec![SwitchId(0), SwitchId(1)]),
        )
        .unwrap();
        UpdateInstance::single(net, flow).unwrap()
    }

    fn cert() -> Certificate {
        Certificate {
            makespan: 0,
            link_bounds: vec![LinkBound {
                src: SwitchId(0),
                dst: SwitchId(1),
                capacity: 3,
                peak: 2,
                segments: vec![
                    IntervalLoad {
                        start: -2,
                        end: 1,
                        load: 1,
                    },
                    IntervalLoad {
                        start: 1,
                        end: 4,
                        load: 2,
                    },
                ],
            }],
            boundaries: Vec::new(),
            segments_traced: 1,
            cohorts_covered: 6,
        }
    }

    #[test]
    fn check_accepts_consistent_certificate() {
        let inst = tiny_instance();
        assert_eq!(cert().check(&inst), Ok(()));
        assert_eq!(cert().peak_load(SwitchId(0), SwitchId(1)), 2);
    }

    #[test]
    fn check_rejects_tampering() {
        let inst = tiny_instance();
        let mut c = cert();
        c.link_bounds[0].peak = 1; // understate the peak
        assert!(c.check(&inst).unwrap_err().contains("peak mismatch"));
        let mut c = cert();
        c.link_bounds[0].capacity = 99; // overstate capacity
        assert!(c.check(&inst).unwrap_err().contains("capacity mismatch"));
        let mut c = cert();
        c.link_bounds[0].segments[1].start = -3; // overlap
        assert!(c.check(&inst).unwrap_err().contains("overlapping"));
        let mut c = cert();
        c.link_bounds[0].segments[1].load = 9;
        c.link_bounds[0].peak = 9; // consistent but over capacity
        assert!(c.check(&inst).unwrap_err().contains("certified overload"));
    }

    #[test]
    fn violation_display_names_link_and_interval() {
        let v = Violation::Congestion {
            src: SwitchId(2),
            dst: SwitchId(3),
            start: 1,
            end: 4,
            peak: 2,
            capacity: 1,
            flows: vec![FlowId(0)],
        };
        let text = v.to_string();
        assert!(text.contains("s2->s3"), "{text}");
        assert!(text.contains("[1, 4)"), "{text}");
    }
}
