//! Per-boundary forwarding graphs and topological-order witnesses.
//!
//! The schedule's distinct update times partition the timeline into
//! epochs. At each boundary instant this module materializes the union
//! forwarding graph — every flow's effective rule edge at that instant
//! — and attempts a topological order (Kahn's algorithm, hand-rolled
//! to keep the certifier free of simulator and graph-library code).
//! See [`crate::BoundaryOrder`] for why these witnesses are
//! diagnostics rather than the loop verdict itself.

use crate::certificate::{BoundaryOrder, BoundaryWitness};
use chronus_net::{SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::Schedule;
use std::collections::{BTreeMap, BTreeSet};

/// The effective next hop of `flow` at switch `u` at instant `t`:
/// the new rule once `t` has reached the switch's scheduled time (and
/// a new rule exists), the old rule otherwise.
fn effective_edge(
    flow: &chronus_net::Flow,
    schedule: &Schedule,
    u: SwitchId,
    t: TimeStep,
) -> Option<SwitchId> {
    let new_next = flow.fin.next_hop(u);
    match (schedule.get(flow.id, u), new_next) {
        (Some(tv), Some(next)) if t >= tv => Some(next),
        _ => flow.initial.next_hop(u),
    }
}

/// Builds the boundary witnesses for every distinct update time in
/// `schedule`. The boundary list is empty for an empty schedule.
pub(crate) fn boundary_witnesses(
    instance: &UpdateInstance,
    schedule: &Schedule,
) -> Vec<BoundaryWitness> {
    let times: BTreeSet<TimeStep> = schedule.iter().map(|(_, _, t)| t).collect();
    times
        .into_iter()
        .map(|t| BoundaryWitness {
            time: t,
            order: order_at(instance, schedule, t),
        })
        .collect()
}

/// Topological order of the union forwarding graph at instant `t`, or
/// the set of switches on instantaneous cycles.
pub(crate) fn order_at(
    instance: &UpdateInstance,
    schedule: &Schedule,
    t: TimeStep,
) -> BoundaryOrder {
    let mut edges: BTreeSet<(SwitchId, SwitchId)> = BTreeSet::new();
    let mut nodes: BTreeSet<SwitchId> = BTreeSet::new();
    for flow in &instance.flows {
        for path in [&flow.initial, &flow.fin] {
            for &u in path.hops() {
                if u == flow.destination() {
                    continue;
                }
                nodes.insert(u);
                if let Some(v) = effective_edge(flow, schedule, u, t) {
                    nodes.insert(v);
                    edges.insert((u, v));
                }
            }
        }
    }
    // Kahn's algorithm over the union graph.
    let mut indegree: BTreeMap<SwitchId, usize> = nodes.iter().map(|&n| (n, 0)).collect();
    let mut out: BTreeMap<SwitchId, Vec<SwitchId>> = BTreeMap::new();
    for &(u, v) in &edges {
        out.entry(u).or_default().push(v);
        if let Some(d) = indegree.get_mut(&v) {
            *d += 1;
        }
    }
    let mut ready: Vec<SwitchId> = indegree
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(n) = ready.pop() {
        order.push(n);
        for v in out.get(&n).into_iter().flatten() {
            if let Some(d) = indegree.get_mut(v) {
                *d -= 1;
                if *d == 0 {
                    ready.push(*v);
                }
            }
        }
    }
    if order.len() == nodes.len() {
        BoundaryOrder::Acyclic(order)
    } else {
        let placed: BTreeSet<SwitchId> = order.into_iter().collect();
        BoundaryOrder::Cyclic(nodes.difference(&placed).copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{motivating_example, FlowId};

    #[test]
    fn staged_schedule_boundaries_are_acyclic() {
        let inst = motivating_example();
        let s = Schedule::from_pairs(
            FlowId(0),
            [
                (SwitchId(1), 0),
                (SwitchId(2), 1),
                (SwitchId(0), 2),
                (SwitchId(3), 2),
            ],
        );
        let witnesses = boundary_witnesses(&inst, &s);
        assert_eq!(witnesses.len(), 3); // distinct times 0, 1, 2
        for w in &witnesses {
            assert!(
                matches!(w.order, BoundaryOrder::Acyclic(_)),
                "boundary {} unexpectedly cyclic",
                w.time
            );
        }
    }

    #[test]
    fn wrong_order_boundary_shows_a_cycle() {
        // Updating v4 before v3 puts edges v3→v4 (old) and v4→v3 (new)
        // in the same instantaneous graph.
        let inst = motivating_example();
        let s = Schedule::from_pairs(
            FlowId(0),
            [
                (SwitchId(1), 0),
                (SwitchId(3), 1),
                (SwitchId(0), 2),
                (SwitchId(2), 3),
            ],
        );
        let witnesses = boundary_witnesses(&inst, &s);
        assert!(witnesses
            .iter()
            .any(|w| matches!(&w.order, BoundaryOrder::Cyclic(nodes) if !nodes.is_empty())));
    }
}
