//! JSON codec for certificates, slack certificates and violations.
//!
//! The daemon's write-ahead journal persists each armed update's
//! proof material — the [`Certificate`] and, when present, the
//! [`SlackCertificate`] — next to the schedule, so a restarted
//! controller can re-check consistency *from the stored artifacts*
//! before re-arming anything. These encoders are hand-built on the
//! `serde_json` value model (no derives in the workspace) with the
//! round-trip invariant `decode(encode(x)) == x`, pinned by proptests
//! in `tests/codec_props.rs`.
//!
//! `Capacity`/`TimeStep` values may exceed the shim's exact-`f64`
//! integer range and go through `Value::{from_u64_exact,
//! from_i64_exact}`; decoding accepts either the number or the
//! decimal-string form.

use crate::certificate::{BoundaryOrder, BoundaryWitness, IntervalLoad, LinkBound, Violation};
use crate::{Certificate, SlackCertificate};
use chronus_net::{FlowId, SwitchId};
use chronus_timenet::{schedule_from_value, schedule_to_value};
use serde_json::{Map, Value};
use std::fmt;

/// A structural error while decoding a certificate document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertCodecError(String);

impl CertCodecError {
    fn new(msg: impl Into<String>) -> Self {
        CertCodecError(msg.into())
    }
}

impl fmt::Display for CertCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "certificate codec error: {}", self.0)
    }
}

impl std::error::Error for CertCodecError {}

type R<T> = Result<T, CertCodecError>;

fn member<'v>(v: &'v Value, key: &str) -> R<&'v Value> {
    v.get(key)
        .ok_or_else(|| CertCodecError::new(format!("missing field `{key}`")))
}

fn field_u64(v: &Value, key: &str) -> R<u64> {
    member(v, key)?
        .as_u64_exact()
        .ok_or_else(|| CertCodecError::new(format!("field `{key}` is not a u64")))
}

fn field_i64(v: &Value, key: &str) -> R<i64> {
    member(v, key)?
        .as_i64_exact()
        .ok_or_else(|| CertCodecError::new(format!("field `{key}` is not an i64")))
}

fn field_usize(v: &Value, key: &str) -> R<usize> {
    usize::try_from(field_u64(v, key)?)
        .map_err(|_| CertCodecError::new(format!("field `{key}` exceeds usize")))
}

fn field_array<'v>(v: &'v Value, key: &str) -> R<&'v Vec<Value>> {
    member(v, key)?
        .as_array()
        .ok_or_else(|| CertCodecError::new(format!("field `{key}` is not an array")))
}

fn switch_id(v: &Value, what: &str) -> R<SwitchId> {
    v.as_u64_exact()
        .and_then(|raw| u32::try_from(raw).ok())
        .map(SwitchId)
        .ok_or_else(|| CertCodecError::new(format!("{what} is not a switch id")))
}

fn switch_vec(v: &Value, what: &str) -> R<Vec<SwitchId>> {
    v.as_array()
        .ok_or_else(|| CertCodecError::new(format!("{what} is not an array")))?
        .iter()
        .map(|s| switch_id(s, what))
        .collect()
}

fn switch_vec_value(switches: &[SwitchId]) -> Value {
    Value::Array(
        switches
            .iter()
            .map(|s| Value::Number(f64::from(s.0)))
            .collect(),
    )
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in entries {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

/// Encodes a consistency certificate; inverse of
/// [`certificate_from_value`].
pub fn certificate_to_value(cert: &Certificate) -> Value {
    let link_bounds = cert
        .link_bounds
        .iter()
        .map(|b| {
            let segments = b
                .segments
                .iter()
                .map(|s| {
                    Value::Array(vec![
                        Value::from_i64_exact(s.start),
                        Value::from_i64_exact(s.end),
                        Value::from_u64_exact(s.load),
                    ])
                })
                .collect();
            obj(vec![
                ("src", Value::Number(f64::from(b.src.0))),
                ("dst", Value::Number(f64::from(b.dst.0))),
                ("capacity", Value::from_u64_exact(b.capacity)),
                ("peak", Value::from_u64_exact(b.peak)),
                ("segments", Value::Array(segments)),
            ])
        })
        .collect();
    let boundaries = cert
        .boundaries
        .iter()
        .map(|w| {
            let (tag, switches) = match &w.order {
                BoundaryOrder::Acyclic(s) => ("acyclic", s),
                BoundaryOrder::Cyclic(s) => ("cyclic", s),
            };
            obj(vec![
                ("time", Value::from_i64_exact(w.time)),
                (tag, switch_vec_value(switches)),
            ])
        })
        .collect();
    obj(vec![
        ("makespan", Value::from_i64_exact(cert.makespan)),
        ("link_bounds", Value::Array(link_bounds)),
        ("boundaries", Value::Array(boundaries)),
        (
            "segments_traced",
            Value::from_u64_exact(cert.segments_traced as u64),
        ),
        (
            "cohorts_covered",
            Value::from_u64_exact(cert.cohorts_covered),
        ),
    ])
}

/// Decodes a certificate written by [`certificate_to_value`].
pub fn certificate_from_value(v: &Value) -> R<Certificate> {
    let link_bounds = field_array(v, "link_bounds")?
        .iter()
        .map(|b| {
            let segments = field_array(b, "segments")?
                .iter()
                .map(|s| {
                    let triple = s.as_array().filter(|a| a.len() == 3).ok_or_else(|| {
                        CertCodecError::new("segment is not a [start, end, load] triple")
                    })?;
                    let at = |i: usize| {
                        triple
                            .get(i)
                            .ok_or_else(|| CertCodecError::new("segment too short"))
                    };
                    Ok(IntervalLoad {
                        start: at(0)?
                            .as_i64_exact()
                            .ok_or_else(|| CertCodecError::new("segment start not an i64"))?,
                        end: at(1)?
                            .as_i64_exact()
                            .ok_or_else(|| CertCodecError::new("segment end not an i64"))?,
                        load: at(2)?
                            .as_u64_exact()
                            .ok_or_else(|| CertCodecError::new("segment load not a u64"))?,
                    })
                })
                .collect::<R<Vec<_>>>()?;
            Ok(LinkBound {
                src: switch_id(member(b, "src")?, "link src")?,
                dst: switch_id(member(b, "dst")?, "link dst")?,
                capacity: field_u64(b, "capacity")?,
                peak: field_u64(b, "peak")?,
                segments,
            })
        })
        .collect::<R<Vec<_>>>()?;
    let boundaries = field_array(v, "boundaries")?
        .iter()
        .map(|w| {
            let order = if let Some(s) = w.get("acyclic") {
                BoundaryOrder::Acyclic(switch_vec(s, "`acyclic`")?)
            } else if let Some(s) = w.get("cyclic") {
                BoundaryOrder::Cyclic(switch_vec(s, "`cyclic`")?)
            } else {
                return Err(CertCodecError::new(
                    "boundary witness carries neither `acyclic` nor `cyclic`",
                ));
            };
            Ok(BoundaryWitness {
                time: field_i64(w, "time")?,
                order,
            })
        })
        .collect::<R<Vec<_>>>()?;
    Ok(Certificate {
        makespan: field_i64(v, "makespan")?,
        link_bounds,
        boundaries,
        segments_traced: field_usize(v, "segments_traced")?,
        cohorts_covered: field_u64(v, "cohorts_covered")?,
    })
}

fn emitted_to_value(emitted: (i64, i64)) -> Value {
    Value::Array(vec![
        Value::from_i64_exact(emitted.0),
        Value::from_i64_exact(emitted.1),
    ])
}

fn emitted_from_value(v: &Value, what: &str) -> R<(i64, i64)> {
    let pair = v
        .as_array()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| CertCodecError::new(format!("{what} is not a [start, end] pair")))?;
    let at = |i: usize| {
        pair.get(i)
            .and_then(Value::as_i64_exact)
            .ok_or_else(|| CertCodecError::new(format!("{what} bound is not an i64")))
    };
    Ok((at(0)?, at(1)?))
}

/// Encodes a violation as a `{"kind": ...}`-tagged object; inverse of
/// [`violation_from_value`].
pub fn violation_to_value(violation: &Violation) -> Value {
    match violation {
        Violation::Congestion {
            src,
            dst,
            start,
            end,
            peak,
            capacity,
            flows,
        } => obj(vec![
            ("kind", Value::String("congestion".into())),
            ("src", Value::Number(f64::from(src.0))),
            ("dst", Value::Number(f64::from(dst.0))),
            ("start", Value::from_i64_exact(*start)),
            ("end", Value::from_i64_exact(*end)),
            ("peak", Value::from_u64_exact(*peak)),
            ("capacity", Value::from_u64_exact(*capacity)),
            (
                "flows",
                Value::Array(
                    flows
                        .iter()
                        .map(|f| Value::Number(f64::from(f.0)))
                        .collect(),
                ),
            ),
        ]),
        Violation::ForwardingLoop {
            flow,
            switch,
            emitted,
            time,
        } => obj(vec![
            ("kind", Value::String("forwarding_loop".into())),
            ("flow", Value::Number(f64::from(flow.0))),
            ("switch", Value::Number(f64::from(switch.0))),
            ("emitted", emitted_to_value(*emitted)),
            ("time", Value::from_i64_exact(*time)),
        ]),
        Violation::Blackhole {
            flow,
            switch,
            emitted,
            time,
        } => obj(vec![
            ("kind", Value::String("blackhole".into())),
            ("flow", Value::Number(f64::from(flow.0))),
            ("switch", Value::Number(f64::from(switch.0))),
            ("emitted", emitted_to_value(*emitted)),
            ("time", Value::from_i64_exact(*time)),
        ]),
        Violation::Undelivered { flow, emitted } => obj(vec![
            ("kind", Value::String("undelivered".into())),
            ("flow", Value::Number(f64::from(flow.0))),
            ("emitted", emitted_to_value(*emitted)),
        ]),
    }
}

fn flow_id(v: &Value, what: &str) -> R<FlowId> {
    v.as_u64_exact()
        .and_then(|raw| u32::try_from(raw).ok())
        .map(FlowId)
        .ok_or_else(|| CertCodecError::new(format!("{what} is not a flow id")))
}

/// Decodes a violation written by [`violation_to_value`].
pub fn violation_from_value(v: &Value) -> R<Violation> {
    let kind = member(v, "kind")?
        .as_str()
        .ok_or_else(|| CertCodecError::new("`kind` is not a string"))?;
    match kind {
        "congestion" => Ok(Violation::Congestion {
            src: switch_id(member(v, "src")?, "src")?,
            dst: switch_id(member(v, "dst")?, "dst")?,
            start: field_i64(v, "start")?,
            end: field_i64(v, "end")?,
            peak: field_u64(v, "peak")?,
            capacity: field_u64(v, "capacity")?,
            flows: field_array(v, "flows")?
                .iter()
                .map(|f| flow_id(f, "flow"))
                .collect::<R<Vec<_>>>()?,
        }),
        "forwarding_loop" => Ok(Violation::ForwardingLoop {
            flow: flow_id(member(v, "flow")?, "flow")?,
            switch: switch_id(member(v, "switch")?, "switch")?,
            emitted: emitted_from_value(member(v, "emitted")?, "`emitted`")?,
            time: field_i64(v, "time")?,
        }),
        "blackhole" => Ok(Violation::Blackhole {
            flow: flow_id(member(v, "flow")?, "flow")?,
            switch: switch_id(member(v, "switch")?, "switch")?,
            emitted: emitted_from_value(member(v, "emitted")?, "`emitted`")?,
            time: field_i64(v, "time")?,
        }),
        "undelivered" => Ok(Violation::Undelivered {
            flow: flow_id(member(v, "flow")?, "flow")?,
            emitted: emitted_from_value(member(v, "emitted")?, "`emitted`")?,
        }),
        other => Err(CertCodecError::new(format!(
            "unknown violation kind `{other}`"
        ))),
    }
}

/// Encodes a slack certificate (including the blocking counterexample
/// when the search recorded one); inverse of [`slack_from_value`].
pub fn slack_to_value(slack: &SlackCertificate) -> Value {
    let per_switch = slack
        .per_switch
        .iter()
        .map(|(s, k)| {
            Value::Array(vec![
                Value::Number(f64::from(s.0)),
                Value::from_i64_exact(*k),
            ])
        })
        .collect();
    let counterexample = match &slack.counterexample {
        None => Value::Null,
        Some((schedule, violation)) => obj(vec![
            ("schedule", schedule_to_value(schedule)),
            ("violation", violation_to_value(violation)),
        ]),
    };
    obj(vec![
        ("slack_steps", Value::from_i64_exact(slack.slack_steps)),
        (
            "schedules_checked",
            Value::from_u64_exact(slack.schedules_checked as u64),
        ),
        ("budget_exhausted", Value::Bool(slack.budget_exhausted)),
        ("per_switch", Value::Array(per_switch)),
        ("counterexample", counterexample),
    ])
}

/// Decodes a slack certificate written by [`slack_to_value`].
pub fn slack_from_value(v: &Value) -> R<SlackCertificate> {
    let per_switch = field_array(v, "per_switch")?
        .iter()
        .map(|p| {
            let pair = p
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| CertCodecError::new("per_switch entry is not a pair"))?;
            let s = switch_id(
                pair.first()
                    .ok_or_else(|| CertCodecError::new("per_switch pair too short"))?,
                "per_switch switch",
            )?;
            let k = pair
                .get(1)
                .and_then(Value::as_i64_exact)
                .ok_or_else(|| CertCodecError::new("per_switch tolerance not an i64"))?;
            Ok((s, k))
        })
        .collect::<R<Vec<_>>>()?;
    let counterexample = match member(v, "counterexample")? {
        Value::Null => None,
        ce => {
            let schedule = schedule_from_value(member(ce, "schedule")?)
                .map_err(|e| CertCodecError::new(e.to_string()))?;
            let violation = violation_from_value(member(ce, "violation")?)?;
            Some((schedule, violation))
        }
    };
    Ok(SlackCertificate {
        slack_steps: field_i64(v, "slack_steps")?,
        schedules_checked: field_usize(v, "schedules_checked")?,
        budget_exhausted: member(v, "budget_exhausted")?
            .as_bool()
            .ok_or_else(|| CertCodecError::new("`budget_exhausted` is not a bool"))?,
        per_switch,
        counterexample,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify;
    use chronus_net::motivating_example;
    use chronus_timenet::Schedule;

    /// Exhaustively searches small per-switch time assignments for a
    /// schedule the certifier vouches for (the motivating example has
    /// consistent timed orders; which one is the planner's business,
    /// not this codec test's).
    fn certified_fixture() -> (chronus_net::UpdateInstance, Schedule, Certificate) {
        let inst = motivating_example();
        let entries: Vec<_> = Schedule::all_at_zero(&inst).iter().collect();
        let n = entries.len();
        let mut assignment = vec![0i64; n];
        loop {
            let mut schedule = Schedule::all_at_zero(&inst);
            for (k, (f, s, _)) in entries.iter().enumerate() {
                schedule.set(*f, *s, assignment[k]);
            }
            if let Ok(cert) = certify(&inst, &schedule) {
                return (inst, schedule, cert);
            }
            let mut k = 0;
            loop {
                assignment[k] += 1;
                if assignment[k] <= n as i64 {
                    break;
                }
                assignment[k] = 0;
                k += 1;
                assert!(k < n, "no certified schedule in the search box");
            }
        }
    }

    /// A real certificate from the certifier round-trips, and the
    /// decoded copy still passes `Certificate::check`.
    #[test]
    fn real_certificate_round_trips_and_still_checks() {
        let (inst, _schedule, cert) = certified_fixture();
        let text = serde_json::to_string(&certificate_to_value(&cert)).unwrap();
        let back = certificate_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, cert);
        assert_eq!(back.check(&inst), Ok(()));
    }

    #[test]
    fn tampered_documents_fail_structurally_or_semantically() {
        let (inst, _schedule, cert) = certified_fixture();
        let v = certificate_to_value(&cert);
        // Structural damage: drop a required field.
        let mut m = v.as_object().unwrap().clone();
        m.remove("makespan");
        assert!(certificate_from_value(&Value::Object(m)).is_err());
        // Semantic damage survives decode but fails the checker.
        let mut damaged = certificate_from_value(&v).unwrap();
        if let Some(b) = damaged.link_bounds.first_mut() {
            b.capacity += 1;
            assert!(damaged.check(&inst).is_err());
        }
    }
}
