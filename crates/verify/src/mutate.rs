//! Schedule mutation helper for certifier negative testing.
//!
//! A certifier that only ever sees solver-produced (correct) schedules
//! is untested on the reject path. This module derives small,
//! deliberate corruptions of a known-good schedule; tests feed them
//! back through [`crate::certify`] and assert a minimal
//! [`Violation`] comes out.

use crate::certificate::Violation;
use crate::certify;
use chronus_net::{FlowId, SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::Schedule;

/// One deliberate corruption of a schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Collapse every update to time 0 (the naive simultaneous plan).
    AllAtZero,
    /// Move one switch's update by `delta` steps.
    Shift {
        /// The flow whose entry moves.
        flow: FlowId,
        /// The switch whose entry moves.
        switch: SwitchId,
        /// Signed displacement in steps.
        delta: TimeStep,
    },
    /// Exchange the update times of two switches of one flow.
    Swap {
        /// The flow whose entries are exchanged.
        flow: FlowId,
        /// First switch.
        a: SwitchId,
        /// Second switch.
        b: SwitchId,
    },
    /// Remove one switch's entry entirely.
    Drop {
        /// The flow whose entry is removed.
        flow: FlowId,
        /// The switch whose entry is removed.
        switch: SwitchId,
    },
}

/// Applies `mutation` to a copy of `schedule`.
pub fn apply_mutation(schedule: &Schedule, instance: &UpdateInstance, m: &Mutation) -> Schedule {
    let mut out = schedule.clone();
    match m {
        Mutation::AllAtZero => out = Schedule::all_at_zero(instance),
        Mutation::Shift {
            flow,
            switch,
            delta,
        } => {
            if let Some(t) = out.get(*flow, *switch) {
                out.set(*flow, *switch, t + delta);
            }
        }
        Mutation::Swap { flow, a, b } => {
            if let (Some(ta), Some(tb)) = (out.get(*flow, *a), out.get(*flow, *b)) {
                out.set(*flow, *a, tb);
                out.set(*flow, *b, ta);
            }
        }
        Mutation::Drop { flow, switch } => {
            out.unset(*flow, *switch);
        }
    }
    out
}

/// The candidate corruption pool for `schedule`: the simultaneous
/// collapse, large forward/backward shifts of every entry, all
/// adjacent same-flow swaps, and every single-entry drop.
pub fn mutations(schedule: &Schedule) -> Vec<Mutation> {
    let mut out = vec![Mutation::AllAtZero];
    let entries: Vec<_> = schedule.iter().collect();
    for &(flow, switch, _) in &entries {
        for delta in [-8, 8] {
            out.push(Mutation::Shift {
                flow,
                switch,
                delta,
            });
        }
        out.push(Mutation::Drop { flow, switch });
    }
    for pair in entries.windows(2) {
        if let (Some(&(fa, a, _)), Some(&(fb, b, _))) = (pair.first(), pair.get(1)) {
            if fa == fb && a != b {
                out.push(Mutation::Swap { flow: fa, a, b });
            }
        }
    }
    out
}

/// Certifies every candidate mutant of `schedule` and returns the
/// first one the certifier rejects, with its violation. `None` means
/// every mutant in the pool happened to stay consistent (possible on
/// trivially slack instances).
pub fn find_rejected_mutant(
    instance: &UpdateInstance,
    schedule: &Schedule,
) -> Option<(Mutation, Schedule, Violation)> {
    for m in mutations(schedule) {
        let mutant = apply_mutation(schedule, instance, &m);
        if let Err(v) = certify(instance, &mutant) {
            return Some((m, mutant, v));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::motivating_example;

    #[test]
    fn motivating_example_mutants_are_rejected() {
        let inst = motivating_example();
        // The known-consistent staged schedule.
        let s = Schedule::from_pairs(
            FlowId(0),
            [
                (SwitchId(1), 0),
                (SwitchId(2), 1),
                (SwitchId(0), 2),
                (SwitchId(3), 2),
            ],
        );
        assert!(certify(&inst, &s).is_ok());
        let (mutation, mutant, violation) =
            find_rejected_mutant(&inst, &s).expect("some mutant must break consistency");
        assert_ne!(
            &mutant, &s,
            "mutation {mutation:?} must change the schedule"
        );
        // The violation is a concrete, named counterexample.
        let text = violation.to_string();
        assert!(!text.is_empty());
    }
}
