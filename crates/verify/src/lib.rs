//! `chronus-verify`: an independent static certifier for Chronus
//! update schedules.
//!
//! Every scheduler in this workspace gates its search with the fluid
//! simulator family (`chronus-timenet`), so a bug shared by those
//! simulators would pass silently through every solver *and* every
//! solver test. This crate is the second opinion: given an
//! `(UpdateInstance, Schedule)` pair it decides transient consistency
//! **without running any simulator**, by
//!
//! 1. **interval arithmetic** for congestion-freedom — each flow's
//!    cohorts are traced symbolically over whole emission intervals
//!    ([`mod@trace`]), yielding per-link half-open load intervals that a
//!    sweep-line sums against capacities ([`mod@sweep`]); and
//! 2. a **symbolic loop/blackhole analysis** — the same interval trace
//!    proves every cohort either reaches its destination or pinpoints
//!    the revisited/ruleless switch, with per-boundary forwarding
//!    graphs and topological-order witnesses ([`mod@boundary`])
//!    recorded as diagnostics.
//!
//! The result is either a machine-checkable [`Certificate`]
//! (re-validatable via [`Certificate::check`]) or a minimal
//! [`Violation`] counterexample naming the offending link and time
//! interval (or looping/blackholed switch). Differential property
//! tests pin this crate's verdicts against `FluidSimulator` — the two
//! share only passive data types, so agreement is meaningful evidence
//! and any disagreement is a found bug in one of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

mod boundary;
mod certificate;
pub mod codec;
mod compose;
mod mutate;
mod slack;
mod sweep;
mod trace;

pub use certificate::{
    BoundaryOrder, BoundaryWitness, Certificate, IntervalLoad, LinkBound, Violation,
};
pub use compose::compose_certificates;
pub use codec::{
    certificate_from_value, certificate_to_value, slack_from_value, slack_to_value,
    violation_from_value, violation_to_value, CertCodecError,
};
pub use mutate::{apply_mutation, find_rejected_mutant, mutations, Mutation};
pub use slack::{
    certify_with_slack, check_slack, slack_certificate, SlackCertificate, SlackConfig,
};
pub use trace::{analyze, analyze_two_phase, Analysis};

use chronus_net::{SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::Schedule;

/// Certifier knobs, embedded by solver configs so callers can opt out
/// of post-hoc certification in hot benchmark loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Run the certifier at all. Solvers treat `false` as "return no
    /// certificate"; the certifier itself never consults this.
    pub enabled: bool,
    /// Record per-boundary forwarding-order witnesses in the
    /// certificate (skipping them keeps only the load bounds, which
    /// the verdict needs anyway).
    pub witnesses: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            enabled: true,
            witnesses: true,
        }
    }
}

impl VerifyConfig {
    /// Certification fully disabled (benchmark mode).
    pub fn disabled() -> Self {
        VerifyConfig {
            enabled: false,
            witnesses: false,
        }
    }
}

/// Certifies `schedule` against `instance` with default config.
///
/// Returns the [`Certificate`] when every cohort in the transient
/// window is delivered loop-free and every link stays within capacity
/// at every step ≥ 0; otherwise the minimal [`Violation`].
///
/// # Example
///
/// ```
/// use chronus_net::motivating_example;
/// use chronus_timenet::Schedule;
///
/// let inst = motivating_example();
/// // Simultaneous update: transient loops, rejected.
/// assert!(chronus_verify::certify(&inst, &Schedule::all_at_zero(&inst)).is_err());
/// ```
pub fn certify(instance: &UpdateInstance, schedule: &Schedule) -> Result<Certificate, Violation> {
    certify_with(instance, schedule, &VerifyConfig::default())
}

/// Certifies `schedule` with explicit config (see [`VerifyConfig`];
/// `enabled` is the caller's gate and is ignored here).
pub fn certify_with(
    instance: &UpdateInstance,
    schedule: &Schedule,
    config: &VerifyConfig,
) -> Result<Certificate, Violation> {
    let mut span = chronus_trace::span!(
        "verify.certify",
        flows = instance.flows.len(),
        witnesses = config.witnesses
    )
    .entered();
    let analysis = analyze(instance, schedule);
    let boundaries = if config.witnesses {
        boundary::boundary_witnesses(instance, schedule)
    } else {
        Vec::new()
    };
    let result = seal(instance, &analysis, boundaries);
    if span.is_recording() {
        span.record("certified", result.is_ok());
        if let Err(violation) = &result {
            span.record("violation", violation.to_string());
        }
    }
    result
}

/// Certifies a two-phase (tagged) rollout of every flow flipping at
/// `flip_time`: old-generation cohorts traverse the whole old path,
/// new-generation cohorts the whole new path. Loop-freedom holds by
/// construction; the congestion side is the same interval sweep over
/// the overlap window around the flip.
pub fn certify_two_phase(
    instance: &UpdateInstance,
    flip_time: TimeStep,
) -> Result<Certificate, Violation> {
    let mut span = chronus_trace::span!(
        "verify.certify_two_phase",
        flows = instance.flows.len(),
        flip_time = flip_time
    )
    .entered();
    let analysis = analyze_two_phase(instance, flip_time);
    let result = seal(instance, &analysis, Vec::new());
    if span.is_recording() {
        span.record("certified", result.is_ok());
        if let Err(violation) = &result {
            span.record("violation", violation.to_string());
        }
    }
    result
}

/// Shared tail of the certify entry points: turn an [`Analysis`] into
/// a certificate or the minimal violation, in severity order
/// congestion → loop → blackhole → undelivered.
fn seal(
    instance: &UpdateInstance,
    analysis: &Analysis,
    boundaries: Vec<BoundaryWitness>,
) -> Result<Certificate, Violation> {
    let profiles = sweep::link_profiles(&analysis.contributions);
    if let Some(v) = sweep::first_congestion(instance, &analysis.contributions, &profiles) {
        return Err(v);
    }
    if let Some(first) = earliest_span(&analysis.loops) {
        return Err(Violation::ForwardingLoop {
            flow: first.flow,
            switch: first.switch,
            emitted: (first.tau_lo, first.tau_hi),
            time: first.tau_lo + first.offset,
        });
    }
    if let Some(first) = earliest_span(&analysis.blackholes) {
        return Err(Violation::Blackhole {
            flow: first.flow,
            switch: first.switch,
            emitted: (first.tau_lo, first.tau_hi),
            time: first.tau_lo + first.offset,
        });
    }
    if let Some(&(flow, lo, hi)) = analysis.undelivered.first() {
        return Err(Violation::Undelivered {
            flow,
            emitted: (lo, hi),
        });
    }
    Ok(Certificate {
        makespan: analysis.makespan,
        link_bounds: sweep::link_bounds(instance, &profiles),
        boundaries,
        segments_traced: analysis.segments_traced,
        cohorts_covered: analysis.cohorts_covered,
    })
}

fn earliest_span(spans: &[trace::EventSpan]) -> Option<&trace::EventSpan> {
    spans
        .iter()
        .min_by_key(|s| (s.tau_lo + s.offset, s.flow, s.tau_lo))
}

/// Per-step congestion events (`t ≥ 0`) the analysis implies, sorted
/// by `(time, src, dst)` — shaped like the simulator's event list for
/// differential comparison.
pub fn congestion_surface(
    instance: &UpdateInstance,
    analysis: &Analysis,
) -> Vec<(
    SwitchId,
    SwitchId,
    TimeStep,
    chronus_net::Capacity,
    chronus_net::Capacity,
)> {
    let profiles = sweep::link_profiles(&analysis.contributions);
    sweep::congestion_events(instance, &profiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{motivating_example, FlowId};
    use chronus_timenet::{FluidSimulator, Verdict};

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    #[test]
    fn certifies_the_staged_plan_and_rejects_the_naive_one() {
        let inst = motivating_example();
        let staged = Schedule::from_pairs(
            FlowId(0),
            [(sid(1), 0), (sid(2), 1), (sid(0), 2), (sid(3), 2)],
        );
        let cert = certify(&inst, &staged).expect("staged plan is consistent");
        assert_eq!(cert.check(&inst), Ok(()));
        assert!(cert.boundaries.len() == 3);
        assert!(cert.to_string().contains("certificate"));

        let naive = Schedule::all_at_zero(&inst);
        let violation = certify(&inst, &naive).expect_err("naive plan loops");
        assert!(matches!(violation, Violation::ForwardingLoop { .. }));
        // Simulator agrees on both.
        assert_eq!(
            FluidSimulator::check(&inst, &staged).verdict(),
            Verdict::Consistent
        );
        assert_eq!(
            FluidSimulator::check(&inst, &naive).verdict(),
            Verdict::Inconsistent
        );
    }

    #[test]
    fn congestion_violation_names_link_and_interval() {
        // Old 0→1→2→3, new 0→2→3 with a fast shortcut: the new stream
        // catches the old one on ⟨2,3⟩ (capacity 1) whatever the time.
        let mut b = chronus_net::NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 1).unwrap();
        let net = b.build();
        let flow = chronus_net::Flow::new(
            FlowId(0),
            1,
            chronus_net::Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            chronus_net::Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(net, flow).unwrap();
        let s = Schedule::from_pairs(FlowId(0), [(sid(0), 0)]);
        match certify(&inst, &s) {
            Err(Violation::Congestion {
                src,
                dst,
                start,
                end,
                peak,
                capacity,
                flows,
            }) => {
                assert_eq!((src, dst), (sid(2), sid(3)));
                assert!(start >= 0 && end > start);
                assert_eq!((peak, capacity), (2, 1));
                assert_eq!(flows, vec![FlowId(0)]);
            }
            other => panic!("expected congestion violation, got {other:?}"),
        }
        assert!(!FluidSimulator::check(&inst, &s).congestion_free());
    }

    #[test]
    fn disabled_witnesses_keep_load_bounds() {
        let inst = motivating_example();
        let staged = Schedule::from_pairs(
            FlowId(0),
            [(sid(1), 0), (sid(2), 1), (sid(0), 2), (sid(3), 2)],
        );
        let cfg = VerifyConfig {
            enabled: true,
            witnesses: false,
        };
        let cert = certify_with(&inst, &staged, &cfg).unwrap();
        assert!(cert.boundaries.is_empty());
        assert!(!cert.link_bounds.is_empty());
        assert_eq!(cert.check(&inst), Ok(()));
    }

    #[test]
    fn two_phase_certification_matches_flip_semantics() {
        let inst = motivating_example();
        // The motivating example is two-phase-updatable without
        // congestion at a late flip (disjoint middles); certify it.
        let result = certify_two_phase(&inst, 3);
        // Whichever way it goes, it must agree with the baseline's
        // transient report — pinned precisely in the baselines crate's
        // differential test; here we only require a decision.
        match result {
            Ok(cert) => assert_eq!(cert.check(&inst), Ok(())),
            Err(v) => assert!(matches!(v, Violation::Congestion { .. })),
        }
    }
}
