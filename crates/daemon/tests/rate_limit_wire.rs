//! Satellite: the rate-limit shed's retry hint survives the wire.
//!
//! Boots the full IPC server on a temp socket, throttles one tenant
//! to a single burst token, and asserts that the resulting
//! `Shed::RateLimited { retry_after_s }` reaches the client both as
//! the machine-readable `retry_after_s` response field (verbatim) and
//! inside the error text `chronusctl` prints.

use chronus_daemon::{run_server, CtlClient, Daemon, DaemonConfig, Priority};
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chronusd-ratelim-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Connects with retries while the server thread binds the socket.
fn connect(socket: &Path) -> CtlClient {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match CtlClient::connect(socket) {
            Ok(client) => return client,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("connect {}: {e}", socket.display()),
        }
    }
}

#[test]
fn retry_hint_reaches_the_wire_and_the_ctl_error() {
    let state = temp_dir("state");
    let socket = temp_dir("sock").join("chronusd.sock");
    let mut config = DaemonConfig {
        socket: socket.clone(),
        snapshot_dir: state,
        workers: 1,
        ..DaemonConfig::default()
    };
    // One token, refilled every four seconds: the second submission
    // sheds with a retry hint close to 4s.
    config
        .tenant_overrides
        .insert("throttled".to_string(), (0.25, 1.0));

    let daemon = Daemon::start(config).expect("daemon start");
    let server = std::thread::Builder::new()
        .name("ratelim-server".to_string())
        .spawn(move || run_server(daemon))
        .expect("spawn server");

    let mut client = connect(&socket);
    let instance = chronus_net::motivating_example();
    client
        .submit("throttled", Priority::Normal, None, &instance)
        .expect("first request fits the burst");

    // Raw wire view: the shed response carries the hint twice — as a
    // float field (verbatim) and rounded to milliseconds inside the
    // error text — and the two must agree.
    let mut shed_req = serde_json::Map::new();
    shed_req.insert("cmd".to_string(), Value::from("submit"));
    shed_req.insert("tenant".to_string(), Value::from("throttled"));
    shed_req.insert(
        "instance".to_string(),
        chronus_net::codec::instance_to_value(&instance),
    );
    let shed = client
        .call(&Value::Object(shed_req))
        .expect("shed response still arrives");
    assert_eq!(shed.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(shed.get("shed"), Some(&Value::Bool(true)), "{shed:?}");
    let hint = shed
        .get("retry_after_s")
        .and_then(Value::as_f64)
        .expect("rate-limit shed carries retry_after_s");
    assert!(
        hint > 0.0 && hint <= 4.0,
        "one token at 0.25/s refills within 4s, got {hint}"
    );
    let text = shed.get("error").and_then(Value::as_str).unwrap_or("");
    assert!(
        text.contains(&format!("retry after {hint:.3}s")),
        "error text must quote the same hint: {text} vs {hint}"
    );

    // Typed-client view (what `chronusctl submit` prints): the shed
    // surfaces as an error whose message carries the hint.
    let err = client
        .submit("throttled", Priority::Normal, None, &instance)
        .expect_err("still throttled");
    let msg = err.to_string();
    assert!(
        msg.contains("tenant `throttled` rate limited; retry after"),
        "{msg}"
    );

    client.drain().expect("drain");
    server.join().expect("server thread").expect("clean exit");
}
