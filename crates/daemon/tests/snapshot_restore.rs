//! Satellite: snapshot/restore under a crash.
//!
//! Arms a batch of certified updates through an in-process [`Daemon`],
//! kills it mid-flight (drop without drain — exactly what `kill -9`
//! leaves on disk: the write-ahead journal and nothing else), restarts
//! from the journal, and asserts every armed update is either re-armed
//! within its certified slack or rolled back — none lost, and every
//! restored record still verified against its stored certificate.

use chronus_clock::Nanos;
use chronus_daemon::{Daemon, DaemonConfig, Journal, Priority, UpdateState};
use chronus_faults::FaultPlan;
use chronus_net::{motivating_example, SwitchId};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Pinned wall-clock base for the first daemon incarnation (ns).
const BASE: Nanos = 1_000_000_000_000;
/// Watch timeout generous enough for CI machines.
const SETTLE: Duration = Duration::from_secs(20);

fn temp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chronusd-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(snapshot_dir: &Path, base_epoch_ns: Nanos) -> DaemonConfig {
    DaemonConfig {
        snapshot_dir: snapshot_dir.to_path_buf(),
        base_epoch_ns: Some(base_epoch_ns),
        // No background snapshotter: the journal alone must be enough.
        snapshot_interval_ms: 0,
        workers: 2,
        // The batch arrives in one burst from few tenants.
        tenant_burst: 64.0,
        ..DaemonConfig::default()
    }
}

fn priority_for(i: usize) -> Priority {
    match i % 3 {
        0 => Priority::High,
        1 => Priority::Normal,
        _ => Priority::Low,
    }
}

/// Submits `n` certified updates and waits until every one is armed.
/// Returns the assigned ids.
fn arm_batch(daemon: &Daemon, n: usize) -> Vec<u64> {
    let mut ids = Vec::new();
    for i in 0..n {
        let tenant = format!("tenant-{}", i % 4);
        let id = daemon
            .submit(
                &tenant,
                priority_for(i),
                None,
                Arc::new(motivating_example()),
            )
            .unwrap_or_else(|shed| panic!("submission {i} shed: {shed}"));
        ids.push(id);
    }
    for &id in &ids {
        let status = daemon
            .watch(id, SETTLE)
            .unwrap_or_else(|| panic!("update {id} never settled"));
        assert_eq!(
            status.state,
            UpdateState::Armed,
            "update {id} settled as {} ({})",
            status.state.as_str(),
            status.detail
        );
        assert!(status.certified, "update {id} armed without a certificate");
        assert!(
            status.epoch_ns.is_some(),
            "update {id} armed without an epoch"
        );
    }
    ids
}

#[test]
fn armed_schedules_survive_a_crash_and_rearm_within_slack() {
    let snapshot_dir = temp_state_dir("rearm");
    let first = config(&snapshot_dir, BASE);
    let journal_path = first.journal_path();

    let daemon = Daemon::start(first.clone()).expect("first start");
    let ids = arm_batch(&daemon, 12);
    assert_eq!(daemon.armed_len(), 12);

    // Two updates complete before the crash; their tombstones must
    // keep them out of the restored set.
    daemon.confirm(ids[0]).expect("confirm first");
    daemon.confirm(ids[1]).expect("confirm second");
    assert_eq!(daemon.armed_len(), 10);

    // Crash: drop without drain. The WAL is all that survives.
    drop(daemon);

    // Offline audit of what the crash left behind: every live record
    // must still verify against its stored certificate.
    let replay = Journal::replay(&journal_path).expect("replay journal");
    assert_eq!(replay.corrupt_lines, 0);
    assert_eq!(replay.live.len(), 10);
    for record in &replay.live {
        record
            .certificate
            .check(&record.instance)
            .unwrap_or_else(|v| panic!("stored certificate {} broken: {v}", record.id));
        assert!(!record.schedule.is_empty());
    }

    // Restart with the clock restored just behind the first epoch: a
    // short outage, so every armed window is still reachable.
    let second = config(&snapshot_dir, BASE - 1_000_000_000);
    let daemon = Daemon::start(second).expect("restart");
    let restore = daemon.restore_report().clone();
    assert_eq!(restore.live_found, 10);
    assert_eq!(restore.rearmed, 10, "short outage must re-arm everything");
    assert_eq!(restore.rolled_back, 0);
    assert_eq!(restore.lost, 0);
    assert_eq!(restore.corrupt_lines, 0);
    assert_eq!(daemon.armed_len(), 10);

    for &id in &ids[2..] {
        let status = daemon
            .status(id)
            .unwrap_or_else(|| panic!("update {id} lost across restart"));
        assert_eq!(status.state, UpdateState::Armed);
        assert!(status.certified);
        assert!(
            status.detail.contains("re-armed"),
            "detail: {}",
            status.detail
        );
    }
    // The two confirmed updates must not resurrect.
    assert!(daemon.status(ids[0]).is_none());
    assert!(daemon.status(ids[1]).is_none());

    // Ids keep monotonically increasing across the restart (the
    // journal carries the high-water mark).
    let next = daemon
        .submit(
            "tenant-0",
            Priority::Normal,
            None,
            Arc::new(motivating_example()),
        )
        .expect("post-restart submit");
    assert!(
        next > *ids.iter().max().unwrap_or(&0),
        "id {next} reused across restart"
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(snapshot_dir);
}

/// Regression: compaction snapshots the live `armed` set and rewrites
/// the journal to exactly that set. Arms and confirms must be atomic
/// with respect to it — a record journaled but not yet in the map (or
/// removed from the map before its tombstone landed) would be silently
/// dropped from (or resurrected into) the rewritten file. Hammer
/// compactions from two sides while arming and confirming, then audit
/// the journal a crash would leave behind.
#[test]
fn compaction_racing_arms_and_confirms_loses_nothing() {
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicBool, Ordering};

    let snapshot_dir = temp_state_dir("race");
    let mut cfg = config(&snapshot_dir, BASE);
    // Background snapshotter at the tightest interval, on top of the
    // explicit snapshot() hammer below.
    cfg.snapshot_interval_ms = 1;
    let journal_path = cfg.journal_path();
    let daemon = Arc::new(Daemon::start(cfg).expect("start"));

    let stop = Arc::new(AtomicBool::new(false));
    let snapper = {
        let daemon = Arc::clone(&daemon);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                daemon.snapshot().expect("forced compaction");
            }
        })
    };

    let ids = arm_batch(&daemon, 30);
    let mut confirmed = BTreeSet::new();
    for &id in ids.iter().step_by(3) {
        daemon.confirm(id).expect("confirm");
        confirmed.insert(id);
    }

    stop.store(true, Ordering::Relaxed);
    snapper.join().expect("snapper thread");

    let expected: BTreeSet<u64> = ids
        .iter()
        .copied()
        .filter(|id| !confirmed.contains(id))
        .collect();
    assert_eq!(daemon.armed_len(), expected.len());

    // Crash: drop without drain, then audit the journal on disk.
    drop(daemon);
    let replay = Journal::replay(&journal_path).expect("replay journal");
    assert_eq!(replay.corrupt_lines, 0);
    let live: BTreeSet<u64> = replay.live.iter().map(|r| r.id).collect();
    assert_eq!(
        live, expected,
        "journal live set diverged from the acknowledged armed set"
    );
    let _ = std::fs::remove_dir_all(snapshot_dir);
}

#[test]
fn a_long_outage_rolls_back_every_missed_window() {
    let snapshot_dir = temp_state_dir("rollback");
    let daemon = Daemon::start(config(&snapshot_dir, BASE)).expect("first start");
    let ids = arm_batch(&daemon, 10);
    drop(daemon); // crash

    // Model the outage with the faults crate's reboot injection: the
    // controller host goes down at BASE and stays down for an hour —
    // far past every certified slack window.
    let outage = FaultPlan::quiet(7).with_reboot(BASE, SwitchId(0), 3_600_000_000_000);
    let reboot = &outage.reboots[0];
    let restart_epoch = reboot.at + reboot.outage_ns;

    let daemon = Daemon::start(config(&snapshot_dir, restart_epoch)).expect("restart");
    let restore = daemon.restore_report().clone();
    assert_eq!(restore.live_found, 10);
    assert_eq!(restore.rearmed, 0);
    assert_eq!(restore.rolled_back, 10, "missed windows must roll back");
    assert_eq!(restore.lost, 0);
    assert_eq!(daemon.armed_len(), 0);
    for &id in &ids {
        let status = daemon
            .status(id)
            .unwrap_or_else(|| panic!("update {id} lost across restart"));
        assert_eq!(status.state, UpdateState::RolledBack);
    }
    daemon.shutdown();

    // Rollback tombstones are durable: a third incarnation finds an
    // empty live set, not ten zombies.
    let daemon = Daemon::start(config(&snapshot_dir, restart_epoch)).expect("third start");
    assert_eq!(daemon.restore_report().live_found, 0);
    assert_eq!(daemon.armed_len(), 0);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(snapshot_dir);
}
