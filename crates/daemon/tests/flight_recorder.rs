//! Tentpole: the flight recorder under a kill-style failure, plus
//! live introspection over a real socket.
//!
//! The first test is the forensic path end to end: a daemon plans and
//! arms updates with the recorder on, "dies" (drop without drain), and
//! a second incarnation restarts so far past every armed window that
//! restore must roll everything back — which fires the
//! `restore-rollback` trigger and writes a dump. The dump must be
//! loadable Perfetto JSON that names the trigger, still contains the
//! first incarnation's `engine.plan` spans (rings are process-global
//! and outlive their threads), and embeds a metrics snapshot whose SLO
//! latency histogram carries the rolled-back updates' span ids as
//! exemplars — the dump-to-journal join an operator pivots on.
//!
//! The second test drives `top` and `tail` over a Unix socket exactly
//! as `chronusctl` would.

use chronus_clock::Nanos;
use chronus_daemon::{run_server, CtlClient, Daemon, DaemonConfig, Journal, Priority, UpdateState};
use chronus_net::motivating_example;
use chronus_trace::FlightRecorder;
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Pinned wall-clock base for the first daemon incarnation (ns).
const BASE: Nanos = 1_000_000_000_000;
/// Far enough past `BASE` that every armed window has expired.
const LONG_OUTAGE: Nanos = BASE + 3_600_000_000_000;
const SETTLE: Duration = Duration::from_secs(20);

/// The recorder is process-global; the two tests serialize on this.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    RECORDER_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chronusd-flight-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(snapshot_dir: &Path, base_epoch_ns: Nanos) -> DaemonConfig {
    DaemonConfig {
        snapshot_dir: snapshot_dir.to_path_buf(),
        base_epoch_ns: Some(base_epoch_ns),
        snapshot_interval_ms: 0,
        workers: 2,
        tenant_burst: 64.0,
        ..DaemonConfig::default()
    }
}

fn arm_batch(daemon: &Daemon, n: usize) -> Vec<u64> {
    let mut ids = Vec::new();
    for i in 0..n {
        let tenant = format!("tenant-{}", i % 2);
        let id = daemon
            .submit(
                &tenant,
                Priority::Normal,
                None,
                Arc::new(motivating_example()),
            )
            .unwrap_or_else(|shed| panic!("submission {i} shed: {shed}"));
        ids.push(id);
    }
    for &id in &ids {
        let status = daemon
            .watch(id, SETTLE)
            .unwrap_or_else(|| panic!("update {id} never settled"));
        assert_eq!(status.state, UpdateState::Armed, "update {id}: {status:?}");
    }
    ids
}

/// Kill-style: arm with the recorder on, crash, restart past every
/// deadline so restore rolls back — and audit the forensic dump the
/// rollback trigger writes.
#[test]
fn restore_rollback_writes_a_forensic_dump_that_joins_the_journal() {
    let _l = lock();
    let snapshot_dir = temp_dir("rollback-state");
    let flight_dir = temp_dir("rollback-flight");

    FlightRecorder::enable(4096);
    FlightRecorder::set_dump_dir(&flight_dir);
    FlightRecorder::set_min_dump_interval_ms(0);

    // First incarnation: plan and arm with the recorder running, then
    // die without draining — the journal and the rings survive.
    let daemon = Daemon::start(config(&snapshot_dir, BASE)).expect("first start");
    let ids = arm_batch(&daemon, 6);
    let journal_path = config(&snapshot_dir, BASE).journal_path();
    drop(daemon);

    // The journal remembers each armed update's plan-span id — the
    // key the dump's exemplars must join against.
    let replay = Journal::replay(&journal_path).expect("replay");
    assert_eq!(replay.live.len(), ids.len());
    let journaled_span_ids: Vec<u64> = replay.live.iter().map(|r| r.span_id).collect();
    assert!(
        journaled_span_ids.iter().all(|&s| s != 0),
        "plan spans must carry real ids while the recorder is on: {journaled_span_ids:?}"
    );

    // Second incarnation, an hour "later": every window is expired,
    // restore rolls everything back and fires the dump trigger.
    let daemon = Daemon::start(config(&snapshot_dir, LONG_OUTAGE)).expect("restart");
    let restore = daemon.restore_report().clone();
    assert_eq!(restore.rolled_back, ids.len() as u64, "{restore:?}");

    let dump_path = std::fs::read_dir(&flight_dir)
        .expect("flight dir exists after the trigger")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy().contains("restore-rollback"))
                .unwrap_or(false)
        })
        .expect("rollback dump written");
    let doc = std::fs::read_to_string(&dump_path).expect("read dump");
    let parsed: Value = serde_json::from_str(&doc).expect("dump is valid JSON");

    // Perfetto-loadable shell: traceEvents + displayTimeUnit.
    let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
    assert_eq!(parsed.get("displayTimeUnit").unwrap().as_str(), Some("ms"));

    // The dump names its trigger, both in meta and as a marked instant.
    let meta = parsed.get("chronusMeta").expect("chronusMeta");
    assert_eq!(
        meta.get("trigger").unwrap().as_str(),
        Some("restore-rollback")
    );
    let trigger = events
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("flightrec.trigger"))
        .expect("marked trigger instant");
    assert_eq!(
        trigger
            .get("args")
            .and_then(|a| a.get("reason"))
            .and_then(|r| r.as_str()),
        Some("restore-rollback")
    );

    // The rolled-back instance's planning spans are still in the dump:
    // the rings outlive the first incarnation's worker threads.
    let plan_spans: Vec<_> = events
        .iter()
        .filter(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("engine.plan")
                && e.get("ph").and_then(|p| p.as_str()) == Some("X")
        })
        .collect();
    assert!(
        !plan_spans.is_empty(),
        "first incarnation's engine.plan spans must survive into the dump"
    );

    // The embedded metrics snapshot carries the SLO latency histogram
    // with the journaled span ids as exemplars — rollback counted each
    // record as an SLO miss and stamped its plan span.
    let metrics = meta.get("metrics").expect("metrics embedded in the dump");
    let slo = metrics
        .get("histograms")
        .and_then(|h| h.get("chronus_daemon_slo_latency_ns"))
        .expect("SLO latency histogram in the dump");
    let exemplars: Vec<u64> = slo
        .get("exemplars")
        .and_then(|e| e.as_array())
        .expect("exemplars recorded")
        .iter()
        .filter_map(|v| v.as_u64_exact())
        .filter(|&v| v != 0)
        .collect();
    assert!(
        exemplars.iter().any(|e| journaled_span_ids.contains(e)),
        "dump exemplars {exemplars:?} must join the journaled span ids {journaled_span_ids:?}"
    );

    daemon.shutdown();
    FlightRecorder::disable();
    let _ = std::fs::remove_dir_all(snapshot_dir);
    let _ = std::fs::remove_dir_all(flight_dir);
}

fn connect(socket: &Path) -> CtlClient {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match CtlClient::connect(socket) {
            Ok(client) => return client,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("connect {}: {e}", socket.display()),
        }
    }
}

/// `top` and `tail` live over a real Unix socket: top reports queues,
/// cache, SLO burn and recorder state; tail replays `engine.plan`
/// events from the ring; dump writes an operator-initiated file.
#[test]
fn top_and_tail_are_live_over_the_socket() {
    let _l = lock();
    let state = temp_dir("live-state");
    let flight_dir = temp_dir("live-flight");
    let socket = temp_dir("live-sock").join("chronusd.sock");

    FlightRecorder::enable(4096);
    FlightRecorder::set_dump_dir(&flight_dir);
    FlightRecorder::set_min_dump_interval_ms(0);

    let config = DaemonConfig {
        socket: socket.clone(),
        snapshot_dir: state.clone(),
        snapshot_interval_ms: 0,
        workers: 2,
        tenant_burst: 64.0,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(config).expect("daemon start");
    let server = std::thread::Builder::new()
        .name("flight-server".to_string())
        .spawn(move || run_server(daemon))
        .expect("spawn server");

    let mut client = connect(&socket);
    let instance = motivating_example();
    let mut ids = Vec::new();
    for i in 0..8usize {
        let tenant = format!("tenant-{}", i % 2);
        let id = client
            .submit(&tenant, Priority::Normal, Some(10_000), &instance)
            .unwrap_or_else(|e| panic!("submit {i}: {e}"));
        ids.push(id);
    }
    for &id in &ids {
        let status = client.watch(id, 30_000).expect("watch");
        assert_eq!(
            status.get("state").and_then(Value::as_str),
            Some("armed"),
            "{status:?}"
        );
    }

    // top: one JSON object with the live operational surface.
    let top = client.top().expect("top");
    assert_eq!(top.get("state").and_then(Value::as_str), Some("running"));
    for key in ["queues", "tenants", "updates", "cache", "slo", "flight"] {
        assert!(top.get(key).is_some(), "top missing `{key}`: {top:?}");
    }
    assert_eq!(
        top.get("armed").and_then(Value::as_u64_exact),
        Some(ids.len() as u64)
    );
    let flight = top.get("flight").unwrap();
    assert_eq!(flight.get("on"), Some(&Value::Bool(true)));
    // Both tenants carry live burn-rate gauges after planning.
    let slo = top.get("slo").unwrap().as_object().expect("slo object");
    for tenant in ["tenant-0", "tenant-1"] {
        let entry = slo.get(tenant).unwrap_or_else(|| panic!("slo[{tenant}]"));
        assert!(entry.get("burn_5m").is_some() && entry.get("burn_1h").is_some());
    }

    // tail (one-shot): replays ring history; the filter narrows it to
    // the planning spans the submissions just recorded.
    let mut names = Vec::new();
    let received = client
        .tail(Some("engine.plan"), 64, false, |event| {
            if let Some(name) = event.get("name").and_then(Value::as_str) {
                names.push(name.to_string());
            }
        })
        .expect("tail");
    assert!(received > 0, "tail must replay the plan spans");
    assert_eq!(received as usize, names.len());
    assert!(
        names.iter().all(|n| n.starts_with("engine.plan")),
        "filter must hold: {names:?}"
    );

    // dump: operator-initiated forensic file over the wire.
    let dump_path = client.dump().expect("dump");
    assert!(
        Path::new(&dump_path).exists(),
        "dump path {dump_path} must exist"
    );
    assert!(dump_path.contains("ctl-dump"));

    client.drain().expect("drain");
    server.join().expect("server thread").expect("server exit");
    FlightRecorder::disable();
    let _ = std::fs::remove_dir_all(state);
    let _ = std::fs::remove_dir_all(flight_dir);
}
