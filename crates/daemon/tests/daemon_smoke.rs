//! Satellite: end-to-end smoke over a real Unix socket.
//!
//! Boots the full IPC server on a temp socket, drives it with the
//! [`CtlClient`] exactly as `chronusctl` would — 50 mixed-priority
//! submissions, a deliberately rate-limited tenant, watches, a
//! snapshot, a Prometheus scrape — then drains and asserts a clean
//! exit with the socket file removed.

use chronus_daemon::{run_server, CtlClient, Daemon, DaemonConfig, Priority};
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chronusd-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Connects with retries while the server thread binds the socket.
fn connect(socket: &Path) -> CtlClient {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match CtlClient::connect(socket) {
            Ok(client) => return client,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("connect {}: {e}", socket.display()),
        }
    }
}

#[test]
fn fifty_submissions_scrape_and_drain_cleanly() {
    let state = temp_dir("state");
    let socket = temp_dir("sock").join("chronusd.sock");
    let mut config = DaemonConfig {
        socket: socket.clone(),
        snapshot_dir: state.clone(),
        workers: 2,
        queue_bound: 128,
        tenant_burst: 64.0,
        ..DaemonConfig::default()
    };
    // One tenant is throttled to (effectively) a single request so the
    // shed path is exercised over the wire too.
    config
        .tenant_overrides
        .insert("greedy".to_string(), (1e-6, 1.0));

    let daemon = Daemon::start(config).expect("daemon start");
    let server = std::thread::Builder::new()
        .name("smoke-server".to_string())
        .spawn(move || run_server(daemon))
        .expect("spawn server");

    let mut client = connect(&socket);
    client.ping().expect("ping");

    // 50 mixed-priority submissions across four tenants.
    let priorities = [Priority::High, Priority::Normal, Priority::Low];
    let instance = chronus_net::motivating_example();
    let mut ids = Vec::new();
    for i in 0..50usize {
        let tenant = format!("tenant-{}", i % 4);
        let id = client
            .submit(&tenant, priorities[i % 3], Some(10_000), &instance)
            .unwrap_or_else(|e| panic!("submit {i}: {e}"));
        ids.push(id);
    }
    assert_eq!(ids.len(), 50);

    // The throttled tenant gets one request through, then a shed with
    // the `shed` marker and a retry hint rather than a hard error.
    client
        .submit("greedy", Priority::Normal, None, &instance)
        .expect("greedy's first request fits its burst");
    let mut shed_req = serde_json::Map::new();
    shed_req.insert("cmd".to_string(), Value::from("submit"));
    shed_req.insert("tenant".to_string(), Value::from("greedy"));
    shed_req.insert(
        "instance".to_string(),
        chronus_net::codec::instance_to_value(&instance),
    );
    let shed = client
        .call(&Value::Object(shed_req))
        .expect("shed response still arrives");
    assert_eq!(shed.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(shed.get("shed"), Some(&Value::Bool(true)), "shed: {shed:?}");

    // Every accepted update settles (armed, completed, or failed —
    // but settled, with the motivating example they certify and arm).
    for &id in &ids {
        let status = client
            .watch(id, 30_000)
            .unwrap_or_else(|e| panic!("watch {id}: {e}"));
        let state = status.get("state").and_then(Value::as_str).unwrap_or("?");
        assert_eq!(state, "armed", "update {id}: {status:?}");
    }

    // A snapshot reports the armed set.
    let live = client.snapshot().expect("snapshot");
    assert_eq!(live, 51, "50 batch + 1 greedy armed records");

    // The scrape speaks well-formed Prometheus text with the daemon's
    // own scoped series present and consistent.
    let text = client.metrics_text().expect("metrics");
    for series in [
        "# TYPE chronus_daemon_submitted_total counter",
        "# TYPE chronus_daemon_admitted_total counter",
        "# TYPE chronus_daemon_shed_rate_limited_total counter",
        "# TYPE chronus_daemon_queue_wait_ns histogram",
        "# TYPE chronus_daemon_cache_hits gauge",
        "# TYPE chronus_engine_requests_completed_total counter",
    ] {
        assert!(text.contains(series), "scrape missing `{series}`:\n{text}");
    }
    let sample = |name: &str| -> f64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("no sample for {name}"))
            .parse()
            .expect("numeric sample")
    };
    assert_eq!(sample("chronus_daemon_submitted_total"), 52.0);
    assert_eq!(sample("chronus_daemon_admitted_total"), 51.0);
    assert_eq!(sample("chronus_daemon_shed_rate_limited_total"), 1.0);
    assert_eq!(sample("chronus_daemon_armed_total"), 51.0);
    // The repeated instance makes the warm cache pay off.
    assert!(
        sample("chronus_daemon_cache_hits") >= 1.0,
        "resident cache saw no hits:\n{text}"
    );

    // Aggregate status view.
    let all = client.status_all().expect("status all");
    let counts = all.get("counts").cloned().unwrap_or(Value::Null);
    assert_eq!(
        counts.get("armed").and_then(Value::as_u64_exact),
        Some(51),
        "counts: {counts:?}"
    );

    // Drain: daemon acknowledges, finishes, removes its socket, and
    // the server thread returns a clean report.
    client.drain().expect("drain");
    let report = server
        .join()
        .expect("server thread")
        .expect("server result");
    assert_eq!(report.armed_remaining, 51);
    assert_eq!(report.snapshot_live, 51);
    assert!(!socket.exists(), "socket file must be removed on exit");

    let _ = std::fs::remove_dir_all(state);
    if let Some(dir) = socket.parent() {
        let _ = std::fs::remove_dir_all(dir);
    }
}
