//! Per-tenant SLO burn-rate tracking.
//!
//! Each tenant gets a ring of sixty one-minute buckets counting
//! *good* and *bad* planning outcomes. An outcome is bad when the
//! plan missed the tenant's latency objective, failed outright, or
//! was rolled back at restore. Burn rate over a window is the
//! classic multi-window form:
//!
//! ```text
//! burn = bad_fraction / error_budget  where  error_budget = 1 - availability
//! ```
//!
//! so `burn == 1.0` means the tenant is consuming its error budget
//! exactly at the rate that exhausts it by the end of the SLO period.
//! Two windows (5 minutes and 1 hour) are evaluated on every record;
//! when the *short* window crosses the configured threshold (the
//! fast-burn page condition) the tracker reports the crossing so the
//! daemon can emit an `instant!` and fire a forensic flight dump.

use std::collections::BTreeMap;

use chronus_clock::Nanos;

const BUCKETS: usize = 60;
const BUCKET_NS: Nanos = 60_000_000_000; // one minute
const SHORT_WINDOW: usize = 5; // buckets (5m)
const LONG_WINDOW: usize = 60; // buckets (1h)

/// Latency/availability objectives shared by every tenant.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// A plan slower than this is an SLO-bad event.
    pub latency_ns: Nanos,
    /// Availability objective in `[0, 1)`; the error budget is
    /// `1 - availability`.
    pub availability: f64,
    /// Short-window burn rate at or above this fires a crossing.
    pub burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_ns: 250_000_000, // 250ms
            availability: 0.999,
            burn_threshold: 10.0,
        }
    }
}

/// One minute of per-tenant outcomes.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    /// Minute index (`now_ns / BUCKET_NS`) this slot currently holds;
    /// a slot is reused once the ring laps it.
    minute: u64,
    good: u64,
    bad: u64,
}

/// The per-tenant ring plus latched crossing state (so a sustained
/// burn produces one crossing event, not one per request).
#[derive(Debug)]
struct TenantSlo {
    buckets: [Bucket; BUCKETS],
    crossed: bool,
}

impl Default for TenantSlo {
    fn default() -> Self {
        TenantSlo {
            buckets: [Bucket::default(); BUCKETS],
            crossed: false,
        }
    }
}

/// Burn rates for one tenant at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRates {
    /// Burn over the 5-minute window (the fast-page signal).
    pub short: f64,
    /// Burn over the 1-hour window.
    pub long: f64,
}

/// What [`SloTracker::record`] observed, for the caller to turn into
/// metrics/instants/dump triggers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloObservation {
    /// Whether this outcome burned error budget.
    pub bad: bool,
    /// The tenant's burn rates after this outcome.
    pub burn: BurnRates,
    /// True exactly when this record pushed the short-window burn
    /// across the threshold (edge, not level).
    pub crossed: bool,
}

/// Tracks every tenant's error-budget burn over 5m/1h windows.
#[derive(Debug)]
pub struct SloTracker {
    config: SloConfig,
    tenants: BTreeMap<String, TenantSlo>,
}

impl SloTracker {
    /// An empty tracker with the given objectives.
    pub fn new(config: SloConfig) -> Self {
        SloTracker {
            config,
            tenants: BTreeMap::new(),
        }
    }

    /// The objectives this tracker scores against.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    /// Records one planning outcome. `ok` is the caller's verdict on
    /// everything latency can't see (failure, rollback); the latency
    /// objective is applied here on top of it.
    pub fn record(
        &mut self,
        tenant: &str,
        latency_ns: Nanos,
        ok: bool,
        now_ns: Nanos,
    ) -> SloObservation {
        let bad = !ok || latency_ns > self.config.latency_ns;
        let slot = self.tenants.entry(tenant.to_string()).or_default();
        let minute = (now_ns / BUCKET_NS).max(0) as u64;
        // Re-evaluate the latch against the clock *before* folding in
        // this outcome: a tenant that went idle after a crossing never
        // records anything while its short window drains, so the latch
        // must clear on the first outcome of the next excursion — not
        // swallow its edge.
        if slot.crossed
            && Self::burn_of(&self.config, slot, minute).short < self.config.burn_threshold
        {
            slot.crossed = false;
        }
        let index = (minute % BUCKETS as u64) as usize;
        let Some(bucket) = slot.buckets.get_mut(index) else {
            // Unreachable: `index < BUCKETS` by construction.
            return SloObservation {
                bad,
                burn: Self::burn_of(&self.config, slot, minute),
                crossed: false,
            };
        };
        if bucket.minute != minute {
            *bucket = Bucket {
                minute,
                good: 0,
                bad: 0,
            };
        }
        if bad {
            bucket.bad += 1;
        } else {
            bucket.good += 1;
        }
        let burn = Self::burn_of(&self.config, slot, minute);
        let above = burn.short >= self.config.burn_threshold;
        let crossed = above && !slot.crossed;
        slot.crossed = above;
        SloObservation { bad, burn, crossed }
    }

    /// Burn rates for every tenant seen so far, at `now_ns`. The
    /// evaluation is time-aware: a tenant whose short-window burn has
    /// drained below the threshold is unlatched here, so an idle
    /// recovery observed by a scrape re-arms the crossing edge even
    /// before the tenant's next recorded outcome.
    pub fn burns(&mut self, now_ns: Nanos) -> Vec<(String, BurnRates)> {
        let minute = (now_ns / BUCKET_NS).max(0) as u64;
        let config = self.config;
        self.tenants
            .iter_mut()
            .map(|(t, slot)| {
                let burn = Self::burn_of(&config, slot, minute);
                if slot.crossed && burn.short < config.burn_threshold {
                    slot.crossed = false;
                }
                (t.clone(), burn)
            })
            .collect()
    }

    fn burn_of(config: &SloConfig, slot: &TenantSlo, minute: u64) -> BurnRates {
        BurnRates {
            short: Self::window_burn(config, slot, minute, SHORT_WINDOW),
            long: Self::window_burn(config, slot, minute, LONG_WINDOW),
        }
    }

    /// Bad fraction over the last `window` minutes, divided by the
    /// error budget. Buckets whose stamped minute falls outside the
    /// window are stale ring slots and contribute nothing.
    fn window_burn(config: &SloConfig, slot: &TenantSlo, minute: u64, window: usize) -> f64 {
        let oldest = minute.saturating_sub(window as u64 - 1);
        let (mut good, mut bad) = (0u64, 0u64);
        for b in &slot.buckets {
            if b.minute >= oldest && b.minute <= minute {
                good += b.good;
                bad += b.bad;
            }
        }
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        let budget = (1.0 - config.availability).max(1e-9);
        (bad as f64 / total as f64) / budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            latency_ns: 1_000,
            availability: 0.9,
            burn_threshold: 5.0,
        }
    }

    #[test]
    fn all_good_burns_nothing() {
        let mut t = SloTracker::new(cfg());
        for i in 0..10 {
            let obs = t.record("acme", 500, true, i * 1_000_000);
            assert!(!obs.bad);
            assert!(!obs.crossed);
            assert_eq!(obs.burn.short, 0.0);
        }
    }

    #[test]
    fn latency_miss_counts_as_bad() {
        let mut t = SloTracker::new(cfg());
        let obs = t.record("acme", 2_000, true, 0);
        assert!(obs.bad);
        // 1 bad / 1 total over a 0.1 budget → burn 10.
        assert!((obs.burn.short - 10.0).abs() < 1e-9);
    }

    #[test]
    fn crossing_fires_once_per_excursion() {
        let mut t = SloTracker::new(cfg());
        // Lay down enough good traffic that one bad stays under the
        // threshold, then flood with bad until it crosses.
        for _ in 0..20 {
            t.record("acme", 1, true, 0);
        }
        let first_bad = t.record("acme", 1, false, 0);
        assert!(
            first_bad.bad && !first_bad.crossed,
            "1/21 bad is under a 5x burn"
        );
        let mut crossings = 0;
        for _ in 0..40 {
            if t.record("acme", 1, false, 0).crossed {
                crossings += 1;
            }
        }
        assert_eq!(crossings, 1, "sustained burn must latch after the edge");
    }

    #[test]
    fn recrossing_after_idle_recovery_fires_again() {
        let mut t = SloTracker::new(cfg());
        // Flood with bad until the fast-burn edge fires and latches.
        let crossed = (0..10).any(|_| t.record("acme", 1, false, 0).crossed);
        assert!(crossed, "the first excursion must cross");
        // Six idle minutes: the 5m window drains with no record() call
        // to observe it. The first bad outcome of the next excursion
        // is 1/1 bad (burn 10 ≥ 5) and must report a fresh edge, not
        // be swallowed by the stale latch.
        let obs = t.record("acme", 1, false, 6 * BUCKET_NS);
        assert!((obs.burn.short - 10.0).abs() < 1e-9, "{}", obs.burn.short);
        assert!(obs.crossed, "re-crossing after idle recovery must fire");
    }

    #[test]
    fn burns_snapshot_unlatches_recovered_tenants() {
        let mut t = SloTracker::new(cfg());
        let crossed = (0..10).any(|_| t.record("acme", 1, false, 0).crossed);
        assert!(crossed);
        // A scrape six minutes later sees the drained window and
        // re-arms the edge for the tenant.
        let burns = t.burns(6 * BUCKET_NS);
        assert_eq!(burns.len(), 1);
        assert_eq!(burns[0].1.short, 0.0);
        assert!(t.record("acme", 1, false, 6 * BUCKET_NS).crossed);
        // While a burn still above threshold stays latched across
        // scrapes: no duplicate edge on the next record.
        let _ = t.burns(6 * BUCKET_NS);
        assert!(!t.record("acme", 1, false, 6 * BUCKET_NS).crossed);
    }

    #[test]
    fn short_window_forgets_old_minutes() {
        let mut t = SloTracker::new(cfg());
        t.record("acme", 1, false, 0);
        // Ten minutes later the 5m window is clean but the 1h window
        // still remembers the failure.
        let obs = t.record("acme", 1, true, 10 * BUCKET_NS);
        assert_eq!(obs.burn.short, 0.0);
        assert!(obs.burn.long > 0.0);
    }

    #[test]
    fn ring_reuses_lapped_slots() {
        let mut t = SloTracker::new(cfg());
        t.record("acme", 1, false, 0);
        // 61 minutes later the slot for minute 0 is lapped by minute
        // 61; nothing from the old hour may leak in.
        let obs = t.record("acme", 1, true, 61 * BUCKET_NS);
        assert_eq!(obs.burn.long, 0.0);
    }

    #[test]
    fn tenants_are_independent() {
        let mut t = SloTracker::new(cfg());
        t.record("noisy", 1, false, 0);
        let obs = t.record("quiet", 1, true, 0);
        assert_eq!(obs.burn.short, 0.0);
        let burns = t.burns(0);
        assert_eq!(burns.len(), 2);
        assert!(burns.iter().any(|(t, b)| t == "noisy" && b.short > 0.0));
    }
}
