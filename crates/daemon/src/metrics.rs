//! The daemon's scoped metrics registry: every series is prefixed
//! `chronus_daemon_` so a scrape of the daemon composes with the
//! engine's `chronus_engine_*` series on one endpoint.

use chronus_trace::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};

/// All daemon instruments, registered once at startup on a scoped
/// [`MetricsRegistry`] (handles are lock-free on the hot path).
pub struct DaemonMetrics {
    registry: MetricsRegistry,
    /// Seqlock epoch over the five cache gauges: odd while
    /// [`DaemonMetrics::set_cache`] is mid-write, even when the set is
    /// coherent. Scrapes render under an even-epoch check so hit,
    /// miss and eviction totals always come from one `set_cache` call
    /// — never a torn mix of two refreshes.
    cache_epoch: AtomicU64,
    /// Submissions received over IPC (before admission).
    pub submitted: Counter,
    /// Submissions accepted into an admission queue.
    pub admitted: Counter,
    /// Submissions shed because the class queue was full.
    pub shed_queue_full: Counter,
    /// Submissions shed by the tenant token bucket.
    pub shed_rate_limited: Counter,
    /// Submissions shed because the daemon was draining.
    pub shed_draining: Counter,
    /// Jobs the planning workers completed (any outcome).
    pub planned: Counter,
    /// Jobs that armed a certified timed schedule (journaled).
    pub armed: Counter,
    /// Jobs that settled without arming (uncertified or two-phase).
    pub completed: Counter,
    /// Armed updates confirmed done by the operator.
    pub confirmed: Counter,
    /// Jobs that failed planning outright.
    pub failed: Counter,
    /// Restored updates re-armed within their certified slack.
    pub restore_rearmed: Counter,
    /// Restored updates rolled back at restore time.
    pub restore_rolled_back: Counter,
    /// Journal lines that failed to parse during replay.
    pub journal_corrupt_lines: Counter,
    /// Arm records appended to the journal.
    pub journal_arm_records: Counter,
    /// Journal compactions (periodic, explicit and final).
    pub snapshots: Counter,
    /// IPC connections accepted.
    pub connections: Counter,
    /// IPC requests handled.
    pub requests: Counter,
    /// IPC lines that failed to parse into a request.
    pub proto_errors: Counter,
    /// Current depth of the high-priority admission queue.
    pub queue_depth_high: Gauge,
    /// Current depth of the normal-priority admission queue.
    pub queue_depth_normal: Gauge,
    /// Current depth of the low-priority admission queue.
    pub queue_depth_low: Gauge,
    /// Peak combined admission queue depth.
    pub queue_peak: Gauge,
    /// Armed records currently live in the journal.
    pub journal_live: Gauge,
    /// Warm-cache hits, copied from the engine at scrape time.
    pub cache_hits: Gauge,
    /// Warm-cache misses (materializations), copied at scrape time.
    pub cache_misses: Gauge,
    /// Warm-cache evictions under the capacity bound.
    pub cache_evictions: Gauge,
    /// Windows currently resident in the warm cache.
    pub cache_entries: Gauge,
    /// Approximate bytes held by the warm cache.
    pub cache_bytes: Gauge,
    /// Nanoseconds jobs spent queued before a worker picked them up.
    pub queue_wait_ns: Histogram,
    /// Nanoseconds workers spent planning one job.
    pub plan_ns: Histogram,
    /// Nanoseconds from submission to a settled status.
    pub submit_to_settle_ns: Histogram,
    /// Tail events dropped because a `chronusctl tail` client fell
    /// behind its bounded per-poll batch.
    pub tail_shed: Counter,
    /// Forensic flight-record dumps written (mirrors the recorder's
    /// own ledger onto the scrape).
    pub flight_dumps: Gauge,
    /// Dump triggers suppressed by the recorder's rate limit.
    pub flight_suppressed: Gauge,
    /// Flight-ring events lost to overwriting, summed over rings at
    /// scrape time.
    pub flight_dropped: Gauge,
    /// Per-tenant SLO latency observations (ns), exemplar-tagged with
    /// the winning `engine.plan` span id.
    pub slo_latency_ns: Histogram,
    /// SLO-bad events (latency objective missed, planning failed, or
    /// the update rolled back).
    pub slo_bad: Counter,
    /// SLO-good events.
    pub slo_good: Counter,
}

impl DaemonMetrics {
    /// Registers every instrument on a fresh scoped registry.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        let c = |name: &str| registry.counter(name);
        let g = |name: &str| registry.gauge(name);
        let h = |name: &str| registry.histogram(name);
        DaemonMetrics {
            submitted: c("chronus_daemon_submitted_total"),
            admitted: c("chronus_daemon_admitted_total"),
            shed_queue_full: c("chronus_daemon_shed_queue_full_total"),
            shed_rate_limited: c("chronus_daemon_shed_rate_limited_total"),
            shed_draining: c("chronus_daemon_shed_draining_total"),
            planned: c("chronus_daemon_planned_total"),
            armed: c("chronus_daemon_armed_total"),
            completed: c("chronus_daemon_completed_total"),
            confirmed: c("chronus_daemon_confirmed_total"),
            failed: c("chronus_daemon_failed_total"),
            restore_rearmed: c("chronus_daemon_restore_rearmed_total"),
            restore_rolled_back: c("chronus_daemon_restore_rolled_back_total"),
            journal_corrupt_lines: c("chronus_daemon_journal_corrupt_lines_total"),
            journal_arm_records: c("chronus_daemon_journal_arm_records_total"),
            snapshots: c("chronus_daemon_snapshots_total"),
            connections: c("chronus_daemon_connections_total"),
            requests: c("chronus_daemon_requests_total"),
            proto_errors: c("chronus_daemon_proto_errors_total"),
            queue_depth_high: g("chronus_daemon_queue_depth_high"),
            queue_depth_normal: g("chronus_daemon_queue_depth_normal"),
            queue_depth_low: g("chronus_daemon_queue_depth_low"),
            queue_peak: g("chronus_daemon_queue_peak"),
            journal_live: g("chronus_daemon_journal_live"),
            cache_hits: g("chronus_daemon_cache_hits"),
            cache_misses: g("chronus_daemon_cache_misses"),
            cache_evictions: g("chronus_daemon_cache_evictions"),
            cache_entries: g("chronus_daemon_cache_entries"),
            cache_bytes: g("chronus_daemon_cache_bytes"),
            queue_wait_ns: h("chronus_daemon_queue_wait_ns"),
            plan_ns: h("chronus_daemon_plan_ns"),
            submit_to_settle_ns: h("chronus_daemon_submit_to_settle_ns"),
            tail_shed: c("chronus_daemon_tail_shed_total"),
            flight_dumps: g("chronus_daemon_flight_dumps"),
            flight_suppressed: g("chronus_daemon_flight_suppressed"),
            flight_dropped: g("chronus_daemon_flight_dropped"),
            slo_latency_ns: h("chronus_daemon_slo_latency_ns"),
            slo_bad: c("chronus_daemon_slo_bad_total"),
            slo_good: c("chronus_daemon_slo_good_total"),
            cache_epoch: AtomicU64::new(0),
            registry,
        }
    }

    /// Registers (or fetches) the per-tenant burn-rate gauge for
    /// `window` (`"5m"`/`"1h"`), value in thousandths so a Prometheus
    /// integer gauge can carry a fractional burn rate.
    pub fn slo_burn_gauge(&self, tenant: &str, window: &str) -> Gauge {
        let slug: String = tenant
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        self.registry
            .gauge(&format!("chronus_daemon_slo_burn_{window}_x1000_{slug}"))
    }

    /// The scoped registry backing every instrument.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Updates the three per-class depth gauges and the peak.
    pub fn set_queue_depths(&self, high: usize, normal: usize, low: usize) {
        self.queue_depth_high.set(high as i64);
        self.queue_depth_normal.set(normal as i64);
        self.queue_depth_low.set(low as i64);
        self.queue_peak.max((high + normal + low) as i64);
    }

    /// Copies the engine's warm-cache counters onto the daemon gauges
    /// (called right before a scrape is rendered). The write sits
    /// between two epoch increments (odd while in flight) so
    /// [`DaemonMetrics::render_consistent`] can detect and retry a
    /// scrape that raced the copy.
    pub fn set_cache(&self, hits: u64, misses: u64, evictions: u64, entries: u64, bytes: u64) {
        self.cache_epoch.fetch_add(1, Ordering::Release);
        self.cache_hits.set(hits as i64);
        self.cache_misses.set(misses as i64);
        self.cache_evictions.set(evictions as i64);
        self.cache_entries.set(entries as i64);
        self.cache_bytes.set(bytes as i64);
        self.cache_epoch.fetch_add(1, Ordering::Release);
    }

    /// Renders the Prometheus text for this registry under the cache
    /// seqlock: the render is retried until it lands entirely inside
    /// one even epoch, so the five `chronus_daemon_cache_*` gauges in
    /// the output always come from a single [`DaemonMetrics::set_cache`]
    /// call.
    pub fn render_consistent(&self) -> String {
        loop {
            let before = self.cache_epoch.load(Ordering::Acquire);
            if before % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let text = self.registry.to_prometheus();
            if self.cache_epoch.load(Ordering::Acquire) == before {
                return text;
            }
        }
    }
}

impl Default for DaemonMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_series_is_daemon_scoped() {
        let m = DaemonMetrics::new();
        m.submitted.inc();
        m.set_queue_depths(1, 2, 3);
        m.queue_wait_ns.record(42);
        let snap = m.registry().snapshot();
        assert!(!snap.metrics.is_empty());
        for name in snap.metrics.keys() {
            assert!(
                name.starts_with("chronus_daemon_"),
                "series {name} escapes the daemon scope"
            );
        }
        assert_eq!(snap.counter("chronus_daemon_submitted_total"), Some(1));
        assert_eq!(snap.gauge("chronus_daemon_queue_peak"), Some(6));
    }

    #[test]
    fn slo_burn_gauge_slugs_tenant_names() {
        let m = DaemonMetrics::new();
        m.slo_burn_gauge("Team-A/prod", "5m").set(1500);
        let snap = m.registry().snapshot();
        assert_eq!(
            snap.gauge("chronus_daemon_slo_burn_5m_x1000_team_a_prod"),
            Some(1500)
        );
    }

    /// Pulls the value of one `chronus_daemon_cache_*` gauge out of a
    /// rendered Prometheus scrape.
    fn scrape_gauge(text: &str, name: &str) -> i64 {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix(name) {
                if let Ok(v) = rest.trim().parse::<i64>() {
                    return v;
                }
            }
        }
        panic!("gauge {name} missing from scrape");
    }

    #[test]
    fn scrape_never_tears_the_cache_gauges() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let m = Arc::new(DaemonMetrics::new());
        m.set_cache(0, 0, 0, 0, 0);
        let stop = Arc::new(AtomicBool::new(false));

        let writer = {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    // All five gauges carry the same monotone value, so
                    // any torn read shows up as an inequality below.
                    m.set_cache(i, i, i, i, i);
                }
                i
            })
        };

        let mut last = 0i64;
        for _ in 0..500 {
            let text = m.render_consistent();
            let hits = scrape_gauge(&text, "chronus_daemon_cache_hits");
            for name in [
                "chronus_daemon_cache_misses",
                "chronus_daemon_cache_evictions",
                "chronus_daemon_cache_entries",
                "chronus_daemon_cache_bytes",
            ] {
                assert_eq!(
                    scrape_gauge(&text, name),
                    hits,
                    "torn scrape: {name} != hits"
                );
            }
            assert!(
                hits >= last,
                "cache counters went backwards: {hits} < {last}"
            );
            last = hits;
        }

        stop.store(true, Ordering::Relaxed);
        let final_i = writer.join().unwrap();
        assert!(final_i > 0);
    }
}
