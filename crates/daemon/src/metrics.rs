//! The daemon's scoped metrics registry: every series is prefixed
//! `chronus_daemon_` so a scrape of the daemon composes with the
//! engine's `chronus_engine_*` series on one endpoint.

use chronus_trace::{Counter, Gauge, Histogram, MetricsRegistry};

/// All daemon instruments, registered once at startup on a scoped
/// [`MetricsRegistry`] (handles are lock-free on the hot path).
pub struct DaemonMetrics {
    registry: MetricsRegistry,
    /// Submissions received over IPC (before admission).
    pub submitted: Counter,
    /// Submissions accepted into an admission queue.
    pub admitted: Counter,
    /// Submissions shed because the class queue was full.
    pub shed_queue_full: Counter,
    /// Submissions shed by the tenant token bucket.
    pub shed_rate_limited: Counter,
    /// Submissions shed because the daemon was draining.
    pub shed_draining: Counter,
    /// Jobs the planning workers completed (any outcome).
    pub planned: Counter,
    /// Jobs that armed a certified timed schedule (journaled).
    pub armed: Counter,
    /// Jobs that settled without arming (uncertified or two-phase).
    pub completed: Counter,
    /// Armed updates confirmed done by the operator.
    pub confirmed: Counter,
    /// Jobs that failed planning outright.
    pub failed: Counter,
    /// Restored updates re-armed within their certified slack.
    pub restore_rearmed: Counter,
    /// Restored updates rolled back at restore time.
    pub restore_rolled_back: Counter,
    /// Journal lines that failed to parse during replay.
    pub journal_corrupt_lines: Counter,
    /// Arm records appended to the journal.
    pub journal_arm_records: Counter,
    /// Journal compactions (periodic, explicit and final).
    pub snapshots: Counter,
    /// IPC connections accepted.
    pub connections: Counter,
    /// IPC requests handled.
    pub requests: Counter,
    /// IPC lines that failed to parse into a request.
    pub proto_errors: Counter,
    /// Current depth of the high-priority admission queue.
    pub queue_depth_high: Gauge,
    /// Current depth of the normal-priority admission queue.
    pub queue_depth_normal: Gauge,
    /// Current depth of the low-priority admission queue.
    pub queue_depth_low: Gauge,
    /// Peak combined admission queue depth.
    pub queue_peak: Gauge,
    /// Armed records currently live in the journal.
    pub journal_live: Gauge,
    /// Warm-cache hits, copied from the engine at scrape time.
    pub cache_hits: Gauge,
    /// Warm-cache misses (materializations), copied at scrape time.
    pub cache_misses: Gauge,
    /// Warm-cache evictions under the capacity bound.
    pub cache_evictions: Gauge,
    /// Windows currently resident in the warm cache.
    pub cache_entries: Gauge,
    /// Approximate bytes held by the warm cache.
    pub cache_bytes: Gauge,
    /// Nanoseconds jobs spent queued before a worker picked them up.
    pub queue_wait_ns: Histogram,
    /// Nanoseconds workers spent planning one job.
    pub plan_ns: Histogram,
    /// Nanoseconds from submission to a settled status.
    pub submit_to_settle_ns: Histogram,
}

impl DaemonMetrics {
    /// Registers every instrument on a fresh scoped registry.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        let c = |name: &str| registry.counter(name);
        let g = |name: &str| registry.gauge(name);
        let h = |name: &str| registry.histogram(name);
        DaemonMetrics {
            submitted: c("chronus_daemon_submitted_total"),
            admitted: c("chronus_daemon_admitted_total"),
            shed_queue_full: c("chronus_daemon_shed_queue_full_total"),
            shed_rate_limited: c("chronus_daemon_shed_rate_limited_total"),
            shed_draining: c("chronus_daemon_shed_draining_total"),
            planned: c("chronus_daemon_planned_total"),
            armed: c("chronus_daemon_armed_total"),
            completed: c("chronus_daemon_completed_total"),
            confirmed: c("chronus_daemon_confirmed_total"),
            failed: c("chronus_daemon_failed_total"),
            restore_rearmed: c("chronus_daemon_restore_rearmed_total"),
            restore_rolled_back: c("chronus_daemon_restore_rolled_back_total"),
            journal_corrupt_lines: c("chronus_daemon_journal_corrupt_lines_total"),
            journal_arm_records: c("chronus_daemon_journal_arm_records_total"),
            snapshots: c("chronus_daemon_snapshots_total"),
            connections: c("chronus_daemon_connections_total"),
            requests: c("chronus_daemon_requests_total"),
            proto_errors: c("chronus_daemon_proto_errors_total"),
            queue_depth_high: g("chronus_daemon_queue_depth_high"),
            queue_depth_normal: g("chronus_daemon_queue_depth_normal"),
            queue_depth_low: g("chronus_daemon_queue_depth_low"),
            queue_peak: g("chronus_daemon_queue_peak"),
            journal_live: g("chronus_daemon_journal_live"),
            cache_hits: g("chronus_daemon_cache_hits"),
            cache_misses: g("chronus_daemon_cache_misses"),
            cache_evictions: g("chronus_daemon_cache_evictions"),
            cache_entries: g("chronus_daemon_cache_entries"),
            cache_bytes: g("chronus_daemon_cache_bytes"),
            queue_wait_ns: h("chronus_daemon_queue_wait_ns"),
            plan_ns: h("chronus_daemon_plan_ns"),
            submit_to_settle_ns: h("chronus_daemon_submit_to_settle_ns"),
            registry,
        }
    }

    /// The scoped registry backing every instrument.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Updates the three per-class depth gauges and the peak.
    pub fn set_queue_depths(&self, high: usize, normal: usize, low: usize) {
        self.queue_depth_high.set(high as i64);
        self.queue_depth_normal.set(normal as i64);
        self.queue_depth_low.set(low as i64);
        self.queue_peak.max((high + normal + low) as i64);
    }

    /// Copies the engine's warm-cache counters onto the daemon gauges
    /// (called right before a scrape is rendered).
    pub fn set_cache(&self, hits: u64, misses: u64, evictions: u64, entries: u64, bytes: u64) {
        self.cache_hits.set(hits as i64);
        self.cache_misses.set(misses as i64);
        self.cache_evictions.set(evictions as i64);
        self.cache_entries.set(entries as i64);
        self.cache_bytes.set(bytes as i64);
    }
}

impl Default for DaemonMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_series_is_daemon_scoped() {
        let m = DaemonMetrics::new();
        m.submitted.inc();
        m.set_queue_depths(1, 2, 3);
        m.queue_wait_ns.record(42);
        let snap = m.registry().snapshot();
        assert!(!snap.metrics.is_empty());
        for name in snap.metrics.keys() {
            assert!(
                name.starts_with("chronus_daemon_"),
                "series {name} escapes the daemon scope"
            );
        }
        assert_eq!(snap.counter("chronus_daemon_submitted_total"), Some(1));
        assert_eq!(snap.gauge("chronus_daemon_queue_peak"), Some(6));
    }
}
