//! Write-ahead journal of armed schedules.
//!
//! Before `chronusd` acknowledges an armed update, it appends one
//! line-delimited JSON record carrying everything restore needs: the
//! instance, the timed schedule, the consistency [`Certificate`], the
//! optional slack certificate and the arm epoch. Settling an update
//! appends a tombstone (`complete`/`rollback`) rather than rewriting
//! the file, so a crash between any two lines loses nothing; replay
//! folds the log into the set of still-live records. Compaction
//! rewrites the live set into a temp file and renames it into place.

use crate::admission::Priority;
use chronus_clock::Nanos;
use chronus_net::codec::{instance_from_value, instance_to_value};
use chronus_net::UpdateInstance;
use chronus_timenet::{schedule_from_value, schedule_to_value, Schedule};
use chronus_verify::{
    certificate_from_value, certificate_to_value, slack_from_value, slack_to_value, Certificate,
    SlackCertificate,
};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Everything needed to re-arm (or roll back) one certified update
/// after a restart.
#[derive(Clone, Debug)]
pub struct ArmedRecord {
    /// Daemon-assigned update id.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Priority class it was admitted under.
    pub priority: Priority,
    /// Daemon-clock epoch (ns) the schedule's step 0 was armed at.
    pub epoch_ns: Nanos,
    /// Dilation factor the slack stage applied (1 = undilated).
    pub dilation: i64,
    /// The update instance the certificate certifies.
    pub instance: UpdateInstance,
    /// The armed timed schedule.
    pub schedule: Schedule,
    /// The consistency certificate issued at plan time.
    pub certificate: Certificate,
    /// The certified timing tolerance, when the slack stage ran.
    pub slack: Option<SlackCertificate>,
    /// The `engine.plan` trace-span id the plan was produced under
    /// (0 when tracing was off at plan time). Restore uses it to tag
    /// SLO histogram exemplars and forensic dumps with the exact
    /// planning span of a rolled-back update.
    pub span_id: u64,
    /// Planning wall-clock nanoseconds, persisted so a post-restart
    /// rollback can still account the update's latency to its tenant.
    pub plan_ns: u64,
}

impl ArmedRecord {
    fn to_value(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("op".to_string(), Value::from("arm"));
        obj.insert("id".to_string(), Value::from_u64_exact(self.id));
        obj.insert("tenant".to_string(), Value::from(self.tenant.as_str()));
        obj.insert("priority".to_string(), Value::from(self.priority.as_str()));
        obj.insert(
            "epoch_ns".to_string(),
            Value::from_i128_exact(self.epoch_ns),
        );
        obj.insert("dilation".to_string(), Value::from_i64_exact(self.dilation));
        obj.insert("instance".to_string(), instance_to_value(&self.instance));
        obj.insert("schedule".to_string(), schedule_to_value(&self.schedule));
        obj.insert(
            "certificate".to_string(),
            certificate_to_value(&self.certificate),
        );
        obj.insert(
            "slack".to_string(),
            match &self.slack {
                Some(s) => slack_to_value(s),
                None => Value::Null,
            },
        );
        obj.insert("span_id".to_string(), Value::from_u64_exact(self.span_id));
        obj.insert("plan_ns".to_string(), Value::from_u64_exact(self.plan_ns));
        Value::Object(obj)
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let get = |key: &str| {
            v.get(key)
                .ok_or_else(|| format!("arm record missing `{key}`"))
        };
        let id = get("id")?
            .as_u64_exact()
            .ok_or_else(|| "arm record `id` not a u64".to_string())?;
        let tenant = get("tenant")?
            .as_str()
            .ok_or_else(|| "arm record `tenant` not a string".to_string())?
            .to_string();
        let priority = Priority::parse(
            get("priority")?
                .as_str()
                .ok_or_else(|| "arm record `priority` not a string".to_string())?,
        )?;
        let epoch_ns = get("epoch_ns")?
            .as_i128_exact()
            .ok_or_else(|| "arm record `epoch_ns` not an integer".to_string())?;
        let dilation = get("dilation")?
            .as_i64_exact()
            .ok_or_else(|| "arm record `dilation` not an i64".to_string())?;
        let instance = instance_from_value(get("instance")?).map_err(|e| e.to_string())?;
        let schedule = schedule_from_value(get("schedule")?).map_err(|e| e.to_string())?;
        let certificate = certificate_from_value(get("certificate")?).map_err(|e| e.to_string())?;
        let slack = match get("slack")? {
            Value::Null => None,
            other => Some(slack_from_value(other).map_err(|e| e.to_string())?),
        };
        // Optional (absent in journals written before the flight
        // recorder existed): default to "no span recorded".
        let span_id = v.get("span_id").and_then(Value::as_u64_exact).unwrap_or(0);
        let plan_ns = v.get("plan_ns").and_then(Value::as_u64_exact).unwrap_or(0);
        Ok(ArmedRecord {
            id,
            tenant,
            priority,
            epoch_ns,
            dilation,
            instance,
            schedule,
            certificate,
            slack,
            span_id,
            plan_ns,
        })
    }
}

/// Result of replaying a journal file.
#[derive(Debug, Default)]
pub struct Replay {
    /// Records armed but never settled — the restart's work list,
    /// in arm order.
    pub live: Vec<ArmedRecord>,
    /// Lines that failed to parse (e.g. a crash mid-append truncated
    /// the last line). Replay continues past them.
    pub corrupt_lines: u64,
    /// Highest update id seen anywhere in the log, settled or not;
    /// the restarted daemon allocates ids above it.
    pub max_id: u64,
}

/// Append-only journal handle. All appends flush and `fsync` before
/// returning, so an acknowledged arm survives a process crash, power
/// loss or host crash on the very next instruction.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
}

/// Fsyncs the directory holding `path`, making a just-renamed file
/// durable against power loss (no-op on non-Unix targets, where
/// directories cannot be opened for syncing).
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            File::open(dir)?.sync_all()?;
        }
    }
    Ok(())
}

fn tombstone(op: &str, id: u64) -> Value {
    let mut obj = Map::new();
    obj.insert("op".to_string(), Value::from(op));
    obj.insert("id".to_string(), Value::from_u64_exact(id));
    Value::Object(obj)
}

impl Journal {
    /// Opens (creating directories and the file as needed) the journal
    /// at `path` for appending.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
        })
    }

    /// The file this journal appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&mut self, v: &Value) -> std::io::Result<()> {
        let line = serde_json::to_string(v)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        // Push past the OS page cache: an acknowledged record must
        // survive power loss, not just a process crash.
        self.writer.get_ref().sync_data()
    }

    /// Appends an arm record. Must complete before the arm is
    /// acknowledged to the submitter.
    pub fn append_arm(&mut self, record: &ArmedRecord) -> std::io::Result<()> {
        self.append(&record.to_value())
    }

    /// Appends a completion tombstone for `id`.
    pub fn append_complete(&mut self, id: u64) -> std::io::Result<()> {
        self.append(&tombstone("complete", id))
    }

    /// Appends a rollback tombstone for `id`.
    pub fn append_rollback(&mut self, id: u64) -> std::io::Result<()> {
        self.append(&tombstone("rollback", id))
    }

    /// Replays the journal at `path`. A missing file is an empty
    /// replay; unparsable lines are counted, not fatal.
    pub fn replay(path: &Path) -> std::io::Result<Replay> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::default()),
            Err(e) => return Err(e),
        };
        let mut live: BTreeMap<u64, ArmedRecord> = BTreeMap::new();
        let mut order: Vec<u64> = Vec::new();
        let mut replay = Replay::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed: Result<(), String> = (|| {
                let v = serde_json::from_str(line).map_err(|e| e.to_string())?;
                let op = v
                    .get("op")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "record missing `op`".to_string())?
                    .to_string();
                match op.as_str() {
                    "arm" => {
                        let record = ArmedRecord::from_value(&v)?;
                        let id = record.id;
                        replay.max_id = replay.max_id.max(id);
                        if live.insert(id, record).is_none() {
                            order.push(id);
                        }
                        Ok(())
                    }
                    "complete" | "rollback" => {
                        let id = v
                            .get("id")
                            .and_then(Value::as_u64_exact)
                            .ok_or_else(|| "tombstone missing `id`".to_string())?;
                        replay.max_id = replay.max_id.max(id);
                        live.remove(&id);
                        order.retain(|x| *x != id);
                        Ok(())
                    }
                    other => Err(format!("unknown op `{other}`")),
                }
            })();
            if parsed.is_err() {
                replay.corrupt_lines += 1;
            }
        }
        replay.live = order
            .into_iter()
            .filter_map(|id| live.remove(&id))
            .collect();
        Ok(replay)
    }

    /// Compacts the journal: writes `live` to a temp file and renames
    /// it over the log, then reopens this handle on the new file.
    pub fn compact(&mut self, live: &[&ArmedRecord]) -> std::io::Result<()> {
        let tmp = self.path.with_extension("jsonl.tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            for record in live {
                let line = serde_json::to_string(&record.to_value()).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                writeln!(w, "{line}")?;
            }
            w.flush()?;
            // The temp file's contents must be durable before the
            // rename publishes it as the journal.
            w.get_ref().sync_all()?;
        }
        self.writer.flush()?;
        fs::rename(&tmp, &self.path)?;
        // Persist the rename itself: without the directory fsync a
        // power loss can roll back to the old (or no) journal file.
        sync_parent_dir(&self.path)?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        self.writer = BufWriter::new(file);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::motivating_example;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chronus-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir.join("journal.jsonl")
    }

    fn armed(id: u64) -> ArmedRecord {
        use chronus_engine::{Engine, EngineConfig};
        use std::sync::Arc;
        let instance = motivating_example();
        let engine = Engine::new(EngineConfig::with_workers(1));
        let planned = engine
            .plan_instances(vec![Arc::new(instance.clone())])
            .pop()
            .expect("one plan for one instance");
        let schedule = planned.timed_schedule().expect("timed winner").clone();
        let certificate = planned.certificate.expect("certified by default");
        ArmedRecord {
            id,
            tenant: "t".to_string(),
            priority: Priority::Normal,
            epoch_ns: 1_700_000_000_000_000_000 + id as Nanos,
            dilation: 1,
            instance,
            schedule,
            certificate,
            slack: None,
            span_id: 7700 + id,
            plan_ns: 1_000 * id,
        }
    }

    #[test]
    fn replay_folds_arms_and_tombstones() {
        let path = scratch("fold");
        let mut j = Journal::open(&path).unwrap();
        for id in 1..=4 {
            j.append_arm(&armed(id)).unwrap();
        }
        j.append_complete(2).unwrap();
        j.append_rollback(4).unwrap();
        let replay = Journal::replay(&path).unwrap();
        let live: Vec<u64> = replay.live.iter().map(|r| r.id).collect();
        assert_eq!(live, vec![1, 3]);
        assert_eq!(replay.corrupt_lines, 0);
        assert_eq!(replay.max_id, 4);
        // Restored records carry checkable certificates.
        for record in &replay.live {
            assert_eq!(record.certificate.check(&record.instance), Ok(()));
        }
    }

    #[test]
    fn truncated_trailing_line_is_counted_not_fatal() {
        let path = scratch("trunc");
        let mut j = Journal::open(&path).unwrap();
        j.append_arm(&armed(1)).unwrap();
        j.append_arm(&armed(2)).unwrap();
        drop(j);
        // Simulate a crash mid-append: chop the last line in half.
        let text = fs::read_to_string(&path).unwrap();
        let keep = text.len() - 40;
        fs::write(&path, &text.as_bytes()[..keep]).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.live.len(), 1);
        assert_eq!(replay.live.first().map(|r| r.id), Some(1));
        assert_eq!(replay.corrupt_lines, 1);
    }

    #[test]
    fn compaction_preserves_the_live_set() {
        let path = scratch("compact");
        let mut j = Journal::open(&path).unwrap();
        for id in 1..=3 {
            j.append_arm(&armed(id)).unwrap();
        }
        j.append_complete(1).unwrap();
        let replay = Journal::replay(&path).unwrap();
        let live: Vec<&ArmedRecord> = replay.live.iter().collect();
        j.compact(&live).unwrap();
        // The compacted file holds exactly the live records and the
        // handle keeps appending to it.
        let lines = fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines, 2);
        j.append_rollback(3).unwrap();
        let again = Journal::replay(&path).unwrap();
        assert_eq!(again.live.iter().map(|r| r.id).collect::<Vec<_>>(), [2]);
        assert_eq!(again.corrupt_lines, 0);
    }

    #[test]
    fn journals_without_span_fields_still_parse() {
        // Journals written before the flight recorder existed carry no
        // span_id/plan_ns; replay must default them, not reject.
        let v = armed(5).to_value();
        let text = serde_json::to_string(&v).unwrap();
        let stripped = text
            .replace("\"span_id\":7705,", "")
            .replace("\"span_id\":7705", "")
            .replace("\"plan_ns\":5000,", "")
            .replace("\"plan_ns\":5000", "")
            .replace(",}", "}");
        assert_ne!(stripped, text, "fixture must actually strip the fields");
        let v2 = serde_json::from_str(&stripped).unwrap();
        let back = ArmedRecord::from_value(&v2).unwrap();
        assert_eq!(back.span_id, 0);
        assert_eq!(back.plan_ns, 0);
        // And the full round trip preserves them.
        let roundtrip = ArmedRecord::from_value(&armed(5).to_value()).unwrap();
        assert_eq!(roundtrip.span_id, 7705);
        assert_eq!(roundtrip.plan_ns, 5_000);
    }

    #[test]
    fn missing_file_replays_empty() {
        let replay = Journal::replay(Path::new("/nonexistent/chronus/journal.jsonl")).unwrap();
        assert!(replay.live.is_empty());
        assert_eq!(replay.max_id, 0);
    }
}
