//! The daemon proper: admission queues feeding worker threads over a
//! resident [`Engine`], a write-ahead journal of armed schedules, and
//! the restore path that re-arms or rolls back after a crash.
//!
//! Locking story: the admission queues and the status table each sit
//! behind a `std::sync::Mutex` + `Condvar` pair (the `parking_lot`
//! shim has no condvar). Locks are never held across planning — a
//! worker pops under the queue lock, releases it, and plans with only
//! the engine's internal synchronization. Poisoned locks are
//! recovered with `PoisonError::into_inner`: every protected value is
//! a plain data structure that stays coherent even if a panicking
//! thread abandoned it mid-update.

use crate::admission::{AdmissionQueues, Priority, QueuedJob, Shed};
use crate::config::DaemonConfig;
use crate::journal::{ArmedRecord, Journal};
use crate::metrics::DaemonMetrics;
use crate::slo::SloTracker;
use chronus_clock::Nanos;
use chronus_engine::{DrainReport, Engine, UpdateRequest};
use chronus_faults::{RecoveryAction, RecoveryPolicy, SlackBudget};
use chronus_net::UpdateInstance;
use chronus_trace::FlightRecorder;
use parking_lot::RwLock;
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Lifecycle of one submitted update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateState {
    /// Admitted, waiting for a planning worker.
    Queued,
    /// A worker is planning it.
    Planning,
    /// A certified timed schedule is armed and journaled; awaiting
    /// operator confirmation.
    Armed,
    /// Settled successfully (uncertified/two-phase plans settle
    /// directly; armed updates settle on confirm).
    Completed,
    /// Settled by rollback (restore found its certified window
    /// unreachable).
    RolledBack,
    /// Settled by failure (e.g. the instance failed validation).
    Failed,
}

impl UpdateState {
    /// Wire name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            UpdateState::Queued => "queued",
            UpdateState::Planning => "planning",
            UpdateState::Armed => "armed",
            UpdateState::Completed => "completed",
            UpdateState::RolledBack => "rolled_back",
            UpdateState::Failed => "failed",
        }
    }

    /// A settled update will never change state on its own again
    /// (armed counts: it holds steady until confirmed or restored).
    pub fn is_settled(self) -> bool {
        !matches!(self, UpdateState::Queued | UpdateState::Planning)
    }
}

/// Point-in-time view of one update's progress.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateStatus {
    /// Daemon-assigned id.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Priority class.
    pub priority: Priority,
    /// Current lifecycle state.
    pub state: UpdateState,
    /// Human-oriented detail (winning stage, rollback reason, …).
    pub detail: String,
    /// Whether a consistency certificate backs the plan.
    pub certified: bool,
    /// Daemon-clock arm epoch for armed updates.
    pub epoch_ns: Option<Nanos>,
}

impl UpdateStatus {
    /// Encodes the status for the IPC layer.
    pub fn to_value(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("id".to_string(), Value::from_u64_exact(self.id));
        obj.insert("tenant".to_string(), Value::from(self.tenant.as_str()));
        obj.insert("priority".to_string(), Value::from(self.priority.as_str()));
        obj.insert("state".to_string(), Value::from(self.state.as_str()));
        obj.insert("detail".to_string(), Value::from(self.detail.as_str()));
        obj.insert("certified".to_string(), Value::Bool(self.certified));
        obj.insert(
            "epoch_ns".to_string(),
            match self.epoch_ns {
                Some(e) => Value::from_i128_exact(e),
                None => Value::Null,
            },
        );
        Value::Object(obj)
    }
}

/// What the restore pass did with the journal's live records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Live (armed, unsettled) records found in the journal.
    pub live_found: u64,
    /// Records re-armed: certificate re-checked and every trigger
    /// still reachable within its certified slack.
    pub rearmed: u64,
    /// Records rolled back: certificate broken or certified window
    /// unreachable.
    pub rolled_back: u64,
    /// Records neither re-armed nor rolled back. Zero by
    /// construction; reported so tests can pin it.
    pub lost: u64,
    /// Journal lines that failed to parse.
    pub corrupt_lines: u64,
}

/// Outcome of a graceful [`Daemon::shutdown`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Requests the resident engine planned over its lifetime.
    pub engine_planned: u64,
    /// Engine-queue requests shed by the engine drain (always empty:
    /// daemon workers plan synchronously).
    pub engine_leftovers: usize,
    /// Armed updates still live (persisted for the next restore).
    pub armed_remaining: usize,
    /// Live records written by the final snapshot.
    pub snapshot_live: usize,
}

struct Inner {
    config: DaemonConfig,
    engine: RwLock<Option<Engine>>,
    admission: Mutex<AdmissionQueues>,
    work_cv: Condvar,
    statuses: Mutex<BTreeMap<u64, UpdateStatus>>,
    status_cv: Condvar,
    journal: Mutex<Journal>,
    armed: Mutex<BTreeMap<u64, ArmedRecord>>,
    metrics: DaemonMetrics,
    slo: Mutex<SloTracker>,
    /// Shed-storm window: start (daemon-clock ns, truncated to u64)
    /// and sheds seen inside it. Races on the reset only merge two
    /// concurrent storms into one — the trigger still fires.
    shed_window_start: AtomicU64,
    shed_window_count: AtomicU64,
    state: AtomicU8,
    next_id: AtomicU64,
    base_ns: Nanos,
    started: Instant,
    restore: RestoreReport,
}

/// Sheds inside one window before the storm trigger fires.
const SHED_STORM_COUNT: u64 = 8;
/// Shed-storm window length.
const SHED_STORM_WINDOW_NS: u64 = 1_000_000_000;

impl Inner {
    fn now_ns(&self) -> Nanos {
        self.base_ns + self.started.elapsed().as_nanos() as Nanos
    }

    fn set_status(&self, status: UpdateStatus) {
        lock(&self.statuses).insert(status.id, status);
        self.status_cv.notify_all();
    }

    fn update_state(&self, id: u64, state: UpdateState, detail: &str) {
        let mut map = lock(&self.statuses);
        if let Some(s) = map.get_mut(&id) {
            s.state = state;
            s.detail = detail.to_string();
        }
        drop(map);
        self.status_cv.notify_all();
    }

    fn publish_depths(&self, queues: &AdmissionQueues) {
        let (h, n, l) = queues.depths();
        self.metrics.set_queue_depths(h, n, l);
    }

    /// Scores one outcome against the tenant's SLO: updates the burn
    /// gauges, tags the latency histogram with the plan span as its
    /// exemplar, and fires the fast-burn instant + forensic dump when
    /// the short window crosses the threshold.
    fn record_slo(&self, tenant: &str, latency_ns: u64, ok: bool, span_id: u64) {
        let now = self.now_ns();
        let obs = lock(&self.slo).record(tenant, latency_ns as Nanos, ok, now);
        self.metrics
            .slo_latency_ns
            .record_with_exemplar(latency_ns, span_id);
        if obs.bad {
            self.metrics.slo_bad.inc();
        } else {
            self.metrics.slo_good.inc();
        }
        self.metrics
            .slo_burn_gauge(tenant, "5m")
            .set((obs.burn.short * 1000.0) as i64);
        self.metrics
            .slo_burn_gauge(tenant, "1h")
            .set((obs.burn.long * 1000.0) as i64);
        if obs.crossed {
            chronus_trace::instant!(
                "daemon.slo_burn",
                burn_x1000 = (obs.burn.short * 1000.0) as u64
            );
            FlightRecorder::trigger("slo-burn");
        }
    }

    /// Counts one admission shed toward the storm window; a burst of
    /// [`SHED_STORM_COUNT`] sheds inside one window is the overload
    /// signature that fires a forensic dump.
    fn note_shed(&self) {
        let now = self.now_ns().max(0) as u64;
        let start = self.shed_window_start.load(Ordering::Relaxed);
        if start == 0 || now.saturating_sub(start) > SHED_STORM_WINDOW_NS {
            self.shed_window_start.store(now, Ordering::Relaxed);
            self.shed_window_count.store(1, Ordering::Relaxed);
            return;
        }
        let sheds = self.shed_window_count.fetch_add(1, Ordering::Relaxed) + 1;
        if sheds == SHED_STORM_COUNT {
            chronus_trace::instant!("daemon.shed_storm", sheds = sheds);
            FlightRecorder::trigger("shed-storm");
        }
    }

    /// One worker's lifetime: pop by priority, plan, settle. Exits
    /// when draining and the queues are empty, or immediately on
    /// STOPPED (the crash-like drop path).
    fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut queues = lock(&self.admission);
                loop {
                    if self.state.load(Ordering::Acquire) == STOPPED {
                        return;
                    }
                    if let Some(job) = queues.pop() {
                        self.publish_depths(&queues);
                        break job;
                    }
                    if self.state.load(Ordering::Acquire) == DRAINING {
                        return;
                    }
                    let (guard, _) = self
                        .work_cv
                        .wait_timeout(queues, Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner);
                    queues = guard;
                }
            };
            self.plan_job(job);
        }
    }

    fn plan_job(&self, job: QueuedJob) {
        let picked_up_ns = self.now_ns();
        self.metrics
            .queue_wait_ns
            .record(picked_up_ns.saturating_sub(job.enqueued_ns).max(0) as u64);
        self.update_state(job.id, UpdateState::Planning, "planning");

        let engine_guard = self.engine.read();
        let Some(engine) = engine_guard.as_ref() else {
            self.metrics.failed.inc();
            self.record_slo(&job.tenant, 0, false, 0);
            self.update_state(job.id, UpdateState::Failed, "engine stopped");
            return;
        };
        let request = UpdateRequest::new(job.id, job.instance.clone(), job.deadline);
        let planned = engine.plan_one(request);
        drop(engine_guard);
        self.metrics.planned.inc();
        let plan_ns = planned.elapsed.as_nanos() as u64;
        self.metrics
            .plan_ns
            .record_with_exemplar(plan_ns, planned.span_id);
        self.record_slo(
            &job.tenant,
            plan_ns,
            !planned.deadline_exceeded,
            planned.span_id,
        );

        match (planned.timed_schedule(), &planned.certificate) {
            (Ok(schedule), Some(certificate)) => {
                let epoch_ns = self.now_ns();
                let record = ArmedRecord {
                    id: job.id,
                    tenant: job.tenant.clone(),
                    priority: job.priority,
                    epoch_ns,
                    dilation: planned.dilation,
                    instance: (*job.instance).clone(),
                    schedule: schedule.clone(),
                    certificate: certificate.clone(),
                    slack: planned.slack.clone(),
                    span_id: planned.span_id,
                    plan_ns,
                };
                // WAL discipline: the arm record is durable before the
                // status (and hence any IPC acknowledgment) says so. The
                // `armed` lock is held across both the append and the map
                // insert so a concurrent compaction (which snapshots the
                // map and rewrites the file under the same lock) cannot
                // interleave between them and drop the fresh record from
                // disk. Lock order is `armed` → `journal` everywhere.
                let live = {
                    let mut armed = lock(&self.armed);
                    if let Err(e) = lock(&self.journal).append_arm(&record) {
                        drop(armed);
                        self.metrics.failed.inc();
                        self.update_state(
                            job.id,
                            UpdateState::Failed,
                            &format!("journal append failed: {e}"),
                        );
                        return;
                    }
                    armed.insert(job.id, record);
                    armed.len()
                };
                self.metrics.journal_arm_records.inc();
                self.metrics.armed.inc();
                self.metrics.journal_live.set(live as i64);
                let mut map = lock(&self.statuses);
                if let Some(s) = map.get_mut(&job.id) {
                    s.state = UpdateState::Armed;
                    s.detail = format!("armed ({} winner)", planned.winner);
                    s.certified = true;
                    s.epoch_ns = Some(epoch_ns);
                }
                drop(map);
                self.status_cv.notify_all();
            }
            (Ok(_), None) => {
                self.metrics.completed.inc();
                self.update_state(job.id, UpdateState::Completed, "timed (uncertified)");
            }
            (Err(_), _) => {
                self.metrics.completed.inc();
                self.update_state(job.id, UpdateState::Completed, "two-phase fallback");
            }
        }
        self.metrics
            .submit_to_settle_ns
            .record(self.now_ns().saturating_sub(job.enqueued_ns).max(0) as u64);
    }

    /// Compacts the journal down to the live armed set. Holds the
    /// `armed` lock for the whole rewrite so arm/confirm (which mutate
    /// the map and the journal under the same lock) cannot interleave
    /// and have their records dropped from the rewritten file.
    fn compact_journal(&self) -> std::io::Result<usize> {
        let armed = lock(&self.armed);
        let live: Vec<&ArmedRecord> = armed.values().collect();
        let count = live.len();
        lock(&self.journal).compact(&live)?;
        self.metrics.snapshots.inc();
        Ok(count)
    }
}

/// The `chronusd` service: admission, planning workers, warm engine
/// state and the write-ahead journal, behind a cloneable handle-free
/// API (the IPC server shares it via `Arc<Daemon>` internally).
pub struct Daemon {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    snapshotter: Mutex<Option<JoinHandle<()>>>,
}

impl Daemon {
    /// Boots the daemon: opens (and replays) the journal, restores
    /// armed updates through the re-arm-or-rollback policy, starts the
    /// resident engine, the planning workers and (when configured) the
    /// periodic snapshotter.
    pub fn start(config: DaemonConfig) -> Result<Daemon, String> {
        let journal_path = config.journal_path();
        let replay = Journal::replay(&journal_path)
            .map_err(|e| format!("journal replay {}: {e}", journal_path.display()))?;
        let mut journal = Journal::open(&journal_path)
            .map_err(|e| format!("journal open {}: {e}", journal_path.display()))?;

        let base_ns = config.base_epoch_ns.unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_nanos() as Nanos)
        });
        let started = Instant::now();
        let now_ns = base_ns + started.elapsed().as_nanos() as Nanos;

        let metrics = DaemonMetrics::new();
        metrics.journal_corrupt_lines.add(replay.corrupt_lines);

        // Restore pass: every live record is re-armed within its
        // certified slack or rolled back — never silently dropped.
        let policy = RecoveryPolicy::new(config.rearm_margin_ns);
        let mut slo = SloTracker::new(config.slo());
        let mut rollback_trigger = false;
        let mut armed = BTreeMap::new();
        let mut statuses = BTreeMap::new();
        let mut restore = RestoreReport {
            live_found: replay.live.len() as u64,
            corrupt_lines: replay.corrupt_lines,
            ..RestoreReport::default()
        };
        for record in replay.live {
            let budget = record
                .slack
                .as_ref()
                .map(|s| SlackBudget::new(s.delta_ns(config.step_ns)))
                .unwrap_or_else(SlackBudget::zero);
            let cert_ok = record.certificate.check(&record.instance).is_ok();
            let reachable = record.schedule.iter().all(|(_, _, t)| {
                let nominal = record.epoch_ns + (t as Nanos) * config.step_ns;
                matches!(
                    policy.decide(nominal, now_ns, budget),
                    RecoveryAction::Rearm { .. }
                )
            });
            let status = if cert_ok && reachable {
                restore.rearmed += 1;
                metrics.restore_rearmed.inc();
                let status = UpdateStatus {
                    id: record.id,
                    tenant: record.tenant.clone(),
                    priority: record.priority,
                    state: UpdateState::Armed,
                    detail: "re-armed within certified slack".to_string(),
                    certified: true,
                    epoch_ns: Some(record.epoch_ns),
                };
                armed.insert(record.id, record);
                status
            } else {
                restore.rolled_back += 1;
                metrics.restore_rolled_back.inc();
                // A rollback is an availability failure for the tenant:
                // burn it against the SLO, tagging the latency bucket
                // with the journaled plan span so the forensic dump can
                // tie the exemplar back to the rolled-back update.
                slo.record(&record.tenant, record.plan_ns as Nanos, false, now_ns);
                metrics.slo_bad.inc();
                metrics
                    .slo_latency_ns
                    .record_with_exemplar(record.plan_ns, record.span_id);
                rollback_trigger = true;
                journal
                    .append_rollback(record.id)
                    .map_err(|e| format!("journal rollback: {e}"))?;
                UpdateStatus {
                    id: record.id,
                    tenant: record.tenant.clone(),
                    priority: record.priority,
                    state: UpdateState::RolledBack,
                    detail: if cert_ok {
                        "certified window unreachable; rolled back".to_string()
                    } else {
                        "stored certificate no longer checks; rolled back".to_string()
                    },
                    certified: cert_ok,
                    epoch_ns: Some(record.epoch_ns),
                }
            };
            statuses.insert(status.id, status);
        }
        metrics.journal_live.set(armed.len() as i64);

        let engine = Engine::new(config.engine());
        let worker_count = config.workers.max(1);
        let snapshot_interval_ms = config.snapshot_interval_ms;
        let inner = Arc::new(Inner {
            admission: Mutex::new(AdmissionQueues::new(config.admission())),
            config,
            engine: RwLock::new(Some(engine)),
            work_cv: Condvar::new(),
            statuses: Mutex::new(statuses),
            status_cv: Condvar::new(),
            journal: Mutex::new(journal),
            armed: Mutex::new(armed),
            metrics,
            slo: Mutex::new(slo),
            shed_window_start: AtomicU64::new(0),
            shed_window_count: AtomicU64::new(0),
            state: AtomicU8::new(RUNNING),
            next_id: AtomicU64::new(replay.max_id),
            base_ns,
            started,
            restore,
        });

        // This daemon's registry backs the process-global forensic
        // dumps from here on (last daemon started wins, which is what
        // restart-in-one-process tests want). Registered before the
        // restore-rollback trigger fires so a dump taken for the
        // rollback embeds the SLO exemplar recorded above.
        {
            let inner = Arc::clone(&inner);
            FlightRecorder::set_metrics_source(Box::new(move || {
                inner.metrics.registry().to_json()
            }));
        }
        if rollback_trigger {
            chronus_trace::instant!(
                "daemon.restore_rollback",
                rolled_back = inner.restore.rolled_back
            );
            FlightRecorder::trigger("restore-rollback");
        }

        let workers = (0..worker_count)
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("chronusd-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .map_err(|e| format!("spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let snapshotter = if snapshot_interval_ms > 0 {
            let inner = Arc::clone(&inner);
            let handle = thread::Builder::new()
                .name("chronusd-snapshot".to_string())
                .spawn(move || {
                    let interval = Duration::from_millis(snapshot_interval_ms);
                    let mut last = Instant::now();
                    while inner.state.load(Ordering::Acquire) == RUNNING {
                        thread::sleep(Duration::from_millis(20).min(interval));
                        if last.elapsed() >= interval {
                            let _ = inner.compact_journal();
                            last = Instant::now();
                        }
                    }
                })
                .map_err(|e| format!("spawn snapshotter: {e}"))?;
            Some(handle)
        } else {
            None
        };

        Ok(Daemon {
            inner,
            workers: Mutex::new(workers),
            snapshotter: Mutex::new(snapshotter),
        })
    }

    /// What the restore pass did at startup.
    pub fn restore_report(&self) -> &RestoreReport {
        &self.inner.restore
    }

    /// The configuration the daemon was started with.
    pub fn config(&self) -> &DaemonConfig {
        &self.inner.config
    }

    /// The daemon's scoped metrics (crate-internal: the IPC layer
    /// counts connections and protocol errors on it).
    pub(crate) fn metrics(&self) -> &DaemonMetrics {
        &self.inner.metrics
    }

    /// Daemon-clock now (ns since the configured epoch).
    pub fn now_ns(&self) -> Nanos {
        self.inner.now_ns()
    }

    /// Submits one update. Returns its id, or the admission shed.
    pub fn submit(
        &self,
        tenant: &str,
        priority: Priority,
        deadline: Option<Duration>,
        instance: Arc<UpdateInstance>,
    ) -> Result<u64, Shed> {
        let inner = &self.inner;
        inner.metrics.submitted.inc();
        if inner.state.load(Ordering::Acquire) != RUNNING {
            inner.metrics.shed_draining.inc();
            return Err(Shed::Draining);
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let now = inner.now_ns();
        let job = QueuedJob {
            id,
            tenant: tenant.to_string(),
            priority,
            instance,
            deadline: deadline.unwrap_or_else(|| inner.config.default_deadline()),
            enqueued_ns: now,
        };
        inner.set_status(UpdateStatus {
            id,
            tenant: tenant.to_string(),
            priority,
            state: UpdateState::Queued,
            detail: "queued".to_string(),
            certified: false,
            epoch_ns: None,
        });
        let mut queues = lock(&inner.admission);
        // Re-check under the admission lock: shutdown() flips the state
        // while holding it, so a submission that raced past the fast
        // check above cannot be enqueued after the workers were told to
        // drain (it would be acknowledged but never popped).
        if inner.state.load(Ordering::Acquire) != RUNNING {
            drop(queues);
            lock(&inner.statuses).remove(&id);
            inner.metrics.shed_draining.inc();
            return Err(Shed::Draining);
        }
        match queues.admit(job, now) {
            Ok(()) => {
                inner.publish_depths(&queues);
                drop(queues);
                inner.metrics.admitted.inc();
                inner.work_cv.notify_one();
                Ok(id)
            }
            Err(shed) => {
                drop(queues);
                match &shed {
                    Shed::QueueFull { .. } => {
                        inner.metrics.shed_queue_full.inc();
                        inner.note_shed();
                    }
                    Shed::RateLimited { .. } => {
                        inner.metrics.shed_rate_limited.inc();
                        inner.note_shed();
                    }
                    Shed::Draining => inner.metrics.shed_draining.inc(),
                }
                lock(&inner.statuses).remove(&id);
                Err(shed)
            }
        }
    }

    /// Current status of update `id`.
    pub fn status(&self, id: u64) -> Option<UpdateStatus> {
        lock(&self.inner.statuses).get(&id).cloned()
    }

    /// Count of updates per lifecycle state.
    pub fn status_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for status in lock(&self.inner.statuses).values() {
            *counts.entry(status.state.as_str()).or_insert(0) += 1;
        }
        counts
    }

    /// Blocks until update `id` settles, up to `timeout`. Returns the
    /// last observed status (settled or not); `None` for unknown ids.
    pub fn watch(&self, id: u64, timeout: Duration) -> Option<UpdateStatus> {
        let deadline = Instant::now() + timeout;
        let mut map = lock(&self.inner.statuses);
        loop {
            let current = map.get(&id).cloned()?;
            if current.state.is_settled() {
                return Some(current);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Some(current);
            }
            let (guard, _) = self
                .inner
                .status_cv
                .wait_timeout(map, left.min(Duration::from_millis(50)))
                .unwrap_or_else(PoisonError::into_inner);
            map = guard;
        }
    }

    /// Confirms an armed update as executed on the data plane:
    /// journals the completion tombstone and frees its slot.
    pub fn confirm(&self, id: u64) -> Result<(), String> {
        let inner = &self.inner;
        // Tombstone first, removal second, both under the `armed` lock:
        // if the append fails the record stays live in memory and in the
        // journal (a restart re-arms it, never re-executes it), and a
        // concurrent compaction cannot observe the removal before the
        // tombstone is on disk.
        let mut armed = lock(&inner.armed);
        if !armed.contains_key(&id) {
            return Err(format!("update {id} is not armed"));
        }
        lock(&inner.journal)
            .append_complete(id)
            .map_err(|e| format!("journal complete: {e}"))?;
        armed.remove(&id);
        let live = armed.len();
        drop(armed);
        inner.metrics.confirmed.inc();
        inner.metrics.journal_live.set(live as i64);
        inner.update_state(id, UpdateState::Completed, "confirmed");
        Ok(())
    }

    /// Forces a journal compaction; returns the live record count.
    pub fn snapshot(&self) -> std::io::Result<usize> {
        self.inner.compact_journal()
    }

    /// Prometheus text exposition: the daemon's `chronus_daemon_*`
    /// series (cache gauges refreshed from the engine, rendered under
    /// the cache seqlock so the five gauges are never a torn mix of
    /// two refreshes) followed by the engine's `chronus_engine_*`
    /// series.
    pub fn metrics_text(&self) -> String {
        let inner = &self.inner;
        let engine_text = {
            let guard = inner.engine.read();
            match guard.as_ref() {
                Some(engine) => {
                    let report = engine.report();
                    inner.metrics.set_cache(
                        report.cache_hits,
                        report.cache_misses,
                        report.cache_evictions,
                        report.cache_entries,
                        report.cache_bytes,
                    );
                    engine.metrics().registry().to_prometheus()
                }
                None => String::new(),
            }
        };
        if FlightRecorder::is_on() {
            inner
                .metrics
                .flight_dumps
                .set(FlightRecorder::dumps_written() as i64);
            inner
                .metrics
                .flight_suppressed
                .set(FlightRecorder::dumps_suppressed() as i64);
            let dropped: u64 = FlightRecorder::snapshot()
                .rings
                .iter()
                .map(|r| r.dropped)
                .sum();
            inner.metrics.flight_dropped.set(dropped as i64);
        }
        let mut out = inner.metrics.render_consistent();
        out.push_str(&engine_text);
        out
    }

    /// The live operational overview behind `chronusctl top`: queue
    /// depths, per-tenant token-bucket levels, warm-cache hit rates,
    /// plan-latency quantiles, SLO burn rates and flight-recorder
    /// health, all in one JSON object.
    pub fn top(&self) -> Value {
        let inner = &self.inner;
        let now = inner.now_ns();
        let mut obj = Map::new();
        obj.insert(
            "state".to_string(),
            Value::from(match inner.state.load(Ordering::Acquire) {
                RUNNING => "running",
                DRAINING => "draining",
                _ => "stopped",
            }),
        );
        obj.insert(
            "uptime_ms".to_string(),
            Value::from_u64_exact(inner.started.elapsed().as_millis() as u64),
        );

        // Engine before admission, matching the declared lock order;
        // the admission lock is taken once for depths and buckets.
        let cache_report = inner.engine.read().as_ref().map(|e| e.report());
        let ((h, n, l), levels) = {
            let q = lock(&inner.admission);
            (q.depths(), q.bucket_levels(now))
        };
        let mut queues = Map::new();
        queues.insert("high".to_string(), Value::from_u64_exact(h as u64));
        queues.insert("normal".to_string(), Value::from_u64_exact(n as u64));
        queues.insert("low".to_string(), Value::from_u64_exact(l as u64));
        obj.insert("queues".to_string(), Value::Object(queues));

        let mut buckets = Map::new();
        for (tenant, tokens, burst, rate) in levels {
            let mut b = Map::new();
            b.insert("tokens".to_string(), Value::from(tokens));
            b.insert("burst".to_string(), Value::from(burst));
            b.insert("rate".to_string(), Value::from(rate));
            buckets.insert(tenant, Value::Object(b));
        }
        obj.insert("tenants".to_string(), Value::Object(buckets));

        let mut statuses = Map::new();
        for (state, count) in self.status_counts() {
            statuses.insert(state.to_string(), Value::from_u64_exact(count));
        }
        obj.insert("updates".to_string(), Value::Object(statuses));
        obj.insert(
            "armed".to_string(),
            Value::from_u64_exact(self.armed_len() as u64),
        );

        let mut cache = Map::new();
        if let Some(report) = cache_report {
            let lookups = report.cache_hits + report.cache_misses;
            cache.insert("hits".to_string(), Value::from_u64_exact(report.cache_hits));
            cache.insert(
                "misses".to_string(),
                Value::from_u64_exact(report.cache_misses),
            );
            cache.insert(
                "entries".to_string(),
                Value::from_u64_exact(report.cache_entries),
            );
            cache.insert(
                "hit_rate".to_string(),
                Value::from(if lookups == 0 {
                    0.0
                } else {
                    report.cache_hits as f64 / lookups as f64
                }),
            );
        }
        obj.insert("cache".to_string(), Value::Object(cache));

        let mut plan = Map::new();
        for (label, q) in [("p50_ns", 0.5), ("p90_ns", 0.9), ("p99_ns", 0.99)] {
            plan.insert(
                label.to_string(),
                Value::from_u64_exact(inner.metrics.plan_ns.quantile(q)),
            );
        }
        obj.insert("plan_latency".to_string(), Value::Object(plan));

        let mut slo = Map::new();
        for (tenant, burn) in lock(&inner.slo).burns(now) {
            let mut b = Map::new();
            b.insert("burn_5m".to_string(), Value::from(burn.short));
            b.insert("burn_1h".to_string(), Value::from(burn.long));
            slo.insert(tenant, Value::Object(b));
        }
        obj.insert("slo".to_string(), Value::Object(slo));

        let mut flight = Map::new();
        flight.insert("on".to_string(), Value::Bool(FlightRecorder::is_on()));
        if FlightRecorder::is_on() {
            let snap = FlightRecorder::snapshot();
            let (mut emitted, mut dropped) = (0u64, 0u64);
            for ring in &snap.rings {
                emitted += ring.emitted;
                dropped += ring.dropped;
            }
            flight.insert(
                "rings".to_string(),
                Value::from_u64_exact(snap.rings.len() as u64),
            );
            flight.insert("events".to_string(), Value::from_u64_exact(emitted));
            flight.insert("dropped".to_string(), Value::from_u64_exact(dropped));
            flight.insert(
                "dumps".to_string(),
                Value::from_u64_exact(FlightRecorder::dumps_written()),
            );
            flight.insert(
                "suppressed".to_string(),
                Value::from_u64_exact(FlightRecorder::dumps_suppressed()),
            );
        }
        obj.insert("flight".to_string(), Value::Object(flight));

        Value::Object(obj)
    }

    /// Writes a forensic flight dump now (`chronusctl dump`); returns
    /// its path.
    pub fn dump(&self) -> std::io::Result<std::path::PathBuf> {
        FlightRecorder::force_dump("ctl-dump")
    }

    /// The number of updates currently queued for planning.
    pub fn queue_len(&self) -> usize {
        lock(&self.inner.admission).len()
    }

    /// Armed updates currently live.
    pub fn armed_len(&self) -> usize {
        lock(&self.inner.armed).len()
    }

    /// Gracefully shuts down: stops intake, lets workers finish every
    /// admitted job, drains the engine, takes a final snapshot.
    /// Idempotent; callable through a shared handle (the IPC server's
    /// drain command calls it from a connection thread).
    pub fn shutdown(&self) -> ShutdownReport {
        let inner = &self.inner;
        {
            // Flip to draining under the admission lock: submit()
            // re-checks the state under the same lock, so after this
            // block no new job can be acknowledged into the queues the
            // workers are about to drain. Also wakes sleepers so they
            // observe the drain.
            let _guard = lock(&inner.admission);
            inner.state.store(DRAINING, Ordering::Release);
            inner.work_cv.notify_all();
        }
        for handle in lock(&self.workers).drain(..) {
            let _ = handle.join();
        }
        inner.state.store(STOPPED, Ordering::Release);
        if let Some(handle) = lock(&self.snapshotter).take() {
            let _ = handle.join();
        }
        let drain: DrainReport = inner
            .engine
            .write()
            .take()
            .map(Engine::drain)
            .unwrap_or_default();
        let snapshot_live = inner.compact_journal().unwrap_or(0);
        ShutdownReport {
            engine_planned: drain.planned,
            engine_leftovers: drain.leftovers.len(),
            armed_remaining: lock(&inner.armed).len(),
            snapshot_live,
        }
    }
}

impl Drop for Daemon {
    /// Crash-like teardown: workers stop where they are, no final
    /// snapshot, no journal compaction — exactly what a `kill -9`
    /// leaves behind, which is what the restore tests exercise. (A
    /// prior [`Daemon::shutdown`] leaves nothing for this to do.)
    fn drop(&mut self) {
        self.inner.state.store(STOPPED, Ordering::Release);
        {
            let _guard = lock(&self.inner.admission);
            self.inner.work_cv.notify_all();
        }
        for handle in lock(&self.workers).drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = lock(&self.snapshotter).take() {
            let _ = handle.join();
        }
    }
}
