//! # chronus-daemon — the `chronusd` long-running update service
//!
//! The paper frames Chronus as a *controller service*: an always-on
//! scheduler that owns clocks, in-flight state and retries — not a
//! batch library invoked once per flow. This crate is that service:
//!
//! - **IPC front end** ([`server`], [`client`]): a Unix-domain socket
//!   speaking line-delimited JSON (parsed with the workspace's strict
//!   `serde_json` shim). The `chronusctl` binary is the CLI client
//!   (`submit`, `status`, `watch`, `confirm`, `drain`, `snapshot`,
//!   `metrics`).
//! - **Streaming admission** ([`admission`]): three priority classes,
//!   per-tenant token-bucket rate limiting and bounded queues with
//!   explicit shed responses, all counted in a `chronus_daemon_*`
//!   scoped metrics registry.
//! - **Warm state** ([`service`]): one resident [`chronus_engine::Engine`]
//!   serves every request, so the memoized time-extended-network
//!   cache stays hot across submissions, with hit/miss/eviction
//!   gauges on the scrape.
//! - **Write-ahead journal** ([`journal`]): every certified, armed
//!   schedule is appended (schedule + certificate + slack + arm
//!   epoch) before the daemon acknowledges it. On restart the journal
//!   is replayed and each in-flight update is handed to the faults
//!   crate's re-arm-or-rollback policy — re-armed within certified
//!   slack or rolled back, never silently lost.
//! - **Flight recorder & introspection** ([`slo`], [`signal`], plus
//!   the `top`/`tail`/`dump` protocol verbs): the daemon keeps the
//!   trace crate's always-on event ring armed, tracks per-tenant SLO
//!   burn rates over 5m/1h windows, and writes forensic dumps on
//!   rollback, shed storms, burn-rate crossings, panics and SIGUSR1.
//!
//! `unsafe` is denied crate-wide with one audited, narrowly-scoped
//! exception: the `signal(2)` FFI call in [`signal`] that routes
//! SIGUSR1 to an atomic flag.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod admission;
pub mod client;
pub mod config;
pub mod journal;
mod metrics;
pub mod proto;
pub mod server;
pub mod service;
pub mod signal;
pub mod slo;

pub use admission::{AdmissionQueues, Priority, QueuedJob, Shed};
pub use client::CtlClient;
pub use config::DaemonConfig;
pub use journal::{ArmedRecord, Journal, Replay};
pub use proto::Request;
pub use server::run_server;
pub use service::{Daemon, RestoreReport, ShutdownReport, UpdateState, UpdateStatus};
