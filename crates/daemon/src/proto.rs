//! The `chronusd` IPC protocol: one JSON object per line, both ways.
//!
//! Requests carry a `"cmd"` discriminator; responses always carry
//! `"ok"` (and, for refusals, `"error"` plus `"shed": true` when the
//! refusal is an admission shed rather than a malformed request).
//! The protocol is deliberately line-oriented so `chronusctl`, shell
//! scripts and tests can speak it with nothing but a socket.

use crate::admission::{Priority, Shed};
use serde_json::{Map, Value};

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered `{"ok":true,"pong":true}`.
    Ping,
    /// Submit one update instance for planning.
    Submit {
        /// Submitting tenant (rate-limit key); defaults to `default`.
        tenant: String,
        /// Priority class; defaults to `normal`.
        priority: Priority,
        /// Optional planning deadline override, in milliseconds.
        deadline_ms: Option<u64>,
        /// The encoded update instance
        /// (see `chronus_net::codec::instance_from_value`).
        instance: Value,
    },
    /// Status of one update (`id`) or counts of all of them (`None`).
    Status {
        /// The update to describe, or `None` for the aggregate view.
        id: Option<u64>,
    },
    /// Block until update `id` settles (or `timeout_ms` elapses).
    Watch {
        /// The update to wait on.
        id: u64,
        /// Give up after this many milliseconds (default 10 000).
        timeout_ms: u64,
    },
    /// Confirm an armed update as executed: journals the completion
    /// tombstone and frees its journal slot.
    Confirm {
        /// The armed update being confirmed.
        id: u64,
    },
    /// Gracefully drain the daemon and exit.
    Drain,
    /// Force a journal compaction now.
    Snapshot,
    /// Prometheus text exposition of daemon + engine metrics.
    Metrics,
    /// Live operational overview: queue depths, token buckets, cache
    /// hit rates, plan-latency quantiles, SLO burns, recorder stats.
    Top,
    /// Stream flight-ring events back to the client as they happen.
    Tail {
        /// Only events whose name starts with this prefix are sent
        /// (server-side, so the wire carries what the client wants).
        filter: Option<String>,
        /// Stop after this many events (0 = unbounded in follow mode,
        /// one batch otherwise).
        max_events: u64,
        /// Keep the connection open and poll for new events.
        follow: bool,
    },
    /// Write a forensic flight dump now; answers with its path.
    Dump,
}

/// Parses one request line.
pub fn request_from_line(line: &str) -> Result<Request, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
    let cmd = v
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or_else(|| "request missing string `cmd`".to_string())?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "submit" => {
            let tenant = v
                .get("tenant")
                .and_then(Value::as_str)
                .unwrap_or("default")
                .to_string();
            let priority = match v.get("priority").and_then(Value::as_str) {
                Some(p) => Priority::parse(p)?,
                None => Priority::Normal,
            };
            let deadline_ms = v.get("deadline_ms").and_then(Value::as_u64_exact);
            let instance = v
                .get("instance")
                .cloned()
                .ok_or_else(|| "submit missing `instance`".to_string())?;
            Ok(Request::Submit {
                tenant,
                priority,
                deadline_ms,
                instance,
            })
        }
        "status" => Ok(Request::Status {
            id: v.get("id").and_then(Value::as_u64_exact),
        }),
        "watch" => Ok(Request::Watch {
            id: v
                .get("id")
                .and_then(Value::as_u64_exact)
                .ok_or_else(|| "watch missing `id`".to_string())?,
            timeout_ms: v
                .get("timeout_ms")
                .and_then(Value::as_u64_exact)
                .unwrap_or(10_000),
        }),
        "confirm" => Ok(Request::Confirm {
            id: v
                .get("id")
                .and_then(Value::as_u64_exact)
                .ok_or_else(|| "confirm missing `id`".to_string())?,
        }),
        "drain" => Ok(Request::Drain),
        "snapshot" => Ok(Request::Snapshot),
        "metrics" => Ok(Request::Metrics),
        "top" => Ok(Request::Top),
        "tail" => Ok(Request::Tail {
            filter: v
                .get("filter")
                .and_then(Value::as_str)
                .map(|s| s.to_string()),
            max_events: v
                .get("max_events")
                .and_then(Value::as_u64_exact)
                .unwrap_or(0),
            follow: v.get("follow").and_then(Value::as_bool).unwrap_or(false),
        }),
        "dump" => Ok(Request::Dump),
        other => Err(format!("unknown cmd `{other}`")),
    }
}

/// `{"ok":true, ...fields}`.
pub fn ok_response(fields: Vec<(&str, Value)>) -> Value {
    let mut obj = Map::new();
    obj.insert("ok".to_string(), Value::Bool(true));
    for (k, val) in fields {
        obj.insert(k.to_string(), val);
    }
    Value::Object(obj)
}

/// `{"ok":false,"error":msg}` (+ `"shed":true` for admission sheds).
pub fn err_response(msg: &str, shed: bool) -> Value {
    let mut obj = Map::new();
    obj.insert("ok".to_string(), Value::Bool(false));
    obj.insert("error".to_string(), Value::from(msg));
    if shed {
        obj.insert("shed".to_string(), Value::Bool(true));
    }
    Value::Object(obj)
}

/// The wire shape of an admission refusal: [`err_response`] with the
/// shed marker, plus a machine-readable `retry_after_s` field for
/// rate-limit sheds carrying the token bucket's hint verbatim (the
/// human-readable `error` text rounds it to milliseconds).
pub fn shed_response(shed: &Shed) -> Value {
    let mut obj = Map::new();
    obj.insert("ok".to_string(), Value::Bool(false));
    obj.insert(
        "error".to_string(),
        Value::from(shed.to_string().as_str()),
    );
    obj.insert("shed".to_string(), Value::Bool(true));
    if let Shed::RateLimited { retry_after_s, .. } = shed {
        obj.insert("retry_after_s".to_string(), Value::from(*retry_after_s));
    }
    Value::Object(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(request_from_line(r#"{"cmd":"ping"}"#), Ok(Request::Ping));
        assert_eq!(request_from_line(r#"{"cmd":"drain"}"#), Ok(Request::Drain));
        assert_eq!(
            request_from_line(r#"{"cmd":"status"}"#),
            Ok(Request::Status { id: None })
        );
        assert_eq!(
            request_from_line(r#"{"cmd":"status","id":7}"#),
            Ok(Request::Status { id: Some(7) })
        );
        assert_eq!(
            request_from_line(r#"{"cmd":"watch","id":3}"#),
            Ok(Request::Watch {
                id: 3,
                timeout_ms: 10_000
            })
        );
        assert_eq!(request_from_line(r#"{"cmd":"top"}"#), Ok(Request::Top));
        assert_eq!(request_from_line(r#"{"cmd":"dump"}"#), Ok(Request::Dump));
        assert_eq!(
            request_from_line(r#"{"cmd":"tail"}"#),
            Ok(Request::Tail {
                filter: None,
                max_events: 0,
                follow: false
            })
        );
        assert_eq!(
            request_from_line(
                r#"{"cmd":"tail","filter":"engine.plan","max_events":5,"follow":true}"#
            ),
            Ok(Request::Tail {
                filter: Some("engine.plan".to_string()),
                max_events: 5,
                follow: true
            })
        );
        match request_from_line(r#"{"cmd":"submit","priority":"high","instance":{}}"#) {
            Ok(Request::Submit {
                tenant, priority, ..
            }) => {
                assert_eq!(tenant, "default");
                assert_eq!(priority, Priority::High);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(request_from_line("not json").is_err());
        assert!(request_from_line(r#"{"cmd":"warp"}"#).is_err());
        assert!(request_from_line(r#"{"cmd":"submit"}"#).is_err());
        assert!(request_from_line(r#"{"cmd":"watch"}"#).is_err());
        assert!(
            request_from_line(r#"{"cmd":"submit","priority":"urgent","instance":{}}"#).is_err()
        );
    }

    #[test]
    fn response_shapes() {
        let ok = ok_response(vec![("id", Value::from_u64_exact(9))]);
        assert_eq!(ok.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(ok.get("id").and_then(Value::as_u64_exact), Some(9));
        let err = err_response("queue full", true);
        assert_eq!(err.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(err.get("shed"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rate_limit_sheds_carry_the_retry_hint_verbatim() {
        let shed = Shed::RateLimited {
            tenant: "acme".to_string(),
            retry_after_s: 0.123456789,
        };
        let v = shed_response(&shed);
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(v.get("shed"), Some(&Value::Bool(true)));
        assert_eq!(
            v.get("retry_after_s").and_then(Value::as_f64),
            Some(0.123456789)
        );
        let text = v.get("error").and_then(Value::as_str).unwrap();
        assert!(text.contains("retry after 0.123s"), "{text}");
        // Non-rate-limit sheds omit the hint.
        let full = shed_response(&Shed::Draining);
        assert!(full.get("retry_after_s").is_none());
        assert_eq!(full.get("shed"), Some(&Value::Bool(true)));
    }
}
