//! Minimal SIGUSR1 plumbing for operator-requested flight dumps.
//!
//! The workspace builds offline with no libc crate, so the handler is
//! installed through a two-symbol `extern "C"` declaration of the
//! POSIX `signal(2)` entry point. The handler itself does the only
//! thing that is async-signal-safe here: it flips an atomic flag. A
//! poller thread in `chronusd` notices the flag and writes the dump
//! from normal (signal-free) context.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler, drained by [`take_dump_request`].
static DUMP_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::DUMP_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGUSR1: i32 = 10;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigusr1(_signum: i32) {
        DUMP_REQUESTED.store(true, Ordering::Release);
    }

    /// Routes SIGUSR1 to the flag-setting handler. Returns false if
    /// the kernel refused the installation.
    pub fn install_sigusr1() -> bool {
        const SIG_ERR: usize = usize::MAX;
        let handler = on_sigusr1 as extern "C" fn(i32);
        #[allow(unsafe_code)]
        // SAFETY: `signal` is the POSIX entry point; the handler only
        // touches an atomic, which is async-signal-safe.
        let prev = unsafe { signal(SIGUSR1, handler as usize) };
        prev != SIG_ERR
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signals off unix; dump-on-demand still works via
    /// `chronusctl dump`.
    pub fn install_sigusr1() -> bool {
        false
    }
}

pub use imp::install_sigusr1;

/// True exactly once per delivered SIGUSR1 (the flag is cleared on
/// read, so a poller loop fires one dump per signal).
pub fn take_dump_request() -> bool {
    DUMP_REQUESTED.swap(false, Ordering::AcqRel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_drains_on_read() {
        DUMP_REQUESTED.store(true, Ordering::Release);
        assert!(take_dump_request());
        assert!(!take_dump_request());
    }
}
