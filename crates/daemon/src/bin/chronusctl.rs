//! `chronusctl` — CLI client for a running `chronusd`.
//!
//! ```text
//! chronusctl [--socket PATH] ping
//! chronusctl [--socket PATH] submit [--tenant T] [--priority P]
//!            [--deadline-ms MS] [--motivating | --reversal N | --instance FILE]
//! chronusctl [--socket PATH] status [ID]
//! chronusctl [--socket PATH] watch ID [--timeout-ms MS]
//! chronusctl [--socket PATH] confirm ID
//! chronusctl [--socket PATH] snapshot
//! chronusctl [--socket PATH] metrics
//! chronusctl [--socket PATH] top
//! chronusctl [--socket PATH] tail [--filter PREFIX] [--max-events N] [--follow]
//! chronusctl [--socket PATH] dump
//! chronusctl [--socket PATH] drain
//! ```

#![forbid(unsafe_code)]

use chronus_daemon::{CtlClient, Priority};
use chronus_net::codec::instance_from_value;
use chronus_net::{motivating_example, reversal_instance, UpdateInstance};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    socket: PathBuf,
    command: String,
    positional: Vec<String>,
    options: Vec<(String, String)>,
    switches: Vec<String>,
}

fn parse_args(raw: Vec<String>) -> Result<Args, String> {
    let mut socket = PathBuf::from("/tmp/chronusd.sock");
    let mut command = None;
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut switches = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        let arg = &raw[i];
        if let Some(key) = arg.strip_prefix("--") {
            match key {
                "motivating" | "follow" => {
                    switches.push(key.to_string());
                    i += 1;
                }
                "socket" | "tenant" | "priority" | "deadline-ms" | "timeout-ms" | "reversal"
                | "instance" | "filter" | "max-events" => {
                    let value = raw
                        .get(i + 1)
                        .ok_or_else(|| format!("--{key} needs a value"))?
                        .clone();
                    if key == "socket" {
                        socket = PathBuf::from(value);
                    } else {
                        options.push((key.to_string(), value));
                    }
                    i += 2;
                }
                other => return Err(format!("unknown flag --{other}")),
            }
        } else if command.is_none() {
            command = Some(arg.clone());
            i += 1;
        } else {
            positional.push(arg.clone());
            i += 1;
        }
    }
    Ok(Args {
        socket,
        command: command.ok_or_else(|| "no command given (try --help)".to_string())?,
        positional,
        options,
        switches,
    })
}

fn option<'a>(args: &'a Args, key: &str) -> Option<&'a str> {
    args.options
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn load_instance(args: &Args) -> Result<UpdateInstance, String> {
    if let Some(path) = option(args, "instance") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let v = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
        return instance_from_value(&v).map_err(|e| format!("{path}: {e}"));
    }
    if let Some(n) = option(args, "reversal") {
        let n: usize = n
            .parse()
            .map_err(|_| "--reversal needs a count".to_string())?;
        if n < 4 {
            return Err("--reversal needs at least 4 switches".to_string());
        }
        return Ok(reversal_instance(n, 2, 1));
    }
    // Default (and explicit --motivating): the paper's Fig. 1 example.
    let _ = args.switches.iter().any(|s| s == "motivating");
    Ok(motivating_example())
}

fn parse_id(args: &Args) -> Result<u64, String> {
    args.positional
        .first()
        .ok_or_else(|| format!("{} needs an update id", args.command))?
        .parse()
        .map_err(|_| "update id must be a number".to_string())
}

fn run(args: &Args) -> Result<(), String> {
    let connect = |socket: &Path| {
        CtlClient::connect(socket).map_err(|e| format!("connect {}: {e}", socket.display()))
    };
    let mut client = connect(&args.socket)?;
    match args.command.as_str() {
        "ping" => {
            client.ping().map_err(|e| e.to_string())?;
            println!("pong");
        }
        "submit" => {
            let instance = load_instance(args)?;
            let tenant = option(args, "tenant").unwrap_or("default");
            let priority = Priority::parse(option(args, "priority").unwrap_or("normal"))?;
            let deadline_ms = match option(args, "deadline-ms") {
                Some(ms) => Some(
                    ms.parse()
                        .map_err(|_| "--deadline-ms needs milliseconds".to_string())?,
                ),
                None => None,
            };
            let id = client
                .submit(tenant, priority, deadline_ms, &instance)
                .map_err(|e| e.to_string())?;
            println!("submitted id {id}");
        }
        "status" => {
            let response = match args.positional.first() {
                Some(raw) => {
                    let id: u64 = raw
                        .parse()
                        .map_err(|_| "update id must be a number".to_string())?;
                    client.status(id).map_err(|e| e.to_string())?
                }
                None => client.status_all().map_err(|e| e.to_string())?,
            };
            println!(
                "{}",
                serde_json::to_string(&response).map_err(|e| e.to_string())?
            );
        }
        "watch" => {
            let id = parse_id(args)?;
            let timeout_ms = match option(args, "timeout-ms") {
                Some(ms) => ms
                    .parse()
                    .map_err(|_| "--timeout-ms needs milliseconds".to_string())?,
                None => 10_000,
            };
            let status = client.watch(id, timeout_ms).map_err(|e| e.to_string())?;
            println!(
                "{}",
                serde_json::to_string(&status).map_err(|e| e.to_string())?
            );
        }
        "confirm" => {
            let id = parse_id(args)?;
            client.confirm(id).map_err(|e| e.to_string())?;
            println!("confirmed id {id}");
        }
        "snapshot" => {
            let live = client.snapshot().map_err(|e| e.to_string())?;
            println!("snapshot wrote {live} live record(s)");
        }
        "metrics" => {
            // Raw Prometheus text on stdout, scrape-ready.
            print!("{}", client.metrics_text().map_err(|e| e.to_string())?);
        }
        "top" => {
            let top = client.top().map_err(|e| e.to_string())?;
            println!(
                "{}",
                serde_json::to_string(&top).map_err(|e| e.to_string())?
            );
        }
        "tail" => {
            let filter = option(args, "filter");
            let max_events = match option(args, "max-events") {
                Some(n) => n
                    .parse()
                    .map_err(|_| "--max-events needs a count".to_string())?,
                None => 0,
            };
            let follow = args.switches.iter().any(|s| s == "follow");
            let received = client
                .tail(filter, max_events, follow, |event| {
                    if let Ok(line) = serde_json::to_string(event) {
                        println!("{line}");
                    }
                })
                .map_err(|e| e.to_string())?;
            eprintln!("tail: {received} event(s)");
        }
        "dump" => {
            let path = client.dump().map_err(|e| e.to_string())?;
            println!("dump written to {path}");
        }
        "drain" => {
            client.drain().map_err(|e| e.to_string())?;
            println!("daemon draining");
        }
        other => return Err(format!("unknown command `{other}`")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "chronusctl — control a running chronusd\n\n\
             commands: ping, submit, status [ID], watch ID, confirm ID,\n\
             \x20         snapshot, metrics, top, tail, dump, drain\n\
             common flags: --socket PATH (default /tmp/chronusd.sock)\n\
             submit flags: --tenant T --priority high|normal|low --deadline-ms MS\n\
             \x20            --motivating | --reversal N | --instance FILE\n\
             tail flags:   --filter PREFIX --max-events N --follow"
        );
        return ExitCode::SUCCESS;
    }
    let args = match parse_args(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chronusctl: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("chronusctl: {e}");
            ExitCode::FAILURE
        }
    }
}
