//! `chronusd` — the long-running Chronus update-service daemon.
//!
//! ```text
//! chronusd [--config FILE] [--socket PATH] [--workers N]
//!          [--snapshot-dir DIR] [--snapshot-interval-ms MS]
//!          [--queue-bound N] [--tenant-rate R] [--tenant-burst B]
//!          [--step-ns NS] [--base-epoch-ns NS]
//! ```
//!
//! A `--config` JSON file is applied first; individual flags override
//! it. The daemon restores armed schedules from its journal, serves
//! line-JSON IPC on the socket until a client sends `drain`, then
//! drains gracefully and prints the shutdown report.
//!
//! The flight recorder is always on: every thread records spans and
//! instants into fixed-memory rings, and a forensic dump (Perfetto-
//! loadable JSON under `--flight-dir`, default `SNAPSHOT_DIR/flight`)
//! is written on cert refusals, deadline expiries, rollbacks, shed
//! storms, SLO burn-rate crossings, panics, SIGUSR1 and
//! `chronusctl dump`.

#![forbid(unsafe_code)]

use chronus_daemon::signal;
use chronus_daemon::{run_server, Daemon, DaemonConfig};
use chronus_trace::FlightRecorder;
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn parse_args(args: &[String]) -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig::default();
    // First pass: the config file layer.
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--config" {
            let path = args
                .get(i + 1)
                .ok_or_else(|| "--config needs a path".to_string())?;
            config = DaemonConfig::from_file(Path::new(path))?;
        }
        i += 1;
    }
    // Second pass: flag overrides.
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument `{flag}`"));
        };
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        if key != "config" {
            config.apply_flag(&key.replace('-', "_"), value)?;
        }
        i += 2;
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "chronusd — Chronus update-service daemon\n\n\
             flags: --config FILE --socket PATH --workers N --queue-bound N\n\
             \x20      --tenant-rate R --tenant-burst B --snapshot-dir DIR\n\
             \x20      --snapshot-interval-ms MS --step-ns NS --rearm-margin-ns NS\n\
             \x20      --base-epoch-ns NS --cache-windows N --default-deadline-ms MS\n\
             \x20      --flight-dir DIR --ring-slots N --slo-latency-ms MS\n\
             \x20      --slo-availability F --slo-burn-threshold X"
        );
        return ExitCode::SUCCESS;
    }
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("chronusd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let socket = config.socket.clone();

    // Arm the flight recorder before the daemon boots so the restore
    // pass (and any rollback dump it triggers) is already recording.
    FlightRecorder::enable(config.ring_slots);
    FlightRecorder::set_dump_dir(config.flight_path());
    FlightRecorder::install_panic_hook();
    let sigusr1 = signal::install_sigusr1();

    let daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("chronusd: {e}");
            return ExitCode::FAILURE;
        }
    };

    // SIGUSR1 → forensic dump, from a poller thread (the handler only
    // flips a flag; nothing signal-unsafe runs in signal context).
    let poller_stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let stop = Arc::clone(&poller_stop);
        std::thread::Builder::new()
            .name("chronusd-sigusr1".to_string())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    if signal::take_dump_request() {
                        match FlightRecorder::force_dump("sigusr1") {
                            Ok(path) => eprintln!("chronusd: dump written to {}", path.display()),
                            Err(e) => eprintln!("chronusd: dump failed: {e}"),
                        }
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            })
            .ok()
    };
    if !sigusr1 {
        eprintln!("chronusd: SIGUSR1 handler unavailable; use `chronusctl dump`");
    }
    let restore = daemon.restore_report().clone();
    println!(
        "chronusd: restored {} armed update(s): {} re-armed, {} rolled back, \
         {} lost, {} corrupt journal line(s)",
        restore.live_found,
        restore.rearmed,
        restore.rolled_back,
        restore.lost,
        restore.corrupt_lines
    );
    println!("chronusd: serving on {}", socket.display());
    let outcome = run_server(daemon);
    poller_stop.store(true, Ordering::Release);
    if let Some(handle) = poller {
        let _ = handle.join();
    }
    match outcome {
        Ok(report) => {
            println!(
                "chronusd: drained — {} planned by the engine, {} shed, \
                 {} armed update(s) persisted, snapshot wrote {} record(s)",
                report.engine_planned,
                report.engine_leftovers,
                report.armed_remaining,
                report.snapshot_live
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chronusd: server error: {e}");
            ExitCode::FAILURE
        }
    }
}
