//! `chronusd` — the long-running Chronus update-service daemon.
//!
//! ```text
//! chronusd [--config FILE] [--socket PATH] [--workers N]
//!          [--snapshot-dir DIR] [--snapshot-interval-ms MS]
//!          [--queue-bound N] [--tenant-rate R] [--tenant-burst B]
//!          [--step-ns NS] [--base-epoch-ns NS]
//! ```
//!
//! A `--config` JSON file is applied first; individual flags override
//! it. The daemon restores armed schedules from its journal, serves
//! line-JSON IPC on the socket until a client sends `drain`, then
//! drains gracefully and prints the shutdown report.

#![forbid(unsafe_code)]

use chronus_daemon::{run_server, Daemon, DaemonConfig};
use std::path::Path;
use std::process::ExitCode;

fn parse_args(args: &[String]) -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig::default();
    // First pass: the config file layer.
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--config" {
            let path = args
                .get(i + 1)
                .ok_or_else(|| "--config needs a path".to_string())?;
            config = DaemonConfig::from_file(Path::new(path))?;
        }
        i += 1;
    }
    // Second pass: flag overrides.
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument `{flag}`"));
        };
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        if key != "config" {
            config.apply_flag(&key.replace('-', "_"), value)?;
        }
        i += 2;
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "chronusd — Chronus update-service daemon\n\n\
             flags: --config FILE --socket PATH --workers N --queue-bound N\n\
             \x20      --tenant-rate R --tenant-burst B --snapshot-dir DIR\n\
             \x20      --snapshot-interval-ms MS --step-ns NS --rearm-margin-ns NS\n\
             \x20      --base-epoch-ns NS --cache-windows N --default-deadline-ms MS"
        );
        return ExitCode::SUCCESS;
    }
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("chronusd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let socket = config.socket.clone();
    let daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("chronusd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let restore = daemon.restore_report().clone();
    println!(
        "chronusd: restored {} armed update(s): {} re-armed, {} rolled back, \
         {} lost, {} corrupt journal line(s)",
        restore.live_found,
        restore.rearmed,
        restore.rolled_back,
        restore.lost,
        restore.corrupt_lines
    );
    println!("chronusd: serving on {}", socket.display());
    match run_server(daemon) {
        Ok(report) => {
            println!(
                "chronusd: drained — {} planned by the engine, {} shed, \
                 {} armed update(s) persisted, snapshot wrote {} record(s)",
                report.engine_planned,
                report.engine_leftovers,
                report.armed_remaining,
                report.snapshot_live
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chronusd: server error: {e}");
            ExitCode::FAILURE
        }
    }
}
