//! Streaming admission: priority classes, per-tenant token buckets
//! and bounded queues with explicit shed verdicts.
//!
//! Admission is deterministic given the caller-supplied clock: the
//! token buckets refill as a pure function of elapsed nanoseconds, so
//! tests drive them with a pinned timeline instead of sleeping.

use chronus_clock::Nanos;
use chronus_net::UpdateInstance;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Priority class of a submission. Workers always serve `High` before
/// `Normal` before `Low`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Served first; interactive or SLA-bound updates.
    High,
    /// The default class.
    Normal,
    /// Background churn; served only when the other queues are empty.
    Low,
}

impl Priority {
    /// Wire name of the class.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a wire name (`high`/`normal`/`low`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!("unknown priority `{other}`")),
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a submission was refused. Every variant maps to a distinct
/// `chronus_daemon_shed_*_total` counter and an explicit IPC error,
/// so callers can tell back-pressure from rate policy from shutdown.
#[derive(Clone, Debug, PartialEq)]
pub enum Shed {
    /// The submission's priority-class queue was at its bound.
    QueueFull {
        /// The class whose queue was full.
        priority: Priority,
        /// The configured bound it hit.
        bound: usize,
    },
    /// The tenant's token bucket was empty.
    RateLimited {
        /// The refused tenant.
        tenant: String,
        /// Seconds until one token will have refilled.
        retry_after_s: f64,
    },
    /// The daemon is draining and takes no new work.
    Draining,
}

impl fmt::Display for Shed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shed::QueueFull { priority, bound } => {
                write!(f, "{priority} queue full (bound {bound})")
            }
            Shed::RateLimited {
                tenant,
                retry_after_s,
            } => write!(
                f,
                "tenant `{tenant}` rate limited; retry after {retry_after_s:.3}s"
            ),
            Shed::Draining => f.write_str("daemon draining"),
        }
    }
}

/// One admitted submission waiting for a planning worker.
#[derive(Clone, Debug)]
pub struct QueuedJob {
    /// Daemon-assigned update id.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Priority class it was admitted under.
    pub priority: Priority,
    /// The update to plan.
    pub instance: Arc<UpdateInstance>,
    /// Planning deadline handed to the engine.
    pub deadline: Duration,
    /// Daemon-clock time the job entered its queue (for the
    /// `chronus_daemon_queue_wait_ns` histogram).
    pub enqueued_ns: Nanos,
}

/// Deterministic token bucket: `rate` tokens/second refill up to
/// `burst`, driven entirely by the caller's clock.
#[derive(Clone, Debug)]
struct TokenBucket {
    tokens: f64,
    rate: f64,
    burst: f64,
    last_ns: Nanos,
}

impl TokenBucket {
    fn new(rate: f64, burst: f64, now_ns: Nanos) -> Self {
        TokenBucket {
            tokens: burst.max(1.0),
            rate: rate.max(f64::MIN_POSITIVE),
            burst: burst.max(1.0),
            last_ns: now_ns,
        }
    }

    /// The level the bucket would hold at `now_ns`, without touching
    /// its state — the read path for snapshots, so an interleaved
    /// scrape can never advance `last_ns` ahead of the admit path's
    /// clock and steal refill time from the next `try_take`.
    fn level_at(&self, now_ns: Nanos) -> f64 {
        let elapsed_ns = now_ns.saturating_sub(self.last_ns).max(0);
        let refill = (elapsed_ns as f64 / 1e9) * self.rate;
        (self.tokens + refill).min(self.burst)
    }

    fn refill(&mut self, now_ns: Nanos) {
        self.tokens = self.level_at(now_ns);
        self.last_ns = self.last_ns.max(now_ns);
    }

    /// Takes one token, or reports seconds until one is available.
    fn try_take(&mut self, now_ns: Nanos) -> Result<(), f64> {
        self.refill(now_ns);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            Err((1.0 - self.tokens) / self.rate)
        }
    }
}

/// The admission layer's configuration (see
/// [`crate::DaemonConfig::admission`]).
#[derive(Clone, Debug, PartialEq)]
pub struct AdmissionConfig {
    /// Bound on each priority class's queue.
    pub queue_bound: usize,
    /// Default per-tenant refill rate (requests/second).
    pub default_rate: f64,
    /// Default per-tenant burst capacity.
    pub default_burst: f64,
    /// Per-tenant `(rate, burst)` overrides.
    pub overrides: BTreeMap<String, (f64, f64)>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_bound: 64,
            default_rate: 50.0,
            default_burst: 10.0,
            overrides: BTreeMap::new(),
        }
    }
}

/// Three bounded FIFO queues (one per [`Priority`]) plus the
/// per-tenant token buckets. Not internally synchronized — the daemon
/// holds it behind one mutex next to its work condvar.
#[derive(Debug)]
pub struct AdmissionQueues {
    config: AdmissionConfig,
    high: VecDeque<QueuedJob>,
    normal: VecDeque<QueuedJob>,
    low: VecDeque<QueuedJob>,
    buckets: BTreeMap<String, TokenBucket>,
}

impl AdmissionQueues {
    /// Empty queues under `config`.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionQueues {
            config,
            high: VecDeque::new(),
            normal: VecDeque::new(),
            low: VecDeque::new(),
            buckets: BTreeMap::new(),
        }
    }

    fn queue_mut(&mut self, priority: Priority) -> &mut VecDeque<QueuedJob> {
        match priority {
            Priority::High => &mut self.high,
            Priority::Normal => &mut self.normal,
            Priority::Low => &mut self.low,
        }
    }

    /// Admits `job` at daemon-clock `now_ns`, or explains the shed.
    /// The queue bound is checked first and the token taken second, so
    /// a queue-full shed never burns a token and a rate-limited shed
    /// never holds queue space.
    pub fn admit(&mut self, job: QueuedJob, now_ns: Nanos) -> Result<(), Shed> {
        let bound = self.config.queue_bound;
        let priority = job.priority;
        if self.queue_mut(priority).len() >= bound {
            return Err(Shed::QueueFull { priority, bound });
        }
        let (rate, burst) = self
            .config
            .overrides
            .get(&job.tenant)
            .copied()
            .unwrap_or((self.config.default_rate, self.config.default_burst));
        let bucket = self
            .buckets
            .entry(job.tenant.clone())
            .or_insert_with(|| TokenBucket::new(rate, burst, now_ns));
        if let Err(retry_after_s) = bucket.try_take(now_ns) {
            return Err(Shed::RateLimited {
                tenant: job.tenant,
                retry_after_s,
            });
        }
        self.queue_mut(priority).push_back(job);
        Ok(())
    }

    /// Pops the next job in strict priority order.
    pub fn pop(&mut self) -> Option<QueuedJob> {
        self.high
            .pop_front()
            .or_else(|| self.normal.pop_front())
            .or_else(|| self.low.pop_front())
    }

    /// `(high, normal, low)` queue depths.
    pub fn depths(&self) -> (usize, usize, usize) {
        (self.high.len(), self.normal.len(), self.low.len())
    }

    /// Per-tenant token-bucket levels as of `now_ns`:
    /// `(tenant, tokens, burst, rate)` in tenant order. The level is
    /// *projected* to `now_ns` without mutating any bucket, so this
    /// `chronusctl top` view is a pure read: interleaving a snapshot
    /// between two submissions can never change what the second one
    /// observes.
    pub fn bucket_levels(&self, now_ns: Nanos) -> Vec<(String, f64, f64, f64)> {
        self.buckets
            .iter()
            .map(|(tenant, bucket)| {
                (
                    tenant.clone(),
                    bucket.level_at(now_ns),
                    bucket.burst,
                    bucket.rate,
                )
            })
            .collect()
    }

    /// Total queued jobs across all classes.
    pub fn len(&self) -> usize {
        self.high.len() + self.normal.len() + self.low.len()
    }

    /// True when every class queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::motivating_example;

    fn job(id: u64, tenant: &str, priority: Priority) -> QueuedJob {
        QueuedJob {
            id,
            tenant: tenant.to_string(),
            priority,
            instance: Arc::new(motivating_example()),
            deadline: Duration::from_secs(1),
            enqueued_ns: 0,
        }
    }

    #[test]
    fn pop_serves_strict_priority_order() {
        let mut q = AdmissionQueues::new(AdmissionConfig::default());
        q.admit(job(1, "t", Priority::Low), 0).unwrap();
        q.admit(job(2, "t", Priority::High), 0).unwrap();
        q.admit(job(3, "t", Priority::Normal), 0).unwrap();
        q.admit(job(4, "t", Priority::High), 0).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j.id).collect();
        assert_eq!(order, vec![2, 4, 3, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn full_class_queue_sheds_without_burning_a_token() {
        let cfg = AdmissionConfig {
            queue_bound: 2,
            default_rate: 1.0,
            default_burst: 3.0,
            overrides: BTreeMap::new(),
        };
        let mut q = AdmissionQueues::new(cfg);
        q.admit(job(1, "t", Priority::Normal), 0).unwrap();
        q.admit(job(2, "t", Priority::Normal), 0).unwrap();
        match q.admit(job(3, "t", Priority::Normal), 0) {
            Err(Shed::QueueFull { priority, bound }) => {
                assert_eq!(priority, Priority::Normal);
                assert_eq!(bound, 2);
            }
            other => panic!("expected queue-full shed, got {other:?}"),
        }
        // Other classes stay open, and the burst's third token is
        // still there because the full-queue shed did not consume it.
        q.admit(job(4, "t", Priority::High), 0).unwrap();
        assert_eq!(q.depths(), (1, 2, 0));
    }

    #[test]
    fn token_bucket_refills_on_the_callers_clock() {
        let cfg = AdmissionConfig {
            queue_bound: 64,
            default_rate: 2.0, // one token every 500 ms
            default_burst: 1.0,
            overrides: BTreeMap::new(),
        };
        let mut q = AdmissionQueues::new(cfg);
        q.admit(job(1, "t", Priority::Normal), 0).unwrap();
        let shed = q.admit(job(2, "t", Priority::Normal), 0).unwrap_err();
        match shed {
            Shed::RateLimited {
                tenant,
                retry_after_s,
            } => {
                assert_eq!(tenant, "t");
                assert!((retry_after_s - 0.5).abs() < 1e-6, "{retry_after_s}");
            }
            other => panic!("expected rate limit, got {other:?}"),
        }
        // 500 ms later the bucket holds exactly one token again.
        q.admit(job(2, "t", Priority::Normal), 500_000_000).unwrap();
        // Tenants are isolated: a fresh tenant gets its own burst.
        q.admit(job(3, "u", Priority::Normal), 500_000_000).unwrap();
    }

    #[test]
    fn bucket_snapshot_never_perturbs_the_admit_path() {
        let cfg = AdmissionConfig {
            queue_bound: 64,
            default_rate: 2.0, // one token every 500 ms
            default_burst: 1.0,
            overrides: BTreeMap::new(),
        };
        // Control: burn the burst, then probe the retry hint at 400 ms
        // with no snapshot in between.
        let mut control = AdmissionQueues::new(cfg.clone());
        control.admit(job(1, "t", Priority::Normal), 0).unwrap();
        let Err(Shed::RateLimited {
            retry_after_s: expected,
            ..
        }) = control.admit(job(2, "t", Priority::Normal), 400_000_000)
        else {
            panic!("still rate limited at 400 ms");
        };
        // Probe: identical timeline, but a scrape lands in between —
        // with a clock *ahead* of the admit path's next read, the way
        // a metrics thread and a worker race on the daemon clock.
        let mut probed = AdmissionQueues::new(cfg);
        probed.admit(job(1, "t", Priority::Normal), 0).unwrap();
        let snap = probed.bucket_levels(450_000_000);
        assert_eq!(snap.len(), 1);
        assert!((snap[0].1 - 0.9).abs() < 1e-9, "level {}", snap[0].1);
        let Err(Shed::RateLimited {
            retry_after_s: observed,
            ..
        }) = probed.admit(job(2, "t", Priority::Normal), 400_000_000)
        else {
            panic!("the snapshot must not have refilled the bucket");
        };
        assert_eq!(
            observed.to_bits(),
            expected.to_bits(),
            "snapshot changed the retry hint: {observed} vs {expected}"
        );
        // And the bucket still refills on schedule afterwards.
        probed.admit(job(3, "t", Priority::Normal), 500_000_000).unwrap();
    }

    #[test]
    fn tenant_overrides_beat_the_defaults() {
        let mut overrides = BTreeMap::new();
        overrides.insert("gold".to_string(), (1000.0, 3.0));
        let cfg = AdmissionConfig {
            queue_bound: 64,
            default_rate: 1.0,
            default_burst: 1.0,
            overrides,
        };
        let mut q = AdmissionQueues::new(cfg);
        for id in 0..3 {
            q.admit(job(id, "gold", Priority::Normal), 0).unwrap();
        }
        assert!(q.admit(job(9, "plain", Priority::Normal), 0).is_ok());
        assert!(matches!(
            q.admit(job(10, "plain", Priority::Normal), 0),
            Err(Shed::RateLimited { .. })
        ));
    }
}
