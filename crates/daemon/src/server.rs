//! The Unix-socket IPC front end: one thread per connection, one JSON
//! object per line in each direction (see [`crate::proto`]).

use crate::proto::{self, Request};
use crate::service::{Daemon, ShutdownReport};
use chronus_net::codec::instance_from_value;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Serves `daemon` on its configured Unix socket until a client sends
/// `drain`, then gracefully shuts the daemon down and returns the
/// shutdown report. A stale socket file is replaced.
pub fn run_server(daemon: Daemon) -> std::io::Result<ShutdownReport> {
    let socket_path = daemon.config().socket.clone();
    let _ = std::fs::remove_file(&socket_path);
    if let Some(dir) = socket_path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let listener = UnixListener::bind(&socket_path)?;
    let daemon = Arc::new(daemon);
    let stop = Arc::new(AtomicBool::new(false));

    for connection in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match connection {
            Ok(s) => s,
            Err(_) => continue,
        };
        let daemon = Arc::clone(&daemon);
        let stop = Arc::clone(&stop);
        let socket_path = socket_path.clone();
        let _ = std::thread::Builder::new()
            .name("chronusd-conn".to_string())
            .spawn(move || {
                daemon.metrics().connections.inc();
                let _ = serve_connection(&daemon, stream, &stop, || {
                    // Drain: wake the accept loop with a throwaway
                    // connection so it observes the stop flag.
                    let _ = UnixStream::connect(&socket_path);
                });
            });
    }
    drop(listener);
    let _ = std::fs::remove_file(&socket_path);
    let report = daemon.shutdown();
    Ok(report)
}

/// Handles one connection's request lines until EOF or `drain`.
fn serve_connection(
    daemon: &Daemon,
    stream: UnixStream,
    stop: &AtomicBool,
    wake_accept: impl Fn(),
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        daemon.metrics().requests.inc();
        let (response, drain) = match proto::request_from_line(&line) {
            Ok(request) => {
                let drain = request == Request::Drain;
                (dispatch(daemon, request), drain)
            }
            Err(e) => {
                daemon.metrics().proto_errors.inc();
                (proto::err_response(&e, false), false)
            }
        };
        let text = serde_json::to_string(&response)
            .unwrap_or_else(|_| r#"{"ok":false,"error":"encode failed"}"#.to_string());
        writeln!(writer, "{text}")?;
        writer.flush()?;
        if drain {
            stop.store(true, Ordering::Release);
            wake_accept();
            break;
        }
    }
    Ok(())
}

/// Executes one request against the daemon.
fn dispatch(daemon: &Daemon, request: Request) -> Value {
    match request {
        Request::Ping => proto::ok_response(vec![("pong", Value::Bool(true))]),
        Request::Submit {
            tenant,
            priority,
            deadline_ms,
            instance,
        } => {
            let decoded = match instance_from_value(&instance) {
                Ok(inst) => inst,
                Err(e) => {
                    daemon.metrics().failed.inc();
                    return proto::err_response(&format!("bad instance: {e}"), false);
                }
            };
            let deadline = deadline_ms.map(Duration::from_millis);
            match daemon.submit(&tenant, priority, deadline, Arc::new(decoded)) {
                Ok(id) => proto::ok_response(vec![("id", Value::from_u64_exact(id))]),
                Err(shed) => proto::err_response(&shed.to_string(), true),
            }
        }
        Request::Status { id: Some(id) } => match daemon.status(id) {
            Some(status) => proto::ok_response(vec![("status", status.to_value())]),
            None => proto::err_response(&format!("unknown update {id}"), false),
        },
        Request::Status { id: None } => {
            let counts = daemon.status_counts();
            let mut obj = serde_json::Map::new();
            for (state, count) in counts {
                obj.insert(state.to_string(), Value::from_u64_exact(count));
            }
            proto::ok_response(vec![
                ("counts", Value::Object(obj)),
                (
                    "queue_len",
                    Value::from_u64_exact(daemon.queue_len() as u64),
                ),
                (
                    "armed_len",
                    Value::from_u64_exact(daemon.armed_len() as u64),
                ),
            ])
        }
        Request::Watch { id, timeout_ms } => {
            match daemon.watch(id, Duration::from_millis(timeout_ms)) {
                Some(status) => {
                    let settled = status.state.is_settled();
                    proto::ok_response(vec![
                        ("status", status.to_value()),
                        ("settled", Value::Bool(settled)),
                    ])
                }
                None => proto::err_response(&format!("unknown update {id}"), false),
            }
        }
        Request::Confirm { id } => match daemon.confirm(id) {
            Ok(()) => proto::ok_response(vec![("id", Value::from_u64_exact(id))]),
            Err(e) => proto::err_response(&e, false),
        },
        Request::Drain => proto::ok_response(vec![("draining", Value::Bool(true))]),
        Request::Snapshot => match daemon.snapshot() {
            Ok(live) => proto::ok_response(vec![("live", Value::from_u64_exact(live as u64))]),
            Err(e) => proto::err_response(&format!("snapshot failed: {e}"), false),
        },
        Request::Metrics => proto::ok_response(vec![("text", Value::from(daemon.metrics_text()))]),
    }
}
