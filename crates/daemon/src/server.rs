//! The Unix-socket IPC front end: one thread per connection, one JSON
//! object per line in each direction (see [`crate::proto`]).

use crate::proto::{self, Request};
use crate::service::{Daemon, ShutdownReport};
use chronus_net::codec::instance_from_value;
use chronus_trace::{FlightEvent, FlightEventKind, FlightRecorder};
use serde_json::{Map, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Most flight events one tail poll will put on the wire; anything
/// beyond is shed (and counted) so a slow client cannot make the
/// server buffer without bound.
const TAIL_BATCH: usize = 512;
/// Poll cadence for `tail --follow`.
const TAIL_POLL: Duration = Duration::from_millis(50);

/// Serves `daemon` on its configured Unix socket until a client sends
/// `drain`, then gracefully shuts the daemon down and returns the
/// shutdown report. A stale socket file is replaced.
pub fn run_server(daemon: Daemon) -> std::io::Result<ShutdownReport> {
    let socket_path = daemon.config().socket.clone();
    let _ = std::fs::remove_file(&socket_path);
    if let Some(dir) = socket_path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let listener = UnixListener::bind(&socket_path)?;
    let daemon = Arc::new(daemon);
    let stop = Arc::new(AtomicBool::new(false));

    for connection in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match connection {
            Ok(s) => s,
            Err(_) => continue,
        };
        let daemon = Arc::clone(&daemon);
        let stop = Arc::clone(&stop);
        let socket_path = socket_path.clone();
        let _ = std::thread::Builder::new()
            .name("chronusd-conn".to_string())
            .spawn(move || {
                daemon.metrics().connections.inc();
                let _ = serve_connection(&daemon, stream, &stop, || {
                    // Drain: wake the accept loop with a throwaway
                    // connection so it observes the stop flag.
                    let _ = UnixStream::connect(&socket_path);
                });
            });
    }
    drop(listener);
    let _ = std::fs::remove_file(&socket_path);
    let report = daemon.shutdown();
    Ok(report)
}

/// Handles one connection's request lines until EOF or `drain`.
fn serve_connection(
    daemon: &Daemon,
    stream: UnixStream,
    stop: &AtomicBool,
    wake_accept: impl Fn(),
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        daemon.metrics().requests.inc();
        let (response, drain) = match proto::request_from_line(&line) {
            Ok(Request::Tail {
                filter,
                max_events,
                follow,
            }) => {
                // Tail is the one verb that streams: it owns the
                // connection until it finishes, then the line loop
                // resumes for the next request.
                serve_tail(daemon, &mut writer, stop, filter, max_events, follow)?;
                continue;
            }
            Ok(request) => {
                let drain = request == Request::Drain;
                (dispatch(daemon, request), drain)
            }
            Err(e) => {
                daemon.metrics().proto_errors.inc();
                (proto::err_response(&e, false), false)
            }
        };
        let text = serde_json::to_string(&response)
            .unwrap_or_else(|_| r#"{"ok":false,"error":"encode failed"}"#.to_string());
        writeln!(writer, "{text}")?;
        writer.flush()?;
        if drain {
            stop.store(true, Ordering::Release);
            wake_accept();
            break;
        }
    }
    Ok(())
}

/// Executes one request against the daemon.
fn dispatch(daemon: &Daemon, request: Request) -> Value {
    match request {
        Request::Ping => proto::ok_response(vec![("pong", Value::Bool(true))]),
        Request::Submit {
            tenant,
            priority,
            deadline_ms,
            instance,
        } => {
            let decoded = match instance_from_value(&instance) {
                Ok(inst) => inst,
                Err(e) => {
                    daemon.metrics().failed.inc();
                    return proto::err_response(&format!("bad instance: {e}"), false);
                }
            };
            let deadline = deadline_ms.map(Duration::from_millis);
            match daemon.submit(&tenant, priority, deadline, Arc::new(decoded)) {
                Ok(id) => proto::ok_response(vec![("id", Value::from_u64_exact(id))]),
                Err(shed) => proto::shed_response(&shed),
            }
        }
        Request::Status { id: Some(id) } => match daemon.status(id) {
            Some(status) => proto::ok_response(vec![("status", status.to_value())]),
            None => proto::err_response(&format!("unknown update {id}"), false),
        },
        Request::Status { id: None } => {
            let counts = daemon.status_counts();
            let mut obj = serde_json::Map::new();
            for (state, count) in counts {
                obj.insert(state.to_string(), Value::from_u64_exact(count));
            }
            proto::ok_response(vec![
                ("counts", Value::Object(obj)),
                (
                    "queue_len",
                    Value::from_u64_exact(daemon.queue_len() as u64),
                ),
                (
                    "armed_len",
                    Value::from_u64_exact(daemon.armed_len() as u64),
                ),
            ])
        }
        Request::Watch { id, timeout_ms } => {
            match daemon.watch(id, Duration::from_millis(timeout_ms)) {
                Some(status) => {
                    let settled = status.state.is_settled();
                    proto::ok_response(vec![
                        ("status", status.to_value()),
                        ("settled", Value::Bool(settled)),
                    ])
                }
                None => proto::err_response(&format!("unknown update {id}"), false),
            }
        }
        Request::Confirm { id } => match daemon.confirm(id) {
            Ok(()) => proto::ok_response(vec![("id", Value::from_u64_exact(id))]),
            Err(e) => proto::err_response(&e, false),
        },
        Request::Drain => proto::ok_response(vec![("draining", Value::Bool(true))]),
        Request::Snapshot => match daemon.snapshot() {
            Ok(live) => proto::ok_response(vec![("live", Value::from_u64_exact(live as u64))]),
            Err(e) => proto::err_response(&format!("snapshot failed: {e}"), false),
        },
        Request::Metrics => proto::ok_response(vec![("text", Value::from(daemon.metrics_text()))]),
        Request::Top => proto::ok_response(vec![("top", daemon.top())]),
        Request::Dump => match daemon.dump() {
            Ok(path) => proto::ok_response(vec![("path", Value::from(path.display().to_string()))]),
            Err(e) => proto::err_response(&format!("dump failed: {e}"), false),
        },
        Request::Tail { .. } => {
            // Handled by the streaming path in `serve_connection`;
            // reaching here means a non-connection caller (tests)
            // dispatched it directly.
            proto::err_response("tail is only available over a connection", false)
        }
    }
}

/// Encodes one flight event as a wire line.
fn tail_event_value(e: &FlightEvent) -> Value {
    let mut obj = Map::new();
    obj.insert("seq".to_string(), Value::from_u64_exact(e.seq));
    obj.insert(
        "kind".to_string(),
        Value::from(match e.kind {
            FlightEventKind::Span => "span",
            FlightEventKind::Instant => "instant",
            FlightEventKind::Counter => "counter",
        }),
    );
    obj.insert("name".to_string(), Value::from(e.name));
    obj.insert("id".to_string(), Value::from_u64_exact(e.id));
    obj.insert("start_ns".to_string(), Value::from_u64_exact(e.start_ns));
    obj.insert("end_ns".to_string(), Value::from_u64_exact(e.end_ns));
    obj.insert("tid".to_string(), Value::from_u64_exact(e.tid));
    if let Some(parent) = e.parent {
        obj.insert("parent".to_string(), Value::from_u64_exact(parent));
    }
    let mut args = Map::new();
    for (k, v) in &e.args {
        args.insert(k.to_string(), Value::from_u64_exact(*v));
    }
    obj.insert("args".to_string(), Value::Object(args));
    Value::Object(obj)
}

/// Streams flight-ring events to one client: a `streaming` header,
/// then one event per line (server-side name filtering), then a
/// `done` line. Each poll ships at most [`TAIL_BATCH`] events — the
/// overflow is shed and counted rather than buffered for a slow
/// client. In follow mode the ring is re-polled until the client
/// hangs up, `max_events` is reached, or the daemon drains.
fn serve_tail(
    daemon: &Daemon,
    writer: &mut UnixStream,
    stop: &AtomicBool,
    filter: Option<String>,
    max_events: u64,
    follow: bool,
) -> std::io::Result<()> {
    let header = proto::ok_response(vec![
        ("streaming", Value::Bool(true)),
        ("recording", Value::Bool(FlightRecorder::is_on())),
    ]);
    writeln!(
        writer,
        "{}",
        serde_json::to_string(&header).unwrap_or_default()
    )?;
    writer.flush()?;

    // One-shot tail answers with the ring's recent history; follow
    // starts at the present and streams what happens next.
    let mut cursor = if follow {
        FlightRecorder::events_since(0).1
    } else {
        0
    };
    let mut sent = 0u64;
    loop {
        let (events, next) = FlightRecorder::events_since(cursor);
        cursor = next;
        let mut shipped_this_poll = 0usize;
        for event in &events {
            if let Some(f) = &filter {
                if !event.name.starts_with(f.as_str()) {
                    continue;
                }
            }
            if shipped_this_poll >= TAIL_BATCH {
                daemon.metrics().tail_shed.inc();
                continue;
            }
            writeln!(
                writer,
                "{}",
                serde_json::to_string(&tail_event_value(event)).unwrap_or_default()
            )?;
            shipped_this_poll += 1;
            sent += 1;
            if max_events > 0 && sent >= max_events {
                break;
            }
        }
        writer.flush()?;
        let reached_max = max_events > 0 && sent >= max_events;
        if !follow || reached_max || stop.load(Ordering::Acquire) {
            break;
        }
        std::thread::sleep(TAIL_POLL);
    }
    let footer = proto::ok_response(vec![
        ("done", Value::Bool(true)),
        ("sent", Value::from_u64_exact(sent)),
    ]);
    writeln!(
        writer,
        "{}",
        serde_json::to_string(&footer).unwrap_or_default()
    )?;
    writer.flush()
}
