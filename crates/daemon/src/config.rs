//! Daemon configuration: a JSON file layer overridden by CLI flags.
//!
//! Every knob has a default, so `chronusd` starts with no arguments;
//! a `--config file.json` layer is applied first and individual
//! `--key value` flags override it (see [`DaemonConfig::apply_flag`]
//! for the accepted keys — they match the JSON field names).

use crate::admission::AdmissionConfig;
use chronus_clock::Nanos;
use chronus_engine::{EngineConfig, SlackPolicy};
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Complete `chronusd` configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct DaemonConfig {
    /// Unix socket path the server listens on.
    pub socket: PathBuf,
    /// Daemon worker threads (and engine worker threads below them).
    pub workers: usize,
    /// Bound on each priority class's admission queue.
    pub queue_bound: usize,
    /// Default per-tenant token-bucket refill rate (requests/second).
    pub tenant_rate: f64,
    /// Default per-tenant token-bucket burst capacity.
    pub tenant_burst: f64,
    /// Per-tenant `(rate, burst)` overrides by tenant name.
    pub tenant_overrides: BTreeMap<String, (f64, f64)>,
    /// Directory holding the write-ahead journal and snapshots.
    pub snapshot_dir: PathBuf,
    /// Interval between automatic journal compactions; `0` disables
    /// the background snapshotter (explicit `snapshot` requests and
    /// the final shutdown snapshot still run).
    pub snapshot_interval_ms: u64,
    /// True-time length of one schedule step, used to convert slack
    /// certificates (±k steps) into nanosecond budgets at restore.
    pub step_ns: Nanos,
    /// Re-arm margin handed to the recovery policy: a missed trigger
    /// is re-armed no earlier than `now + margin`.
    pub rearm_margin_ns: Nanos,
    /// Epoch anchor for the daemon's monotonic clock; `None` anchors
    /// to the wall clock at startup. Tests pin this for determinism.
    pub base_epoch_ns: Option<Nanos>,
    /// Bound on the engine's memoized time-extended-network cache.
    pub cache_windows: usize,
    /// Target shard count for the engine's sharded multi-flow
    /// pre-stage; `0` or `1` disables sharding and every request is
    /// planned jointly.
    pub engine_shards: usize,
    /// Default planning deadline for submissions that carry none.
    pub default_deadline_ms: u64,
    /// Per-tenant SLO: plans slower than this burn error budget.
    pub slo_latency_ms: u64,
    /// Per-tenant SLO availability objective in `[0, 1)`.
    pub slo_availability: f64,
    /// Short-window (5m) burn rate at or above this emits an instant
    /// and fires a forensic flight dump.
    pub slo_burn_threshold: f64,
    /// Directory forensic flight dumps are written to; empty means
    /// `snapshot_dir/flight`.
    pub flight_dir: PathBuf,
    /// Per-thread flight-ring capacity in events (power of two; the
    /// recorder rounds up).
    pub ring_slots: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            socket: PathBuf::from("/tmp/chronusd.sock"),
            workers: 2,
            queue_bound: 64,
            tenant_rate: 50.0,
            tenant_burst: 10.0,
            tenant_overrides: BTreeMap::new(),
            snapshot_dir: PathBuf::from("chronusd-state"),
            snapshot_interval_ms: 5_000,
            step_ns: 1_000_000, // 1 ms per schedule step
            rearm_margin_ns: 100_000,
            base_epoch_ns: None,
            cache_windows: 256,
            engine_shards: 0,
            default_deadline_ms: 5_000,
            slo_latency_ms: 250,
            slo_availability: 0.999,
            slo_burn_threshold: 10.0,
            flight_dir: PathBuf::new(),
            ring_slots: 4096,
        }
    }
}

impl DaemonConfig {
    /// Loads a JSON config file; unknown keys are rejected so typos
    /// fail loudly at startup instead of silently keeping defaults.
    pub fn from_file(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("config {}: {e}", path.display()))?;
        let v =
            serde_json::from_str(&text).map_err(|e| format!("config {}: {e}", path.display()))?;
        Self::from_value(&v)
    }

    /// Builds a config from a parsed JSON object over the defaults.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let obj = v
            .as_object()
            .ok_or_else(|| "config root must be an object".to_string())?;
        let mut cfg = DaemonConfig::default();
        for (key, val) in obj {
            if key == "tenants" {
                let tenants = val
                    .as_object()
                    .ok_or_else(|| "`tenants` must be an object".to_string())?;
                for (tenant, limits) in tenants {
                    let rate = limits
                        .get("rate")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("tenant `{tenant}` missing numeric `rate`"))?;
                    let burst = limits
                        .get("burst")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("tenant `{tenant}` missing numeric `burst`"))?;
                    cfg.tenant_overrides.insert(tenant.clone(), (rate, burst));
                }
                continue;
            }
            let rendered = match val {
                Value::String(s) => s.clone(),
                other => serde_json::to_string(other).map_err(|e| e.to_string())?,
            };
            cfg.apply_flag(key, &rendered)?;
        }
        Ok(cfg)
    }

    /// Applies one `--key value` override; `key` matches the JSON
    /// field names.
    pub fn apply_flag(&mut self, key: &str, value: &str) -> Result<(), String> {
        let bad = |what: &str| format!("--{key}: expected {what}, got `{value}`");
        match key {
            "socket" => self.socket = PathBuf::from(value),
            "snapshot_dir" => self.snapshot_dir = PathBuf::from(value),
            "workers" => self.workers = value.parse().map_err(|_| bad("a count"))?,
            "queue_bound" => self.queue_bound = value.parse().map_err(|_| bad("a count"))?,
            "tenant_rate" => self.tenant_rate = value.parse().map_err(|_| bad("a rate"))?,
            "tenant_burst" => self.tenant_burst = value.parse().map_err(|_| bad("a burst"))?,
            "snapshot_interval_ms" => {
                self.snapshot_interval_ms = value.parse().map_err(|_| bad("milliseconds"))?
            }
            "step_ns" => self.step_ns = value.parse().map_err(|_| bad("nanoseconds"))?,
            "rearm_margin_ns" => {
                self.rearm_margin_ns = value.parse().map_err(|_| bad("nanoseconds"))?
            }
            "base_epoch_ns" => {
                self.base_epoch_ns = Some(value.parse().map_err(|_| bad("nanoseconds"))?)
            }
            "cache_windows" => self.cache_windows = value.parse().map_err(|_| bad("a count"))?,
            "engine_shards" => self.engine_shards = value.parse().map_err(|_| bad("a count"))?,
            "default_deadline_ms" => {
                self.default_deadline_ms = value.parse().map_err(|_| bad("milliseconds"))?
            }
            "slo_latency_ms" => {
                self.slo_latency_ms = value.parse().map_err(|_| bad("milliseconds"))?
            }
            "slo_availability" => {
                let a: f64 = value.parse().map_err(|_| bad("a fraction"))?;
                if !(0.0..1.0).contains(&a) {
                    return Err(bad("a fraction in [0, 1)"));
                }
                self.slo_availability = a;
            }
            "slo_burn_threshold" => {
                self.slo_burn_threshold = value.parse().map_err(|_| bad("a burn rate"))?
            }
            "flight_dir" => self.flight_dir = PathBuf::from(value),
            "ring_slots" => self.ring_slots = value.parse().map_err(|_| bad("a count"))?,
            other => return Err(format!("unknown config key `{other}`")),
        }
        Ok(())
    }

    /// The journal file inside [`DaemonConfig::snapshot_dir`].
    pub fn journal_path(&self) -> PathBuf {
        self.snapshot_dir.join("journal.jsonl")
    }

    /// Where forensic flight dumps land (`flight_dir`, defaulting to
    /// `snapshot_dir/flight`).
    pub fn flight_path(&self) -> PathBuf {
        if self.flight_dir.as_os_str().is_empty() {
            self.snapshot_dir.join("flight")
        } else {
            self.flight_dir.clone()
        }
    }

    /// The SLO tracker's view of this config.
    pub fn slo(&self) -> crate::slo::SloConfig {
        crate::slo::SloConfig {
            latency_ns: (self.slo_latency_ms as Nanos).saturating_mul(1_000_000),
            availability: self.slo_availability,
            burn_threshold: self.slo_burn_threshold,
        }
    }

    /// Default planning deadline as a [`Duration`].
    pub fn default_deadline(&self) -> Duration {
        Duration::from_millis(self.default_deadline_ms.max(1))
    }

    /// The admission layer's view of this config.
    pub fn admission(&self) -> AdmissionConfig {
        AdmissionConfig {
            queue_bound: self.queue_bound.max(1),
            default_rate: self.tenant_rate,
            default_burst: self.tenant_burst,
            overrides: self.tenant_overrides.clone(),
        }
    }

    /// The engine configuration the daemon boots its resident engine
    /// with: slack certification on (the journal stores the certified
    /// tolerance) and a bounded warm cache.
    pub fn engine(&self) -> EngineConfig {
        let cfg = EngineConfig::with_workers(self.workers.max(1))
            .with_slack(SlackPolicy::default())
            .with_cache_capacity(self.cache_windows.max(1));
        if self.engine_shards > 1 {
            cfg.with_sharding(chronus_engine::ShardingConfig {
                shards: self.engine_shards,
                ..chronus_engine::ShardingConfig::default()
            })
        } else {
            cfg
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_layer_then_flags_override() {
        let v = serde_json::from_str(
            r#"{
                "workers": 4,
                "queue_bound": 8,
                "socket": "/tmp/x.sock",
                "tenants": {"gold": {"rate": 100.0, "burst": 20.0}}
            }"#,
        )
        .unwrap();
        let mut cfg = DaemonConfig::from_value(&v).unwrap();
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.queue_bound, 8);
        assert_eq!(cfg.socket, PathBuf::from("/tmp/x.sock"));
        assert_eq!(cfg.tenant_overrides["gold"], (100.0, 20.0));
        // Flags override the file layer.
        cfg.apply_flag("workers", "2").unwrap();
        cfg.apply_flag("base_epoch_ns", "123456789").unwrap();
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.base_epoch_ns, Some(123_456_789));
        assert!(cfg.apply_flag("wrokers", "2").is_err(), "typos fail loudly");
        assert!(cfg.apply_flag("workers", "lots").is_err());
    }

    #[test]
    fn engine_shards_flag_opts_into_the_sharded_stage() {
        let mut cfg = DaemonConfig::default();
        assert!(cfg.engine().sharding.is_none(), "sharding off by default");
        cfg.apply_flag("engine_shards", "8").unwrap();
        let engine = cfg.engine();
        assert_eq!(engine.sharding.map(|s| s.shards), Some(8));
        // 0 and 1 both mean "plan jointly".
        cfg.apply_flag("engine_shards", "1").unwrap();
        assert!(cfg.engine().sharding.is_none());
        assert!(cfg.apply_flag("engine_shards", "many").is_err());
    }

    #[test]
    fn slo_and_flight_keys_parse_and_validate() {
        let mut cfg = DaemonConfig::default();
        cfg.apply_flag("slo_latency_ms", "100").unwrap();
        cfg.apply_flag("slo_availability", "0.99").unwrap();
        cfg.apply_flag("slo_burn_threshold", "14.4").unwrap();
        cfg.apply_flag("flight_dir", "/tmp/fl").unwrap();
        cfg.apply_flag("ring_slots", "1024").unwrap();
        assert_eq!(cfg.slo().latency_ns, 100_000_000);
        assert_eq!(cfg.slo().availability, 0.99);
        assert_eq!(cfg.flight_path(), PathBuf::from("/tmp/fl"));
        assert_eq!(cfg.ring_slots, 1024);
        assert!(cfg.apply_flag("slo_availability", "1.0").is_err());
        assert!(cfg.apply_flag("slo_availability", "-0.1").is_err());
        // Defaulted flight dir nests under the snapshot dir.
        let d = DaemonConfig::default();
        assert_eq!(d.flight_path(), d.snapshot_dir.join("flight"));
    }

    #[test]
    fn unknown_file_keys_are_rejected() {
        let v = serde_json::from_str(r#"{"wrokers": 4}"#).unwrap();
        assert!(DaemonConfig::from_value(&v)
            .unwrap_err()
            .contains("wrokers"));
    }
}
