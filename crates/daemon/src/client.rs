//! `chronusctl`'s client half of the IPC protocol: a blocking
//! line-JSON call helper over a Unix stream, plus typed convenience
//! wrappers for every command.

use crate::admission::Priority;
use chronus_net::codec::instance_to_value;
use chronus_net::UpdateInstance;
use serde_json::{Map, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A connected control client. Each [`CtlClient::call`] writes one
/// request line and blocks for one response line; the connection is
/// reusable across calls.
pub struct CtlClient {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

fn io_err(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

impl CtlClient {
    /// Connects to a `chronusd` socket.
    pub fn connect(socket: &Path) -> std::io::Result<Self> {
        let stream = UnixStream::connect(socket)?;
        let writer = stream.try_clone()?;
        Ok(CtlClient {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request object and returns the response object.
    pub fn call(&mut self, request: &Value) -> std::io::Result<Value> {
        let line = serde_json::to_string(request).map_err(|e| io_err(e.to_string()))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io_err("daemon closed the connection".to_string()));
        }
        serde_json::from_str(&response).map_err(|e| io_err(e.to_string()))
    }

    fn cmd(name: &str) -> Map {
        let mut obj = Map::new();
        obj.insert("cmd".to_string(), Value::from(name));
        obj
    }

    /// Checks whether a response succeeded, extracting the error.
    fn expect_ok(response: Value) -> std::io::Result<Value> {
        if response.get("ok") == Some(&Value::Bool(true)) {
            Ok(response)
        } else {
            let msg = response
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("daemon refused the request")
                .to_string();
            Err(io_err(msg))
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> std::io::Result<()> {
        Self::expect_ok(self.call(&Value::Object(Self::cmd("ping")))?).map(|_| ())
    }

    /// Submits an instance; returns the assigned update id, or the
    /// daemon's refusal (sheds surface as errors here — inspect the
    /// raw response via [`CtlClient::call`] to tell sheds apart).
    pub fn submit(
        &mut self,
        tenant: &str,
        priority: Priority,
        deadline_ms: Option<u64>,
        instance: &UpdateInstance,
    ) -> std::io::Result<u64> {
        let mut obj = Self::cmd("submit");
        obj.insert("tenant".to_string(), Value::from(tenant));
        obj.insert("priority".to_string(), Value::from(priority.as_str()));
        if let Some(ms) = deadline_ms {
            obj.insert("deadline_ms".to_string(), Value::from_u64_exact(ms));
        }
        obj.insert("instance".to_string(), instance_to_value(instance));
        let response = Self::expect_ok(self.call(&Value::Object(obj))?)?;
        response
            .get("id")
            .and_then(Value::as_u64_exact)
            .ok_or_else(|| io_err("submit response missing id".to_string()))
    }

    /// Status of one update.
    pub fn status(&mut self, id: u64) -> std::io::Result<Value> {
        let mut obj = Self::cmd("status");
        obj.insert("id".to_string(), Value::from_u64_exact(id));
        let response = Self::expect_ok(self.call(&Value::Object(obj))?)?;
        response
            .get("status")
            .cloned()
            .ok_or_else(|| io_err("status response missing status".to_string()))
    }

    /// Aggregate status counts.
    pub fn status_all(&mut self) -> std::io::Result<Value> {
        Self::expect_ok(self.call(&Value::Object(Self::cmd("status")))?)
    }

    /// Blocks until update `id` settles (or the daemon-side timeout
    /// elapses); returns the last observed status object.
    pub fn watch(&mut self, id: u64, timeout_ms: u64) -> std::io::Result<Value> {
        let mut obj = Self::cmd("watch");
        obj.insert("id".to_string(), Value::from_u64_exact(id));
        obj.insert("timeout_ms".to_string(), Value::from_u64_exact(timeout_ms));
        let response = Self::expect_ok(self.call(&Value::Object(obj))?)?;
        response
            .get("status")
            .cloned()
            .ok_or_else(|| io_err("watch response missing status".to_string()))
    }

    /// Confirms an armed update as executed.
    pub fn confirm(&mut self, id: u64) -> std::io::Result<()> {
        let mut obj = Self::cmd("confirm");
        obj.insert("id".to_string(), Value::from_u64_exact(id));
        Self::expect_ok(self.call(&Value::Object(obj))?).map(|_| ())
    }

    /// Asks the daemon to drain and exit.
    pub fn drain(&mut self) -> std::io::Result<()> {
        Self::expect_ok(self.call(&Value::Object(Self::cmd("drain")))?).map(|_| ())
    }

    /// Forces a journal compaction; returns the live record count.
    pub fn snapshot(&mut self) -> std::io::Result<u64> {
        let response = Self::expect_ok(self.call(&Value::Object(Self::cmd("snapshot")))?)?;
        response
            .get("live")
            .and_then(Value::as_u64_exact)
            .ok_or_else(|| io_err("snapshot response missing live".to_string()))
    }

    /// The daemon's Prometheus text exposition.
    pub fn metrics_text(&mut self) -> std::io::Result<String> {
        let response = Self::expect_ok(self.call(&Value::Object(Self::cmd("metrics")))?)?;
        response
            .get("text")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| io_err("metrics response missing text".to_string()))
    }

    /// The live operational overview (`chronusctl top`).
    pub fn top(&mut self) -> std::io::Result<Value> {
        let response = Self::expect_ok(self.call(&Value::Object(Self::cmd("top")))?)?;
        response
            .get("top")
            .cloned()
            .ok_or_else(|| io_err("top response missing top".to_string()))
    }

    /// Asks the daemon to write a forensic flight dump; returns its
    /// path.
    pub fn dump(&mut self) -> std::io::Result<String> {
        let response = Self::expect_ok(self.call(&Value::Object(Self::cmd("dump")))?)?;
        response
            .get("path")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| io_err("dump response missing path".to_string()))
    }

    /// Streams flight events from the daemon, invoking `on_event` per
    /// event line until the stream's `done` footer (or EOF). Returns
    /// the number of events received. The connection stays usable for
    /// further calls afterwards.
    pub fn tail(
        &mut self,
        filter: Option<&str>,
        max_events: u64,
        follow: bool,
        mut on_event: impl FnMut(&Value),
    ) -> std::io::Result<u64> {
        let mut obj = Self::cmd("tail");
        if let Some(f) = filter {
            obj.insert("filter".to_string(), Value::from(f));
        }
        if max_events > 0 {
            obj.insert("max_events".to_string(), Value::from_u64_exact(max_events));
        }
        if follow {
            obj.insert("follow".to_string(), Value::Bool(true));
        }
        let header = self.call(&Value::Object(obj))?;
        Self::expect_ok(header.clone())?;
        if header.get("streaming") != Some(&Value::Bool(true)) {
            return Err(io_err("tail response is not a stream".to_string()));
        }
        let mut received = 0u64;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io_err("daemon closed the tail stream".to_string()));
            }
            let v: Value = serde_json::from_str(&line).map_err(|e| io_err(e.to_string()))?;
            if v.get("done") == Some(&Value::Bool(true)) {
                return Ok(received);
            }
            received += 1;
            on_event(&v);
        }
    }
}
